"""Differential tests: the N-lane vector engine vs the scalar engines.

The lockstep vector engine must be *bit-identical* per lane to the
scalar fast/superblock path — same checksums, statistics, access
counters, and activity trace — whether the run stays vectorized or
falls back.  N=1 is the property anchor: one lane must degenerate to
exactly the scalar result on every workload.
"""

import pytest

from repro.analysis.suite_study import default_study_configs
from repro.cpu import CortexM0, MemoryMap, assemble
from repro.cpu.trace import ActivityTrace
from repro.cpu.vector_engine import _scalar_lane, run_lanes
from repro.errors import ReproError
from repro.workloads import matmul_int

#: Every LaneOutcome field a scalar run also produces.
LANE_FIELDS = (
    "checksum",
    "cycles",
    "instructions",
    "taken_branches",
    "loads",
    "stores",
    "program_reads",
    "data_reads",
    "data_writes",
    "register_writes",
    "register_toggles",
    "per_mnemonic",
    "error",
)


def fast_reference(source, max_cycles=500_000_000):
    """Scalar fast-engine run shaped like a LaneOutcome field dict."""
    program = assemble(source)
    trace = ActivityTrace()
    cpu = CortexM0(MemoryMap.embedded_system(), trace=trace)
    cpu.load_program(program)
    cpu.run(max_cycles=max_cycles, engine="fast")
    counters = {r.name: r.counters for r in cpu.memory.regions}
    return {
        "checksum": cpu.regs.read(0),
        "cycles": cpu.stats.cycles,
        "instructions": cpu.stats.instructions,
        "taken_branches": cpu.stats.taken_branches,
        "loads": cpu.stats.loads,
        "stores": cpu.stats.stores,
        "program_reads": counters["program"].reads,
        "data_reads": counters["data"].reads,
        "data_writes": counters["data"].writes,
        "register_writes": trace.register_writes,
        "register_toggles": trace.register_toggles,
        "per_mnemonic": dict(cpu.stats.per_mnemonic),
        "error": None,
    }


def assert_lane_matches(lane, reference, context=""):
    for field in LANE_FIELDS:
        got = getattr(lane, field)
        want = (
            reference[field]
            if isinstance(reference, dict)
            else getattr(reference, field)
        )
        assert got == want, f"{context}{field}: {got!r} != {want!r}"


@pytest.mark.smoke
@pytest.mark.parametrize(
    "workload",
    default_study_configs(),
    ids=lambda w: w.name,
)
def test_n1_bit_identical_to_fast_engine(workload):
    """One vector lane degenerates to the scalar result, field-for-field."""
    result = run_lanes(workload.source, lanes=1)
    assert_lane_matches(
        result.lanes[0], fast_reference(workload.source), workload.name
    )


def test_medium_matmul_n1_identity():
    """A heavier configuration exercising deep loop nests at N=1."""
    workload = matmul_int.workload(n=12, repeats=4, tune=5)
    result = run_lanes(workload.source, lanes=1)
    assert result.vectorized
    assert_lane_matches(result.lanes[0], fast_reference(workload.source))


def test_seed_variants_vectorize_and_match_goldens():
    """Seed-parameterized lanes stay lockstep and hit their goldens."""
    seeds = [12345, 7, 42, 999, 31337, 271828, 314159, 2**31 - 1]
    variants = [
        matmul_int.seed_variant(s, n=8, repeats=2, tune=5) for s in seeds
    ]
    result = run_lanes(
        variants[0].source,
        lane_words=[w.data_words for w in variants],
    )
    assert result.vectorized, result.bail_reason
    assert result.lanes_retired == len(seeds)
    for seed, workload, lane in zip(seeds, variants, result.lanes):
        assert lane.checksum == matmul_int.golden_checksum(8, seed)
        assert lane.checksum == workload.expected_checksum


def test_divergent_trip_counts_retire_independently():
    """Lanes with different loop trip counts each match a scalar rerun."""
    source = """
        ldr r0, =0x20000000
        ldr r2, [r0]        @ per-lane trip count
        movs r1, #0
    loop:
        adds r1, r1, #1
        muls r1, r1
        subs r2, r2, #1
        bne loop
        bkpt #0
    """
    trips = [3, 7, 5, 3]
    result = run_lanes(source, lane_words=[(t,) for t in trips])
    assert result.vectorized, result.bail_reason
    program = assemble(source)
    for trip, lane in zip(trips, result.lanes):
        reference = _scalar_lane(program, (trip,), 500_000_000)
        assert_lane_matches(lane, reference, f"trips={trip} ")
        assert abs(lane.activity_factor() - reference.activity_factor()) < 1e-15


def test_bailout_falls_back_to_correct_scalar_results():
    """Lane-dependent addresses bail out of lockstep but stay correct."""
    # Each lane stores at a lane-dependent offset: the vector engine
    # cannot keep a single shared memory image, so it must fall back.
    source = """
        ldr r0, =0x20000000
        ldr r1, [r0]        @ per-lane offset (word-aligned)
        lsls r2, r1, #2
        adds r2, r2, r0
        str r1, [r2, #4]
        ldr r0, [r2, #4]
        bkpt #0
    """
    offsets = [1, 2, 3, 4]
    result = run_lanes(source, lane_words=[(o,) for o in offsets])
    assert not result.vectorized
    assert result.bailouts == 1
    assert result.bail_reason
    program = assemble(source)
    for offset, lane in zip(offsets, result.lanes):
        reference = _scalar_lane(program, (offset,), 500_000_000)
        assert_lane_matches(lane, reference, f"offset={offset} ")
        assert lane.checksum == offset


class TestRunLanesValidation:
    def test_requires_lanes_or_lane_words(self):
        with pytest.raises(ReproError, match="lane_words or lanes"):
            run_lanes("bkpt #0")

    def test_lane_count_disagreement_rejected(self):
        with pytest.raises(ReproError, match="disagrees"):
            run_lanes("bkpt #0", lane_words=[(1,), (2,)], lanes=3)

    def test_zero_lanes_rejected(self):
        with pytest.raises(ReproError, match=">= 1"):
            run_lanes("bkpt #0", lanes=0)
