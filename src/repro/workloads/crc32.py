"""crc32: bitwise CRC-32 (IEEE 802.3 polynomial) over a 1 kB buffer.

Matches Python's ``binascii.crc32`` on the same LCG-generated buffer, so
the golden model is exact.
"""

from __future__ import annotations

import binascii

from repro.workloads.suite import Workload

BUFFER_BYTES = 1024
REPEATS = 4
LCG_SEED = 987654321
LCG_MUL = 1664525
LCG_ADD = 1013904223

BUF_BASE = 0x2000_0000

_TEMPLATE = """
.equ BUF, {buf_base}
.equ LEN, {length}

_start:
    bl init
    movs r7, #{repeats}
repeat_loop:
    bl crc32
    subs r7, r7, #1
    bne repeat_loop
    mvns r0, r5          @ final XOR
    bkpt #0

@ Fill the buffer with LCG bytes.
init:
    push {{r4, r5, r6, lr}}
    ldr r0, =BUF
    ldr r1, ={seed}
    ldr r4, ={lcg_mul}
    ldr r5, ={lcg_add}
    ldr r6, =LEN
init_loop:
    muls r1, r4
    adds r1, r1, r5
    lsrs r2, r1, #24
    strb r2, [r0]
    adds r0, r0, #1
    subs r6, r6, #1
    bne init_loop
    pop {{r4, r5, r6, pc}}

@ r5 = CRC register (kept across repeats is wrong; re-init each call).
crc32:
    push {{r4, r6, r7, lr}}
    ldr r4, =BUF
    ldr r6, =LEN
    movs r5, #0
    mvns r5, r5          @ crc = 0xFFFFFFFF
    ldr r7, =0xEDB88320  @ reflected polynomial
byte_loop:
    ldrb r0, [r4]
    eors r5, r0          @ crc ^= byte (low 8 bits)
    movs r1, #8
bit_loop:
    lsrs r5, r5, #1      @ crc >>= 1, C = shifted-out bit
    bcc no_poly
    eors r5, r7
no_poly:
    subs r1, r1, #1
    bne bit_loop
    adds r4, r4, #1
    subs r6, r6, #1
    bne byte_loop
    pop {{r4, r6, r7, pc}}
"""


def _lcg_buffer(length: int = BUFFER_BYTES) -> bytes:
    x = LCG_SEED
    out = bytearray()
    for _ in range(length):
        x = (x * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        out.append((x >> 24) & 0xFF)
    return bytes(out)


def source(length: int = BUFFER_BYTES, repeats: int = REPEATS) -> str:
    return _TEMPLATE.format(
        buf_base=f"0x{BUF_BASE:08X}",
        length=length,
        repeats=repeats,
        seed=LCG_SEED,
        lcg_mul=LCG_MUL,
        lcg_add=LCG_ADD,
    )


def golden_checksum(length: int = BUFFER_BYTES) -> int:
    return binascii.crc32(_lcg_buffer(length)) & 0xFFFFFFFF


def workload(length: int = BUFFER_BYTES, repeats: int = REPEATS) -> Workload:
    return Workload(
        name="crc32",
        description=f"bitwise CRC-32 over {length} B, {repeats} repeats",
        source=source(length, repeats),
        expected_checksum=golden_checksum(length),
    )
