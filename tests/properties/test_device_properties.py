"""Property-based tests for the virtual-source device models."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.devices import cnfet_nfet, igzo_nfet, si_nfet

voltages = st.floats(min_value=0.0, max_value=1.3)
widths = st.floats(min_value=0.01, max_value=10.0)
makers = st.sampled_from([si_nfet, cnfet_nfet, igzo_nfet])


@given(makers, voltages, voltages, voltages)
def test_current_monotone_in_vgs(maker, vgs_a, vgs_b, vds):
    """More gate drive never reduces forward current."""
    fet = maker("m", 1.0)
    lo, hi = sorted((vgs_a, vgs_b))
    assert fet.ids(hi, vds) >= fet.ids(lo, vds) - 1e-18


@given(makers, voltages, voltages, voltages)
def test_current_monotone_in_vds(maker, vgs, vds_a, vds_b):
    """More drain bias never reduces forward current."""
    fet = maker("m", 1.0)
    lo, hi = sorted((vds_a, vds_b))
    assert fet.ids(vgs, hi) >= fet.ids(vgs, lo) - 1e-18


@given(makers, widths, voltages, voltages)
def test_current_linear_in_width(maker, width, vgs, vds):
    fet_1 = maker("a", 1.0)
    fet_w = maker("b", width)
    expected = fet_1.ids(vgs, vds) * width
    assert math.isclose(
        fet_w.ids(vgs, vds), expected, rel_tol=1e-9, abs_tol=1e-30
    )


@given(makers, voltages, st.floats(min_value=-1.0, max_value=1.0))
def test_reverse_operation_antisymmetry(maker, vg, vds):
    """I(vgs, -vds) relates to the source/drain-exchanged device."""
    fet = maker("m", 1.0)
    forward = fet.ids(vg, vds)
    # Exchange terminals: new vgs = vg - vds, new vds = -vds.
    exchanged = fet.ids(vg - vds, -vds)
    assert math.isclose(forward, -exchanged, rel_tol=1e-9, abs_tol=1e-30)


@given(makers, voltages)
def test_zero_vds_zero_current(maker, vgs):
    fet = maker("m", 1.0)
    assert fet.ids(vgs, 0.0) == 0.0


@given(makers)
def test_figures_of_merit_ordering(maker):
    """I_OFF < I_EFF < I_ON for any of the technologies."""
    fet = maker("m", 1.0)
    assert fet.off_current_a() < fet.effective_current_a() < fet.on_current_a()


@given(makers, st.floats(min_value=0.0, max_value=0.15))
def test_vt_shift_monotone(maker, shift):
    """Raising V_T reduces both on- and off-current."""
    base = maker("a", 1.0)
    shifted = maker("b", 1.0, vt_shift_v=shift) if maker is not cnfet_nfet else (
        cnfet_nfet("b", 1.0, vt_shift_v=shift)
    )
    assert shifted.off_current_a() <= base.off_current_a() + 1e-24
    assert shifted.on_current_a() <= base.on_current_a() + 1e-24
