"""RPL001 — unit-suffix dimensional consistency.

Identifiers in this repo carry their unit as a suffix (``energy_j``,
``die_area_cm2``).  This rule performs lightweight dimensional analysis
over those suffixes:

- adding or subtracting quantities whose suffixes disagree in dimension
  *or* scale (``x_j + y_kwh``, ``a_mm2 - b_cm2``) is flagged;
- ordering/equality comparisons between incompatible suffixed
  quantities are flagged;
- returning an expression with an inferable suffix from a function
  whose own name carries a different suffix (``def area_cm2(): return
  w_mm2``) is flagged.

Multiplication and division are never checked — they are exactly how
unit conversions and derived quantities are formed.  Names containing
``_per_`` are rates and are exempt (see
:func:`repro.quality.dimensions.suffix_of`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.quality.dimensions import UnitSuffix, suffix_of
from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import Rule, dotted_name, register

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _infer_suffix(node: Optional[ast.AST]) -> Optional[UnitSuffix]:
    """The unit suffix of an expression, when the AST makes it evident."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return suffix_of(node.id)
    if isinstance(node, ast.Attribute):
        return suffix_of(node.attr)
    if isinstance(node, ast.Subscript):
        return _infer_suffix(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _infer_suffix(node.operand)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            return suffix_of(name.split(".")[-1])
        return None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        left = _infer_suffix(node.left)
        right = _infer_suffix(node.right)
        if left is not None and right is not None and left.compatible(right):
            return left
        return None
    return None


def _describe(a: UnitSuffix, b: UnitSuffix) -> str:
    if a.dimension != b.dimension:
        return (
            f"mixes dimensions {a.dimension} (_{a.suffix}) and "
            f"{b.dimension} (_{b.suffix})"
        )
    return (
        f"mixes {a.dimension} scales _{a.suffix} and _{b.suffix} "
        f"(convert explicitly first)"
    )


@register
class UnitConsistencyRule(Rule):
    """Flag arithmetic/comparison/return mixing incompatible unit suffixes."""

    rule_id = "RPL001"
    severity = Severity.ERROR
    summary = "unit-suffix dimensional consistency"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_binop(ctx, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_returns(ctx, node)

    # ------------------------------------------------------------------
    def _check_binop(self, ctx, node: ast.BinOp) -> Iterator[Finding]:
        left = _infer_suffix(node.left)
        right = _infer_suffix(node.right)
        if left is None or right is None or left.compatible(right):
            return
        op = "+" if isinstance(node.op, ast.Add) else "-"
        yield self.finding(
            ctx,
            node,
            f"'{op}' {_describe(left, right)}",
        )

    # ------------------------------------------------------------------
    _CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)

    def _check_compare(self, ctx, node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, self._CMP_OPS):
                continue
            left = _infer_suffix(lhs)
            right = _infer_suffix(rhs)
            if left is None or right is None or left.compatible(right):
                continue
            yield self.finding(
                ctx,
                node,
                f"comparison {_describe(left, right)}",
            )

    # ------------------------------------------------------------------
    def _check_returns(self, ctx, func: _FuncDef) -> Iterator[Finding]:
        declared = suffix_of(func.name)
        if declared is None:
            return
        for node in _own_returns(func):
            returned = _infer_suffix(node.value)
            if returned is not None and not returned.compatible(declared):
                yield self.finding(
                    ctx,
                    node,
                    f"function '{func.name}' declares _{declared.suffix} "
                    f"but returns a _{returned.suffix} expression "
                    f"({_describe(declared, returned)})",
                    symbol=func.name,
                )


def _own_returns(func: _FuncDef) -> Iterator[ast.Return]:
    """``return <expr>`` statements of ``func``, excluding nested defs."""
    stack: list = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Return) and node.value is not None:
            yield node
        stack.extend(ast.iter_child_nodes(node))
