"""Property-based tests for the circuit simulator."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Dc,
    Pulse,
    PieceWiseLinear,
    Resistor,
    VoltageSource,
    dc_operating_point,
    transient,
)

resistances = st.floats(min_value=10.0, max_value=1e6)
volts = st.floats(min_value=-5.0, max_value=5.0)
caps = st.floats(min_value=1e-15, max_value=1e-9)


class TestDcProperties:
    @given(volts, resistances, resistances)
    @settings(max_examples=30, deadline=None)
    def test_voltage_divider_formula(self, v, r1, r2):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", Dc(v)))
        c.add(Resistor("r1", "in", "mid", r1))
        c.add(Resistor("r2", "mid", "0", r2))
        op = dc_operating_point(c)
        expected = v * r2 / (r1 + r2)
        assert math.isclose(op["mid"], expected, rel_tol=1e-6, abs_tol=1e-9)

    @given(volts, resistances)
    @settings(max_examples=30, deadline=None)
    def test_ohms_law_branch_current(self, v, r):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", Dc(v)))
        c.add(Resistor("r1", "a", "0", r))
        op = dc_operating_point(c)
        assert math.isclose(op["a"], v, rel_tol=1e-9, abs_tol=1e-12)

    @given(
        st.floats(min_value=1e-6, max_value=1e-2),
        resistances,
    )
    @settings(max_examples=30, deadline=None)
    def test_current_source_superposition(self, i, r):
        c = Circuit()
        c.add(CurrentSource("i1", "0", "a", Dc(i)))
        c.add(CurrentSource("i2", "0", "a", Dc(i)))
        c.add(Resistor("r1", "a", "0", r))
        op = dc_operating_point(c)
        assert math.isclose(op["a"], 2 * i * r, rel_tol=1e-6)

    @given(volts, volts, resistances, resistances)
    @settings(max_examples=25, deadline=None)
    def test_linearity_of_linear_circuits(self, v1, v2, r1, r2):
        """Superposition: response to v1+v2 = response(v1) + response(v2)."""

        def solve(v):
            c = Circuit()
            c.add(VoltageSource("v", "in", "0", Dc(v)))
            c.add(Resistor("r1", "in", "mid", r1))
            c.add(Resistor("r2", "mid", "0", r2))
            return dc_operating_point(c)["mid"]

        assert math.isclose(
            solve(v1 + v2), solve(v1) + solve(v2), rel_tol=1e-6, abs_tol=1e-9
        )


class TestTransientProperties:
    @given(
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=1e3, max_value=1e5),
        caps,
    )
    @settings(max_examples=15, deadline=None)
    def test_rc_final_value(self, v, r, cap):
        """After many time constants the capacitor reaches the source."""
        tau = r * cap
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", Dc(v)))
        c.add(Resistor("r1", "in", "out", r))
        c.add(Capacitor("c1", "out", "0", cap))
        res = transient(
            c, t_stop=10 * tau, dt=tau / 20, use_dc_start=False
        )
        assert math.isclose(res.voltage("out").final(), v, rel_tol=1e-3)

    @given(st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_capacitor_charge_conservation(self, v):
        """Two series caps divide the source by the capacitive divider."""
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", Dc(v)))
        c.add(Resistor("r1", "in", "top", 1e3))
        c.add(Capacitor("c1", "top", "mid", 1e-12))
        c.add(Capacitor("c2", "mid", "0", 1e-12))
        res = transient(c, t_stop=50e-9, dt=0.05e-9, use_dc_start=False)
        # Equal caps -> midpoint settles to v/2.
        assert math.isclose(
            res.voltage("mid").final(), v / 2, rel_tol=5e-3
        )

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_waveform_sample_count(self, steps):
        c = Circuit()
        c.add(VoltageSource("v1", "a", "0", Dc(1.0)))
        c.add(Resistor("r1", "a", "0", 1e3))
        res = transient(c, t_stop=steps * 1e-9, dt=1e-9)
        assert res.times.shape == (steps + 1,)


class TestDriveWaveformProperties:
    @given(
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=-2, max_value=2),
        st.floats(min_value=0, max_value=50e-9),
    )
    @settings(max_examples=40, deadline=None)
    def test_pulse_bounded_by_levels(self, v1, v2, t):
        p = Pulse(v1, v2, delay=5e-9, rise=1e-9, fall=1e-9, width=10e-9)
        lo, hi = min(v1, v2), max(v1, v2)
        assert lo - 1e-12 <= p.at(t) <= hi + 1e-12

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=-5, max_value=5),
            ),
            min_size=2,
            max_size=6,
        ),
        st.floats(min_value=-10, max_value=110),
    )
    @settings(max_examples=40, deadline=None)
    def test_pwl_bounded_by_points(self, raw_points, t):
        points = sorted(raw_points, key=lambda p: p[0])
        pwl = PieceWiseLinear(tuple(points))
        values = [v for _t, v in points]
        assert min(values) - 1e-9 <= pwl.at(t) <= max(values) + 1e-9

    @given(st.floats(min_value=0, max_value=40e-9))
    @settings(max_examples=30, deadline=None)
    def test_periodic_pulse_period_invariance(self, t):
        p = Pulse(0.0, 1.0, rise=1e-9, fall=1e-9, width=3e-9, period=10e-9)
        assert math.isclose(
            p.at(t), p.at(t + 10e-9), rel_tol=1e-9, abs_tol=1e-9
        )
