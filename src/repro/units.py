"""Unit constants and conversion helpers used throughout the library.

Internally the library works in SI base units (seconds, meters, watts,
joules, grams of CO2-equivalent) unless a function's docstring says
otherwise.  The constants below make call sites read like the paper:
``500 * units.MHZ``, ``2 * units.HOURS_PER_DAY`` and so on.

The carbon bookkeeping unit is the gram of CO2-equivalent (gCO2e), matching
Equation 2 of the paper.  Carbon intensities are expressed in gCO2e per
kilowatt-hour because that is how grid data is published.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9
PICOSECOND = 1e-12

MINUTE = 60.0
HOUR = 3600.0
DAY = 24.0 * HOUR
#: Average month length used for lifetime accounting (Julian year / 12).
MONTH = 365.25 * DAY / 12.0
YEAR = 365.25 * DAY

# ---------------------------------------------------------------------------
# Frequency
# ---------------------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------
JOULE = 1.0
MILLIJOULE = 1e-3
MICROJOULE = 1e-6
NANOJOULE = 1e-9
PICOJOULE = 1e-12
FEMTOJOULE = 1e-15

WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6
NANOWATT = 1e-9

#: One kilowatt-hour in joules.
KWH = 1e3 * HOUR

# ---------------------------------------------------------------------------
# Length / area
# ---------------------------------------------------------------------------
METER = 1.0
CENTIMETER = 1e-2
MILLIMETER = 1e-3
MICROMETER = 1e-6
NANOMETER = 1e-9

M2 = 1.0
CM2 = 1e-4
MM2 = 1e-6
UM2 = 1e-12

# ---------------------------------------------------------------------------
# Electrical
# ---------------------------------------------------------------------------
VOLT = 1.0
MILLIVOLT = 1e-3
AMP = 1.0
MILLIAMP = 1e-3
MICROAMP = 1e-6
NANOAMP = 1e-9
PICOAMP = 1e-12
FARAD = 1.0
PICOFARAD = 1e-12
FEMTOFARAD = 1e-15
ATTOFARAD = 1e-18
OHM = 1.0
KILOOHM = 1e3

# ---------------------------------------------------------------------------
# Mass / carbon
# ---------------------------------------------------------------------------
GRAM = 1.0
KILOGRAM = 1e3
MILLIGRAM = 1e-3
PICOGRAM = 1e-12

# Carbon bookkeeping (gCO2e).  Kept as a dimension of its own, distinct
# from generic mass: adding grams of deposited tungsten to grams of
# emitted CO2-equivalent is a modeling bug even though both are "grams".
GCO2E = 1.0
KGCO2E = 1e3

#: Boltzmann constant times room temperature, in electron-volts (kT/q at
#: 300 K).  Used by the compact device models for the subthreshold regime.
THERMAL_VOLTAGE_300K = 0.025852

# Electron charge (C), used by device models.
ELECTRON_CHARGE = 1.602176634e-19


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * KWH


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / KWH


def wafer_area_cm2(diameter_mm: float = 300.0) -> float:
    """Area of a circular wafer in cm^2 for a given diameter in mm.

    >>> round(wafer_area_cm2(300.0), 2)
    706.86
    """
    radius_cm = diameter_mm / 10.0 / 2.0
    return math.pi * radius_cm * radius_cm


def months_to_seconds(months: float) -> float:
    """Convert a lifetime expressed in months to seconds."""
    return months * MONTH


def seconds_to_months(seconds: float) -> float:
    """Convert seconds to (average-length) months."""
    return seconds / MONTH
