"""Circuit elements.

Every element knows how to *stamp* itself into the MNA residual vector and
Jacobian.  The sign convention: the residual of a node equation is the sum
of currents flowing OUT of the node; the solver drives all residuals to
zero.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devices.fet import FET
from repro.errors import NetlistError
from repro.spice.waveform import Dc


class Element:
    """Base class: two-or-more-terminal circuit element."""

    def __init__(self, name: str, nodes: "tuple[str, ...]") -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.nodes = nodes

    #: Number of extra MNA unknowns (branch currents) this element needs.
    n_branches = 0

    def stamp(
        self,
        residual: np.ndarray,
        jacobian: np.ndarray,
        v: np.ndarray,
        index: "dict[str, int]",
        branch_offset: int,
        t: float,
        dt: Optional[float],
        v_prev: Optional[np.ndarray],
    ) -> None:
        """Add this element's contribution at solution estimate ``v``.

        Args:
            residual: Node/branch residual vector (modified in place).
            jacobian: System Jacobian (modified in place).
            v: Current Newton estimate of node voltages/branch currents.
            index: Node name -> unknown index (-1 for ground).
            branch_offset: Index of this element's first branch unknown.
            t: Current simulation time (0 for DC).
            dt: Transient time step, or None for DC analysis.
            v_prev: Previous-step solution (transient only).
        """
        raise NotImplementedError


def _v_at(v: np.ndarray, idx: int) -> float:
    return 0.0 if idx < 0 else float(v[idx])


def _add(mat_or_vec, i: int, *rest) -> None:
    """Accumulate into a vector (i, val) or matrix (i, j, val), skipping
    ground (-1) indices."""
    if len(rest) == 1:
        if i >= 0:
            mat_or_vec[i] += rest[0]
    else:
        j, val = rest
        if i >= 0 and j >= 0:
            mat_or_vec[i, j] += val


class Resistor(Element):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float) -> None:
        super().__init__(name, (n1, n2))
        if resistance <= 0:
            raise NetlistError(f"{name}: resistance must be > 0")
        self.resistance = resistance

    def stamp(self, residual, jacobian, v, index, branch_offset, t, dt, v_prev):
        a, b = index[self.nodes[0]], index[self.nodes[1]]
        g = 1.0 / self.resistance
        current = g * (_v_at(v, a) - _v_at(v, b))
        _add(residual, a, current)
        _add(residual, b, -current)
        _add(jacobian, a, a, g)
        _add(jacobian, a, b, -g)
        _add(jacobian, b, a, -g)
        _add(jacobian, b, b, g)


class Capacitor(Element):
    """Linear capacitor; open in DC, backward-Euler companion in transient.

    Args:
        ic: Optional initial voltage across the capacitor, applied when
            the transient starts from scratch (no DC solution supplied).
    """

    def __init__(
        self, name: str, n1: str, n2: str, capacitance: float,
        ic: Optional[float] = None,
    ) -> None:
        super().__init__(name, (n1, n2))
        if capacitance <= 0:
            raise NetlistError(f"{name}: capacitance must be > 0")
        self.capacitance = capacitance
        self.ic = ic

    def stamp(self, residual, jacobian, v, index, branch_offset, t, dt, v_prev):
        if dt is None:
            return  # open circuit in DC
        a, b = index[self.nodes[0]], index[self.nodes[1]]
        g = self.capacitance / dt
        v_now = _v_at(v, a) - _v_at(v, b)
        v_old = _v_at(v_prev, a) - _v_at(v_prev, b)
        current = g * (v_now - v_old)
        _add(residual, a, current)
        _add(residual, b, -current)
        _add(jacobian, a, a, g)
        _add(jacobian, a, b, -g)
        _add(jacobian, b, a, -g)
        _add(jacobian, b, b, g)


class CurrentSource(Element):
    """Independent current source; current flows from n1 through the
    source to n2 (i.e. out of n2 into the circuit)."""

    def __init__(self, name: str, n1: str, n2: str, drive) -> None:
        super().__init__(name, (n1, n2))
        self.drive = drive if hasattr(drive, "at") else Dc(float(drive))

    def stamp(self, residual, jacobian, v, index, branch_offset, t, dt, v_prev):
        a, b = index[self.nodes[0]], index[self.nodes[1]]
        i = self.drive.at(t)
        _add(residual, a, i)
        _add(residual, b, -i)


class VoltageSource(Element):
    """Independent voltage source with an MNA branch current.

    Positive terminal is ``n1``; the branch current unknown is the current
    flowing from n1 through the source to n2.
    """

    n_branches = 1

    def __init__(self, name: str, n1: str, n2: str, drive) -> None:
        super().__init__(name, (n1, n2))
        self.drive = drive if hasattr(drive, "at") else Dc(float(drive))

    def stamp(self, residual, jacobian, v, index, branch_offset, t, dt, v_prev):
        a, b = index[self.nodes[0]], index[self.nodes[1]]
        k = branch_offset
        i_branch = float(v[k])
        # KCL: branch current leaves n1, enters n2.
        _add(residual, a, i_branch)
        _add(residual, b, -i_branch)
        _add(jacobian, a, k, 1.0)
        _add(jacobian, b, k, -1.0)
        # Branch equation: v(n1) - v(n2) - V(t) = 0.
        residual[k] += _v_at(v, a) - _v_at(v, b) - self.drive.at(t)
        _add(jacobian, k, a, 1.0)
        _add(jacobian, k, b, -1.0)


class FetElement(Element):
    """A FET instance wired (drain, gate, source).

    The channel current uses the compact model; gate capacitance is
    split half to the source and half to the drain (a standard quasi-
    static simplification) unless ``include_gate_caps=False``.
    """

    def __init__(
        self,
        name: str,
        fet: FET,
        drain: str,
        gate: str,
        source: str,
        include_gate_caps: bool = True,
    ) -> None:
        super().__init__(name, (drain, gate, source))
        self.fet = fet
        self.include_gate_caps = include_gate_caps

    def stamp(self, residual, jacobian, v, index, branch_offset, t, dt, v_prev):
        d, g, s = (index[n] for n in self.nodes)
        vd, vg, vs = _v_at(v, d), _v_at(v, g), _v_at(v, s)
        vgs, vds = vg - vs, vd - vs
        ids = self.fet.ids(vgs, vds)
        dv = 1e-5
        gm = (self.fet.ids(vgs + dv, vds) - self.fet.ids(vgs - dv, vds)) / (2 * dv)
        gds = (self.fet.ids(vgs, vds + dv) - self.fet.ids(vgs, vds - dv)) / (2 * dv)
        # Channel current flows d -> s inside the device.
        _add(residual, d, ids)
        _add(residual, s, -ids)
        for row, sign in ((d, 1.0), (s, -1.0)):
            _add(jacobian, row, g, sign * gm)
            _add(jacobian, row, d, sign * gds)
            _add(jacobian, row, s, sign * (-gm - gds))
        if self.include_gate_caps and dt is not None:
            c_half = self.fet.gate_capacitance_f() / 2.0
            for other in (d, s):
                self._stamp_cap(
                    residual, jacobian, v, v_prev, dt, g, other, c_half
                )

    @staticmethod
    def _stamp_cap(residual, jacobian, v, v_prev, dt, a, b, cap):
        g = cap / dt
        v_now = _v_at(v, a) - _v_at(v, b)
        v_old = _v_at(v_prev, a) - _v_at(v_prev, b)
        current = g * (v_now - v_old)
        _add(residual, a, current)
        _add(residual, b, -current)
        _add(jacobian, a, a, g)
        _add(jacobian, a, b, -g)
        _add(jacobian, b, a, -g)
        _add(jacobian, b, b, g)
