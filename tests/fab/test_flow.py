"""Tests for the ProcessFlow container and Equation 4 accounting."""

import numpy as np
import pytest

from repro.errors import ProcessFlowError
from repro.fab.flow import (
    FlowSegment,
    ProcessFlow,
    epa_from_matrices,
    epa_matrix,
)
from repro.fab.steps import ProcessArea, ProcessStep


def _segment(name, energies):
    steps = [
        ProcessStep(f"{name}-{i}", area, e)
        for i, (area, e) in enumerate(energies)
    ]
    return FlowSegment(name=name, steps=steps)


class TestFlowSegment:
    def test_energy_sums_steps_and_lump(self):
        seg = _segment(
            "s", [(ProcessArea.DEPOSITION, 1.0), (ProcessArea.DRY_ETCH, 2.0)]
        )
        assert seg.energy_kwh == pytest.approx(3.0)
        seg.lumped_energy_kwh = 10.0
        assert seg.energy_kwh == pytest.approx(13.0)

    def test_step_counts(self):
        seg = _segment(
            "s",
            [
                (ProcessArea.DEPOSITION, 1.0),
                (ProcessArea.DEPOSITION, 1.0),
                (ProcessArea.LITHOGRAPHY, 8.0),
            ],
        )
        counts = seg.step_counts()
        assert counts.count(ProcessArea.DEPOSITION) == 2
        assert counts.count(ProcessArea.LITHOGRAPHY) == 1


class TestProcessFlow:
    def test_total_energy(self):
        flow = ProcessFlow("f")
        flow.add_segment(_segment("a", [(ProcessArea.DEPOSITION, 1.5)]))
        flow.add_segment(FlowSegment("b", lumped_energy_kwh=10.0))
        assert flow.total_energy_kwh() == pytest.approx(11.5)

    def test_duplicate_segment_rejected(self):
        flow = ProcessFlow("f")
        flow.add_segment(FlowSegment("a"))
        with pytest.raises(ProcessFlowError, match="duplicate"):
            flow.add_segment(FlowSegment("a"))

    def test_segment_lookup(self):
        flow = ProcessFlow("f")
        flow.add_segment(FlowSegment("a", lumped_energy_kwh=1.0))
        assert flow.segment("a").energy_kwh == 1.0
        with pytest.raises(ProcessFlowError, match="no segment"):
            flow.segment("zzz")

    def test_bad_wafer_diameter(self):
        with pytest.raises(ProcessFlowError):
            ProcessFlow("f", wafer_diameter_mm=0.0)

    def test_segment_energies_preserve_order(self):
        flow = ProcessFlow("f")
        flow.add_segment(FlowSegment("z", lumped_energy_kwh=1.0))
        flow.add_segment(FlowSegment("a", lumped_energy_kwh=2.0))
        assert list(flow.segment_energies()) == ["z", "a"]

    def test_step_count_matrix_shape_and_order(self):
        flow = ProcessFlow("f")
        flow.add_segment(
            _segment(
                "a",
                [
                    (ProcessArea.LITHOGRAPHY, 8.0),
                    (ProcessArea.DEPOSITION, 1.0),
                    (ProcessArea.DEPOSITION, 1.0),
                ],
            )
        )
        mat = flow.step_count_matrix()
        assert mat.shape == (6, 1)
        ordered = ProcessArea.ordered()
        assert mat[ordered.index(ProcessArea.LITHOGRAPHY), 0] == 1
        assert mat[ordered.index(ProcessArea.DEPOSITION), 0] == 2


class TestEquation4:
    def test_epa_matrix_stacks_flows(self):
        f1 = ProcessFlow("f1")
        f1.add_segment(_segment("a", [(ProcessArea.DEPOSITION, 1.0)]))
        f2 = ProcessFlow("f2")
        f2.add_segment(
            _segment(
                "a",
                [(ProcessArea.DEPOSITION, 1.0), (ProcessArea.DRY_ETCH, 1.5)],
            )
        )
        mat = epa_matrix([f1, f2])
        assert mat.shape == (6, 2)

    def test_epa_from_matrices_reproduces_flow_energy(self):
        """Eq. 4 matrix product == direct per-step summation, when all
        steps of a flow use the canonical per-area energies."""
        from repro.fab import energy_data
        from repro.fab.processes import build_all_si_process, build_m3d_process

        flows = [build_all_si_process(), build_m3d_process()]
        counts = epa_matrix(flows)
        energies = np.array(
            [
                energy_data.STEP_ENERGY_KWH[a]
                for a in ProcessArea.ordered()
            ]
        )
        stepwise = epa_from_matrices(counts, energies)
        for flow, matrix_epa in zip(flows, stepwise):
            explicit = sum(
                s.energy_kwh for seg in flow.segments for s in seg.steps
            )
            assert matrix_epa == pytest.approx(explicit)

    def test_epa_from_matrices_shape_mismatch(self):
        with pytest.raises(ProcessFlowError, match="shape"):
            epa_from_matrices(np.ones((6, 2)), np.ones(5))

    def test_epa_matrix_empty(self):
        with pytest.raises(ProcessFlowError):
            epa_matrix([])
