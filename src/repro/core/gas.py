"""GPA: direct gas emissions per area (Equation 3).

High-global-warming-potential gases (NH3, CH4, N2O, fluorinated etch
gases) are direct inputs to etch and deposition steps.  Following the
paper, GPA for a process is estimated by scaling the reported GPA of the
imec iN7 EUV node (0.20 kgCO2e/cm^2 on 300 mm wafers) by the ratio of
fabrication energies:

    GPA_process = (EPA_process / EPA_iN7-EUV) * GPA_iN7-EUV
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import CarbonModelError
from repro.fab import energy_data
from repro.fab.flow import ProcessFlow


@dataclass(frozen=True)
class GasEmissionsModel:
    """Equation 3 GPA model, anchored to a reference node.

    Attributes:
        reference_gpa_g_per_cm2: GPA of the reference node (gCO2e/cm^2).
        reference_epa_kwh: Total fabrication energy of the reference node
            (kWh per wafer).
    """

    reference_gpa_g_per_cm2: float = (
        energy_data.IN7_EUV_GPA_KG_PER_CM2 * 1000.0
    )
    reference_epa_kwh: float = energy_data.IN7_EUV_TOTAL_ENERGY_KWH

    def __post_init__(self) -> None:
        if self.reference_gpa_g_per_cm2 < 0:
            raise CarbonModelError("reference GPA must be >= 0")
        if self.reference_epa_kwh <= 0:
            raise CarbonModelError("reference EPA must be > 0")

    def scaling_ratio(self, epa_kwh: float) -> float:
        """EPA_process / EPA_reference (the Eq. 3 ratio)."""
        if epa_kwh < 0:
            raise CarbonModelError(f"EPA must be >= 0, got {epa_kwh}")
        return epa_kwh / self.reference_epa_kwh

    def gpa_g_per_cm2(self, epa_kwh: float) -> float:
        """GPA in gCO2e/cm^2 for a process with the given EPA."""
        return self.scaling_ratio(epa_kwh) * self.reference_gpa_g_per_cm2

    def gpa_for_flow_g_per_cm2(self, flow: ProcessFlow) -> float:
        """GPA for a :class:`ProcessFlow`, from its total energy."""
        return self.gpa_g_per_cm2(flow.total_energy_kwh())

    def per_wafer_g(self, flow: ProcessFlow) -> float:
        """Total gas emissions per wafer (gCO2e)."""
        area = units.wafer_area_cm2(flow.wafer_diameter_mm)
        return self.gpa_for_flow_g_per_cm2(flow) * area
