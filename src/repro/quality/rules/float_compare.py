"""RPL004 — float equality comparisons in model code.

``x == 0.3`` is almost never what an analytical model means: values
arrive through chains of float arithmetic, and exact equality silently
becomes unreachable (or worse, platform-dependent).  The rule flags
``==`` / ``!=`` where either operand is a float literal (including
signed literals and ``float(...)`` casts) and suggests
``math.isclose`` or an explicit tolerance.

Comparisons with no float literal are not flagged — integer sentinels,
string matches, and variable-vs-variable comparisons stay untouched.
An *intentional* exact comparison (e.g. testing against an untouched
default value) should carry a ``# repro-lint: disable=RPL004`` pragma
with a justifying comment.

The ``runtime`` package is exempt (benchmark comparators implement
tolerance logic themselves).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import Rule, dotted_name, register
from repro.quality.rules.determinism import EXEMPT_COMPONENTS


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_literal(node.operand)
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name == "float"
    return False


@register
class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` against float literals in model code."""

    rule_id = "RPL004"
    severity = Severity.WARNING
    summary = "no float == / != in model code"

    def check(self, ctx) -> Iterator[Finding]:
        if EXEMPT_COMPONENTS.intersection(ctx.parts[:-1]):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(lhs) or _is_float_literal(rhs):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"float '{symbol}' comparison; use math.isclose "
                        f"or an explicit tolerance (pragma-disable with a "
                        f"justification if exact comparison is intended)",
                    )
