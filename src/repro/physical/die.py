"""Die-per-wafer estimation (Equation 5 input).

The paper uses a die-per-wafer estimator [39] with horizontal & vertical
scribe spacing of 0.1 mm, edge clearance of 5 mm, and flat/notch height of
10 mm.  Two estimators are provided:

- :func:`dies_per_wafer` — the analytic formula

      DPW = pi*d'^2 / (4*S) - pi*d' / sqrt(2*S)

  with d' the wafer diameter reduced by the edge clearance and
  S = (H + s)(W + s) the scribed die area.  With the paper's parameters it
  reproduces the published counts to < 0.05 % (299,127 and 606,238).

- :func:`dies_per_wafer_grid` — an exact rectangle-packing count on a
  grid, with optional notch exclusion; useful for large dies where the
  analytic formula's edge correction is inaccurate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PhysicalDesignError


@dataclass(frozen=True)
class DieGeometry:
    """Die and wafer geometry, all lengths in millimeters.

    Defaults follow Sec. III-B step 5 of the paper.
    """

    die_height_mm: float
    die_width_mm: float
    scribe_mm: float = 0.1
    wafer_diameter_mm: float = 300.0
    edge_clearance_mm: float = 5.0
    notch_height_mm: float = 10.0

    def __post_init__(self) -> None:
        if self.die_height_mm <= 0 or self.die_width_mm <= 0:
            raise PhysicalDesignError("die dimensions must be positive")
        if self.scribe_mm < 0:
            raise PhysicalDesignError("scribe spacing must be >= 0")
        if self.wafer_diameter_mm <= 0:
            raise PhysicalDesignError("wafer diameter must be positive")
        if self.edge_clearance_mm < 0:
            raise PhysicalDesignError("edge clearance must be >= 0")
        usable = self.wafer_diameter_mm - self.edge_clearance_mm
        if usable <= max(self.pitch_height_mm, self.pitch_width_mm):
            raise PhysicalDesignError(
                "usable wafer diameter smaller than one die pitch"
            )

    @property
    def pitch_height_mm(self) -> float:
        """Die height plus scribe: the vertical placement pitch."""
        return self.die_height_mm + self.scribe_mm

    @property
    def pitch_width_mm(self) -> float:
        return self.die_width_mm + self.scribe_mm

    @property
    def scribed_area_mm2(self) -> float:
        """S = (H + s)(W + s), the area each die occupies on the wafer."""
        return self.pitch_height_mm * self.pitch_width_mm

    @property
    def die_area_mm2(self) -> float:
        return self.die_height_mm * self.die_width_mm

    @property
    def usable_diameter_mm(self) -> float:
        """Wafer diameter reduced by the edge clearance."""
        return self.wafer_diameter_mm - self.edge_clearance_mm


def dies_per_wafer(geometry: DieGeometry) -> int:
    """Analytic die-per-wafer count (anysilicon-style formula [39]).

    >>> g = DieGeometry(die_height_mm=0.270, die_width_mm=0.515)
    >>> dies_per_wafer(g)  # paper: 299,127
    298996
    """
    d = geometry.usable_diameter_mm
    s = geometry.scribed_area_mm2
    count = math.pi * d * d / (4.0 * s) - math.pi * d / math.sqrt(2.0 * s)
    return max(0, int(count))


def dies_per_wafer_grid(
    geometry: DieGeometry,
    exclude_notch: bool = True,
    x_offset_mm: float = 0.0,
    y_offset_mm: float = 0.0,
) -> int:
    """Exact grid-packing die count.

    Places a rectangular grid of die pitches (optionally offset from wafer
    center) and counts dies whose four corners all fall inside the usable
    circle, excluding a flat/notch band of ``notch_height_mm`` at the
    bottom when ``exclude_notch``.
    """
    radius = geometry.usable_diameter_mm / 2.0
    ph, pw = geometry.pitch_height_mm, geometry.pitch_width_mm
    notch_y = (
        -radius + geometry.notch_height_mm if exclude_notch else -radius - 1.0
    )

    def inside(x: float, y: float) -> bool:
        return x * x + y * y <= radius * radius and y >= notch_y

    count = 0
    n_cols = int(math.ceil(2.0 * radius / pw)) + 2
    n_rows = int(math.ceil(2.0 * radius / ph)) + 2
    for i in range(-n_cols, n_cols + 1):
        x0 = i * pw + x_offset_mm
        x1 = x0 + pw
        if max(abs(x0), abs(x1)) > radius:
            continue
        for j in range(-n_rows, n_rows + 1):
            y0 = j * ph + y_offset_mm
            y1 = y0 + ph
            if inside(x0, y0) and inside(x0, y1) and inside(x1, y0) and inside(
                x1, y1
            ):
                count += 1
    return count


def good_dies_per_wafer(geometry: DieGeometry, yield_fraction: float) -> float:
    """Expected number of good dies per wafer."""
    if not (0.0 < yield_fraction <= 1.0):
        raise PhysicalDesignError(
            f"yield must be in (0, 1], got {yield_fraction}"
        )
    return dies_per_wafer(geometry) * yield_fraction
