"""Carbon-aware design-space optimization (after CORDOBA, ref [18]).

The paper evaluates both designs at one operating point (500 MHz).  Its
companion framework (reference [18]) optimizes the operating point *for*
carbon efficiency.  This module searches the (clock frequency, V_T
flavour, technology) space for the design that minimizes tCDP at a given
lifetime, subject to a performance constraint — answering "what clock
should the design team actually target?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.analysis.case_study import (
    SystemDesign,
    build_all_si_system,
    build_m3d_system,
)
from repro.core.operational import UsageScenario
from repro.errors import CarbonModelError, TimingClosureError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated candidate in the search space."""

    technology: str
    clock_hz: float
    vt_flavor: str
    tcdp: float
    total_carbon_g: float
    execution_time_s: float
    energy_per_cycle_j: float

    @property
    def clock_mhz(self) -> float:
        return self.clock_hz / 1e6


@dataclass
class OptimizationResult:
    """Search outcome: the winner plus the whole evaluated frontier."""

    best: DesignPoint
    frontier: List[DesignPoint]

    def best_per_technology(self) -> "dict[str, DesignPoint]":
        out: "dict[str, DesignPoint]" = {}
        for point in self.frontier:
            current = out.get(point.technology)
            if current is None or point.tcdp < current.tcdp:
                out[point.technology] = point
        return out


_BUILDERS: "dict[str, Callable[..., SystemDesign]]" = {
    "all-si": build_all_si_system,
    "m3d": build_m3d_system,
}

#: Memory timing characterization cache (clock-independent, so one SPICE
#: run per technology covers the whole clock sweep).
_MEMORY_TIMING_CACHE: "dict[str, object]" = {}


def _memory_timing(technology: str):
    if technology not in _MEMORY_TIMING_CACHE:
        from repro.edram.bitcell import m3d_bitcell, si_bitcell
        from repro.edram.subarray import SubArrayDesign
        from repro.edram.timing import characterize

        cell = si_bitcell() if technology == "all-si" else m3d_bitcell()
        _MEMORY_TIMING_CACHE[technology] = characterize(SubArrayDesign(cell))
    return _MEMORY_TIMING_CACHE[technology]


def optimize_tcdp(
    lifetime_months: float = 24.0,
    clocks_hz: Optional[Sequence[float]] = None,
    technologies: Sequence[str] = ("all-si", "m3d"),
    max_execution_time_s: Optional[float] = None,
    grid: str = "us",
) -> OptimizationResult:
    """Minimize tCDP over clock frequency and technology.

    Args:
        lifetime_months: System lifetime for the tC term.
        clocks_hz: Candidate clocks (default: the paper's 100 MHz-1 GHz
            sweep).
        technologies: Which implementations to consider.
        max_execution_time_s: Optional latency constraint — candidates
            whose matmul-int run exceeds it are rejected (the paper's
            "each embedded application must finish executing in a fixed
            amount of time").
        grid: Carbon-intensity grid for fab and use.

    Returns:
        The tCDP-optimal design point and the evaluated frontier.

    Raises:
        CarbonModelError: If no candidate satisfies the constraints.
    """
    clock_list = (
        list(clocks_hz)
        if clocks_hz is not None
        else [100e6 * k for k in range(1, 11)]
    )
    scenario = UsageScenario(lifetime_months)
    frontier: List[DesignPoint] = []
    for technology in technologies:
        if technology not in _BUILDERS:
            raise CarbonModelError(
                f"unknown technology {technology!r}; "
                f"options: {sorted(_BUILDERS)}"
            )
        memory_timing = _memory_timing(technology)
        for clock in clock_list:
            if not memory_timing.meets_clock(clock):
                continue  # single-cycle eDRAM access infeasible
            try:
                system = _BUILDERS[technology](
                    clock_hz=clock, scenario=scenario, grid=grid
                )
            except TimingClosureError:
                continue  # no V_T flavour closes timing at this clock
            if (
                max_execution_time_s is not None
                and system.execution_time_s > max_execution_time_s
            ):
                continue
            frontier.append(
                DesignPoint(
                    technology=technology,
                    clock_hz=clock,
                    vt_flavor=system.core.flavor.value,
                    tcdp=system.tcdp(lifetime_months),
                    total_carbon_g=system.total_carbon.total_g(
                        lifetime_months
                    ),
                    execution_time_s=system.execution_time_s,
                    energy_per_cycle_j=(
                        system.core.energy_per_cycle_j
                        + system.memory_energy_per_cycle_j
                    ),
                )
            )
    if not frontier:
        raise CarbonModelError(
            "no design point satisfies the constraints "
            f"(clocks {min(clock_list)/1e6:.0f}-{max(clock_list)/1e6:.0f} MHz, "
            f"max time {max_execution_time_s})"
        )
    best = min(frontier, key=lambda p: p.tcdp)
    return OptimizationResult(best=best, frontier=frontier)


def pareto_front(
    points: Sequence[DesignPoint],
) -> List[DesignPoint]:
    """Carbon/performance Pareto front: no other point is faster *and*
    lower-carbon."""
    front: List[DesignPoint] = []
    for p in points:
        dominated = any(
            (q.execution_time_s <= p.execution_time_s)
            and (q.total_carbon_g <= p.total_carbon_g)
            and (
                q.execution_time_s < p.execution_time_s
                or q.total_carbon_g < p.total_carbon_g
            )
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.execution_time_s)
