"""Tests for C_operational and usage scenarios (Eq. 1, 6-8)."""

import pytest

from repro import units
from repro.core.carbon_intensity import (
    ConstantCarbonIntensity,
    DailyWindowProfile,
)
from repro.core.operational import (
    OperationalCarbonModel,
    OperationalPower,
    UsageScenario,
    operational_carbon_g,
)
from repro.errors import CarbonModelError


class TestUsageScenario:
    def test_paper_scenario(self):
        s = UsageScenario(24.0)
        assert s.daily_windows == ((20.0, 22.0),)
        assert s.active_hours_per_day == 2.0
        assert s.duty_cycle == pytest.approx(2.0 / 24.0)

    def test_active_seconds(self):
        s = UsageScenario(12.0)
        assert s.active_seconds == pytest.approx(
            units.months_to_seconds(12.0) / 12.0
        )

    def test_with_lifetime_preserves_windows(self):
        s = UsageScenario(24.0, daily_windows=((8.0, 10.0), (20.0, 22.0)))
        s2 = s.with_lifetime(6.0)
        assert s2.lifetime_months == 6.0
        assert s2.daily_windows == s.daily_windows

    def test_validation(self):
        with pytest.raises(CarbonModelError):
            UsageScenario(-1.0)
        with pytest.raises(CarbonModelError):
            UsageScenario(1.0, daily_windows=((22.0, 20.0),))
        with pytest.raises(CarbonModelError):
            UsageScenario(1.0, daily_windows=((0.0, 25.0),))


class TestOperationalPower:
    def test_from_energy_per_cycle_table2(self):
        """Table II, all-Si: 1.42 + 18.0 pJ/cycle at 500 MHz = 9.71 mW."""
        p = OperationalPower.from_energy_per_cycle(
            1.42e-12, 18.0e-12, 500e6
        )
        assert p.total_w == pytest.approx(9.71e-3)

    def test_m3d_power(self):
        p = OperationalPower.from_energy_per_cycle(
            1.42e-12, 15.5e-12, 500e6
        )
        assert p.total_w == pytest.approx(8.46e-3)

    def test_static_included(self):
        p = OperationalPower.from_energy_per_cycle(
            1e-12, 1e-12, 1e9, static_w=5e-6
        )
        assert p.total_w == pytest.approx(2e-3 + 5e-6)

    def test_negative_rejected(self):
        with pytest.raises(CarbonModelError):
            OperationalPower(static_w=-1.0)
        with pytest.raises(CarbonModelError):
            OperationalPower.from_energy_per_cycle(1e-12, 1e-12, 0.0)


class TestOperationalCarbonModel:
    def _model(self, power_w=9.71e-3, ci=380.0):
        return OperationalCarbonModel(
            OperationalPower(static_w=power_w),
            ConstantCarbonIntensity(ci),
        )

    def test_paper_all_si_24_months(self):
        """All-Si operational carbon at 24 months ~ 5.39 g (US grid)."""
        model = self._model()
        carbon = model.carbon_g(UsageScenario(24.0))
        assert carbon == pytest.approx(5.39, abs=0.02)

    def test_carbon_per_month_constant(self):
        model = self._model()
        a = model.carbon_per_month_g(UsageScenario(1.0))
        b = model.carbon_per_month_g(UsageScenario(24.0))
        assert a == pytest.approx(b)
        assert a == pytest.approx(0.2246, abs=0.001)

    def test_zero_lifetime(self):
        model = self._model()
        assert model.carbon_g(UsageScenario(0.0)) == 0.0
        assert model.carbon_per_month_g(UsageScenario(0.0)) == 0.0

    def test_energy_kwh(self):
        model = self._model(power_w=1.0)
        s = UsageScenario(12.0)
        assert model.energy_kwh(s) == pytest.approx(
            s.active_seconds / units.KWH
        )

    def test_series_monotone(self):
        model = self._model()
        months = [1.0, 6.0, 12.0, 24.0]
        series = model.carbon_series_g(months, UsageScenario(24.0))
        assert series == sorted(series)
        assert series[-1] == pytest.approx(24 * series[0], rel=1e-9)

    def test_time_varying_ci_uses_window(self):
        profile = DailyWindowProfile([(0, 100.0), (20, 400.0), (22, 100.0)])
        model = OperationalCarbonModel(
            OperationalPower(static_w=1e-3), profile
        )
        flat = OperationalCarbonModel(
            OperationalPower(static_w=1e-3), ConstantCarbonIntensity(400.0)
        )
        s = UsageScenario(12.0)
        # The whole 8-10 pm window sits in the 400 g/kWh segment.
        assert model.carbon_g(s) == pytest.approx(flat.carbon_g(s))


class TestClosedForm:
    def test_convenience_function_doctest_value(self):
        assert operational_carbon_g(9.71e-3, 380.0, 24.0) == pytest.approx(
            5.39, abs=0.01
        )

    def test_linear_in_everything(self):
        base = operational_carbon_g(1e-3, 100.0, 10.0)
        assert operational_carbon_g(2e-3, 100.0, 10.0) == pytest.approx(2 * base)
        assert operational_carbon_g(1e-3, 200.0, 10.0) == pytest.approx(2 * base)
        assert operational_carbon_g(1e-3, 100.0, 20.0) == pytest.approx(2 * base)
        assert operational_carbon_g(
            1e-3, 100.0, 10.0, hours_per_day=4.0
        ) == pytest.approx(2 * base)
