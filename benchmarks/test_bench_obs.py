"""Observability overhead benchmark: writes ``BENCH_obs.json``.

The contract the obs layer was built around: with tracing off, the
fully instrumented ISS path costs under 2 % versus an uninstrumented
control; the 100 Hz continuous sampling profiler costs under 5 %; and
results stay bit-identical across all four arms.
"""

import json


def test_bench_obs(output_dir):
    from repro.runtime.bench_obs import (
        OVERHEAD_BUDGET,
        PROFILER_BUDGET,
        run_obs_bench,
    )

    path = output_dir / "BENCH_obs.json"
    report = run_obs_bench(output_path=path)

    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["schema"] == "bench-obs/2"
    assert data["bit_identical"]
    assert data["tracing_off_overhead_under_2pct"]
    assert data["tracing_off_overhead_fraction"] < OVERHEAD_BUDGET
    assert data["profiler_overhead_under_5pct"]
    assert data["profiler_on_overhead_fraction"] < PROFILER_BUDGET
    assert data["profiler_sampled"]
    assert data["profiler_samples"] > 0
    assert data["control_wall_seconds"] > 0

    print(json.dumps(report, indent=2))
