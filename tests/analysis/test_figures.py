"""Tests for the figure data generators and text reports."""

import numpy as np
import pytest

from repro.analysis import build_case_study, figures, report


@pytest.fixture(scope="module")
def case():
    return build_case_study()


class TestFig2c:
    def test_all_grids_present(self):
        data = figures.fig2c_embodied_per_wafer()
        assert set(data) == {"us", "coal", "solar", "taiwan", "average"}

    def test_us_values(self):
        data = figures.fig2c_embodied_per_wafer()
        assert data["us"]["all_si"] == pytest.approx(837.0, rel=0.005)
        assert data["us"]["m3d"] == pytest.approx(1100.0, rel=0.005)

    def test_average_ratio(self):
        data = figures.fig2c_embodied_per_wafer()
        assert data["average"]["ratio"] == pytest.approx(1.31, abs=0.02)

    def test_custom_grid(self):
        data = figures.fig2c_embodied_per_wafer({"clean": 10.0})
        # With fab energy nearly free, only the GPA overhead remains:
        # the ratio drops well below the US-grid 1.31x.
        assert data["clean"]["ratio"] < 1.15

    def test_render(self):
        text = report.render_fig2c(figures.fig2c_embodied_per_wafer())
        assert "837" in text and "1100" in text and "1.31" in text


class TestFig2d:
    def test_deposition_anchor(self):
        data = figures.fig2d_euv_metal_steps()
        assert data["deposition"]["steps"] == 3
        assert data["deposition"]["total_kwh"] == pytest.approx(4.0)
        assert data["deposition"]["kwh_per_step"] == pytest.approx(4.0 / 3.0)

    def test_all_areas_present(self):
        data = figures.fig2d_euv_metal_steps()
        assert set(data) == {
            "lithography", "dry_etch", "wet_etch",
            "metallization", "deposition", "metrology",
        }

    def test_lithography_dominates(self):
        data = figures.fig2d_euv_metal_steps()
        litho = data["lithography"]["total_kwh"]
        for area, row in data.items():
            if area != "lithography":
                assert litho > row["total_kwh"]

    def test_render(self):
        text = report.render_fig2d(figures.fig2d_euv_metal_steps())
        assert "lithography" in text


class TestFig4:
    def test_sweep_grid(self):
        data = figures.fig4_energy_vs_clock()
        assert set(data) == {"hvt", "rvt", "lvt", "slvt"}
        for series in data.values():
            assert len(series) == 10
            assert series[0]["clock_mhz"] == 100.0
            assert series[-1]["clock_mhz"] == 1000.0

    def test_selected_point(self):
        """RVT at 500 MHz = 1.42 pJ (Table II / Fig. 4)."""
        data = figures.fig4_energy_vs_clock()
        point = data["rvt"][4]
        assert point["clock_mhz"] == 500.0
        assert point["met_timing"] == 1.0
        assert point["energy_per_cycle_pj"] == pytest.approx(1.42, abs=0.01)

    def test_hvt_fails_high_clocks(self):
        data = figures.fig4_energy_vs_clock()
        assert data["hvt"][-1]["met_timing"] == 0.0
        assert data["slvt"][-1]["met_timing"] == 1.0

    def test_slvt_energy_falls_then_rises(self):
        """Fig. 4 shape: leakage/cycle dominates at low f, sizing at
        high f, giving a U-shaped curve for leaky flavours."""
        data = figures.fig4_energy_vs_clock()
        slvt = [p["energy_per_cycle_pj"] for p in data["slvt"]]
        minimum = min(slvt)
        assert slvt[0] > minimum
        assert slvt[-1] > minimum

    def test_render(self):
        text = report.render_fig4(figures.fig4_energy_vs_clock())
        assert "RVT" in text and "500" in text


class TestFig5:
    def test_series_structure(self, case):
        data = figures.fig5_tc_and_tcdp(case)
        assert len(data["months"]) == 24
        for key in ("all_si", "m3d"):
            system = data[key]
            assert len(system["total_g"]) == 24
            # Embodied is constant; operational grows linearly.
            assert len(set(system["embodied_g"])) == 1
            assert system["operational_g"][-1] > system["operational_g"][0]

    def test_ratio_highlights(self, case):
        data = figures.fig5_tc_and_tcdp(case)
        highlights = data["highlighted_ratios"]
        assert highlights[1.0] > 1.0  # early: M3D worse
        assert highlights[24.0] < 1.0  # late: M3D better
        assert highlights[24.0] == pytest.approx(1 / 1.02, abs=0.005)

    def test_ratio_converges_toward_edp(self, case):
        data = figures.fig5_tc_and_tcdp(case, months=[1.0, 100.0, 1000.0])
        ratios = data["ratio_m3d_over_si"]
        limit = data["edp_limit"]
        assert abs(ratios[2] - limit) < abs(ratios[0] - limit)

    def test_crossover_in_range(self, case):
        data = figures.fig5_tc_and_tcdp(case)
        assert 10.0 < data["crossover_months"] < 24.0

    def test_render(self, case):
        text = report.render_fig5(figures.fig5_tc_and_tcdp(case))
        assert "tC" in text and "crossover" in text


class TestFig6a:
    def test_map_shape(self, case):
        data = figures.fig6a_tradeoff_map(case)
        assert data["ratio_map"].shape == (40, 40)

    def test_nominal_point_favors_m3d_at_24mo(self, case):
        data = figures.fig6a_tradeoff_map(case, lifetime_months=24.0)
        assert data["nominal_ratio"] < 1.0

    def test_nominal_point_favors_si_at_6mo(self, case):
        data = figures.fig6a_tradeoff_map(case, lifetime_months=6.0)
        assert data["nominal_ratio"] > 1.0

    def test_isoline_on_unit_contour(self, case):
        data = figures.fig6a_tradeoff_map(case)
        ys = data["op_scales"]
        xs = data["isoline_emb_scale"]
        from repro.analysis.figures import _operating_points
        from repro.core.isoline import TcdpTradeoffMap

        c, b = _operating_points(case, 24.0)
        tmap = TcdpTradeoffMap(c, b)
        for x, y in zip(xs, ys):
            if np.isfinite(x):
                assert tmap.ratio(float(x), float(y)) == pytest.approx(1.0)

    def test_render(self, case):
        text = report.render_fig6a(figures.fig6a_tradeoff_map(case))
        assert "+" in text and "." in text


class TestFig6b:
    def test_isoline_family(self, case):
        data = figures.fig6b_isoline_uncertainty(case)
        assert len(data["isolines"]) == 7  # nominal + 6 perturbations

    def test_perturbations_move_isoline(self, case):
        data = figures.fig6b_isoline_uncertainty(case)
        nominal = data["isolines"]["nominal"]
        moved = 0
        for name, xs in data["isolines"].items():
            if name == "nominal":
                continue
            mask = np.isfinite(nominal) & np.isfinite(xs)
            if mask.any() and not np.allclose(xs[mask], nominal[mask]):
                moved += 1
        assert moved == 6

    def test_robust_regions_nonempty(self, case):
        data = figures.fig6b_isoline_uncertainty(case)
        regions = data["robust_regions"]
        assert regions["candidate_always"].any()
        assert regions["baseline_always"].any()
        assert regions["uncertain"].any()

    def test_render(self, case):
        text = report.render_fig6b(figures.fig6b_isoline_uncertainty(case))
        assert "nominal" in text and "yield" in text


class TestTable2Report:
    def test_render_table2(self, case):
        text = report.render_table2(case)
        assert "20,047,348" in text
        assert "837" in text
        assert "tCDP" in text
