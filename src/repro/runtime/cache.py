"""Persistent content-addressed cache of workload results.

An ISS run is a pure function of the assembly source, the cycle budget,
and the simulator semantics.  This module memoizes
:class:`~repro.workloads.suite.WorkloadResult` on disk keyed by a
SHA-256 over exactly those inputs, so figure regeneration and repeated
benchmark builds reuse prior runs.

Cache directory resolution (first match wins):

1. the ``root`` argument to :class:`ResultCache`,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``~/.cache/repro-iss``.

Entries are single JSON files named ``<key>.json``.  A corrupted or
incomplete file is treated as a miss and deleted.  Bump
:data:`ISS_VERSION` whenever simulator semantics change observably —
every old entry then misses by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Tuple

from repro.workloads.suite import Workload, WorkloadResult, run_workload

#: Version tag folded into every cache key.  Bump on any change to the
#: simulator, assembler, or result fields that alters observable output.
ISS_VERSION = "iss-1-fastpath"

_ENV_VAR = "REPRO_CACHE_DIR"

#: The numeric result fields persisted per entry (name -> type).
_RESULT_FIELDS = (
    ("checksum", int),
    ("cycles", int),
    ("instructions", int),
    ("program_reads", int),
    ("data_reads", int),
    ("data_writes", int),
    ("activity_factor", float),
)


def default_cache_dir() -> Path:
    """The cache root honoring ``REPRO_CACHE_DIR``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-iss"


def cache_key(
    workload: Workload, max_cycles: int, version: str = ISS_VERSION
) -> str:
    """SHA-256 hex digest identifying one (workload, budget, ISS) run."""
    payload = json.dumps(
        {
            "name": workload.name,
            "source": workload.source,
            "expected_checksum": workload.expected_checksum,
            "max_cycles": max_cycles,
            "iss_version": version,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed memoization of workload results.

    Thread/process-safe for concurrent writers of the *same* entry: the
    payload is deterministic, and writes go through an atomic rename.
    """

    def __init__(
        self, root: Optional[Path] = None, version: str = ISS_VERSION
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, workload: Workload, max_cycles: int) -> Path:
        return self.root / (
            cache_key(workload, max_cycles, self.version) + ".json"
        )

    # ------------------------------------------------------------------
    def get(
        self, workload: Workload, max_cycles: int
    ) -> Optional[WorkloadResult]:
        """The cached result, or ``None`` on miss.

        The returned result wraps the *requested* workload object; only
        the numeric outcome fields come from disk.  Corrupted entries
        count as misses and are removed.
        """
        path = self._path(workload, max_cycles)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            fields = {}
            for name, typ in _RESULT_FIELDS:
                value = payload["result"][name]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(f"bad field {name!r}")
                fields[name] = typ(value)
        except (ValueError, KeyError, TypeError):
            # Corrupted or stale-schema entry: drop it and miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return WorkloadResult(workload=workload, **fields)

    # ------------------------------------------------------------------
    def put(
        self, result: WorkloadResult, max_cycles: int
    ) -> Optional[Path]:
        """Persist a result; returns the entry path.

        Best-effort: an unwritable cache directory returns ``None``
        instead of failing the run the cache was meant to speed up.
        """
        path = self._path(result.workload, max_cycles)
        payload = {
            "schema": "repro-iss-result/1",
            "iss_version": self.version,
            "workload": result.workload.name,
            "max_cycles": max_cycles,
            "result": {
                name: getattr(result, name) for name, _ in _RESULT_FIELDS
            },
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(payload, indent=2, sort_keys=True),
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            return None
        return path

    # ------------------------------------------------------------------
    def invalidate(self, workload: Workload, max_cycles: int) -> bool:
        """Drop one entry; ``True`` if it existed."""
        try:
            self._path(workload, max_cycles).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry under the root; returns the count removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def run_workload_cached(
    workload: Workload,
    max_cycles: int = 500_000_000,
    cache: Optional[ResultCache] = None,
) -> Tuple[WorkloadResult, bool]:
    """Run a workload through the cache.

    Returns ``(result, was_hit)``.  On a miss the workload executes on
    the ISS and the outcome is persisted before returning.
    """
    if cache is None:
        cache = ResultCache()
    cached = cache.get(workload, max_cycles)
    if cached is not None:
        return cached, True
    result = run_workload(workload, max_cycles=max_cycles)
    cache.put(result, max_cycles)
    return result, False
