"""Storage-node retention and refresh-interval analysis (Sec. III-A).

Retention time is how long a written '1' stays above the read-sensing
threshold.  It is limited by the hold-state leakage of the write
transistor — ultra-low for IGZO (>1000 s, matching ref [23]) and
junction-floor-limited for Si (~1 ms), which is what forces the all-Si
macro to burn refresh energy.

Two estimators are provided: a closed-form C*dV/I estimate and a
SPICE-backed transient decay simulation; the test suite checks they
agree.
"""

from __future__ import annotations

from typing import Optional

from repro.edram.bitcell import BitcellDesign
from repro.errors import AnalysisError
from repro.spice import Capacitor, Circuit, Dc, FetElement, VoltageSource, transient

#: A '1' must stay above this fraction of VDD to be sensed reliably.
DEFAULT_SENSE_FRACTION = 0.7

#: Refresh interval = retention / margin (margin covers cell variation).
DEFAULT_REFRESH_MARGIN = 2.0


def retention_time_s(
    cell: BitcellDesign,
    sense_fraction: float = DEFAULT_SENSE_FRACTION,
) -> float:
    """Closed-form retention estimate: t = C_SN * dV_allowed / I_leak.

    Uses the hold-state leakage at the *average* of the initial and
    minimum-sensable storage voltages, a good approximation because the
    leakage floor is nearly bias-independent over that range.
    """
    if not (0.0 < sense_fraction < 1.0):
        raise AnalysisError(
            f"sense fraction must be in (0, 1), got {sense_fraction}"
        )
    v_full = cell.vdd_v
    v_min = sense_fraction * v_full
    dv = v_full - v_min
    v_mid = (v_full + v_min) / 2.0
    leak = cell.hold_leakage_a(stored_v=v_mid)
    if leak <= 0:
        return float("inf")
    return cell.storage_node_cap_f() * dv / leak


def simulate_retention_decay(
    cell: BitcellDesign,
    t_stop: float,
    n_steps: int = 200,
):
    """Transient decay of a stored '1' through the hold-state leakage.

    Returns the SN waveform.  WWL is at its (negative) hold level, WBL is
    grounded, and the SN starts at VDD.  The explicit storage capacitance is modeled with
    the full :meth:`storage_node_cap_f` so the closed form and the
    simulation are comparable.
    """
    circuit = Circuit(f"{cell.name}_retention")
    circuit.add(VoltageSource("vwwl", "wwl", "0", Dc(cell.v_wwl_hold_v)))
    circuit.add(VoltageSource("vwbl", "wbl", "0", Dc(0.0)))
    circuit.add(
        FetElement(
            "wt",
            cell.make_write_fet(),
            "wbl",
            "wwl",
            "sn",
            include_gate_caps=False,
        )
    )
    circuit.add(Capacitor("csn", "sn", "0", cell.storage_node_cap_f()))
    result = transient(
        circuit,
        t_stop=t_stop,
        dt=t_stop / n_steps,
        initial_conditions={"sn": cell.vdd_v},
        use_dc_start=False,
        # The default gmin (1e-12 S) would swamp the sub-femtoamp hold
        # leakage this simulation is measuring.
        gmin=0.0,
    )
    return result.voltage("sn")


def refresh_interval_s(
    cell: BitcellDesign,
    margin: float = DEFAULT_REFRESH_MARGIN,
    sense_fraction: float = DEFAULT_SENSE_FRACTION,
) -> Optional[float]:
    """Refresh interval, or None when no refresh is needed.

    A cell that retains data for longer than a day effectively never
    needs refresh within the paper's 2-hour daily usage window.
    """
    if margin < 1.0:
        raise AnalysisError(f"refresh margin must be >= 1, got {margin}")
    retention = retention_time_s(cell, sense_fraction)
    if retention > 86_400.0:
        return None
    return retention / margin
