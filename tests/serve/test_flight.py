"""Tail-sampled flight recorder: retention policy and dump determinism."""

import json

import pytest

from repro.serve.flight import DUMP_SCHEMA, FlightRecorder


def record_n(recorder, n, status=200, latency_s=0.01, start_ts=1000.0):
    for i in range(n):
        recorder.record(
            request_id=f"{i:08x}",
            method="POST",
            target="/v1/tcdp",
            status=status,
            latency_s=latency_s,
            ts=start_ts + i,
        )


class TestRetention:
    def test_recent_ring_keeps_only_the_last_capacity(self):
        recorder = FlightRecorder(capacity=4, slowest_k=2)
        record_n(recorder, 10)
        dump = recorder.dump()
        assert dump["recorded"] == 10
        assert [r["request_id"] for r in dump["recent"]] == [
            "00000006",
            "00000007",
            "00000008",
            "00000009",
        ]

    def test_errors_survive_a_burst_of_successes(self):
        recorder = FlightRecorder(capacity=4, slowest_k=2)
        recorder.record("dead", "POST", "/v1/tcdp", 500, 0.01, ts=1.0)
        record_n(recorder, 100)  # enough to flush the recent ring 25x
        dump = recorder.dump()
        assert all(r["request_id"] != "dead" for r in dump["recent"])
        assert [r["request_id"] for r in dump["errors"]] == ["dead"]
        assert dump["errors_total"] == 1

    def test_slowest_survive_fast_traffic(self):
        recorder = FlightRecorder(capacity=4, slowest_k=2)
        recorder.record("slow-1", "POST", "/x", 200, 2.0, ts=1.0)
        recorder.record("slow-2", "POST", "/x", 200, 1.0, ts=2.0)
        record_n(recorder, 50, latency_s=0.001)
        slowest = recorder.dump()["slowest"]
        assert [r["request_id"] for r in slowest] == ["slow-1", "slow-2"]

    def test_slowest_is_displaced_by_a_slower_request(self):
        recorder = FlightRecorder(capacity=8, slowest_k=2)
        recorder.record("a", "POST", "/x", 200, 0.010, ts=1.0)
        recorder.record("b", "POST", "/x", 200, 0.020, ts=2.0)
        recorder.record("c", "POST", "/x", 200, 0.030, ts=3.0)
        slowest = recorder.dump()["slowest"]
        assert [r["request_id"] for r in slowest] == ["c", "b"]

    def test_faster_request_never_displaces(self):
        recorder = FlightRecorder(capacity=8, slowest_k=1)
        recorder.record("slow", "POST", "/x", 200, 1.0, ts=1.0)
        recorder.record("fast", "POST", "/x", 200, 0.001, ts=2.0)
        slowest = recorder.dump()["slowest"]
        assert [r["request_id"] for r in slowest] == ["slow"]

    def test_status_400_counts_as_error(self):
        recorder = FlightRecorder()
        recorder.record("bad", "POST", "/x", 400, 0.01, ts=1.0)
        recorder.record("ok", "POST", "/x", 200, 0.01, ts=2.0)
        dump = recorder.dump()
        assert dump["errors_total"] == 1
        assert dump["errors"][0]["request_id"] == "bad"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match=">= 1"):
            FlightRecorder(slowest_k=0)

    def test_reset_forgets_everything(self):
        recorder = FlightRecorder()
        record_n(recorder, 5, status=500)
        recorder.reset()
        dump = recorder.dump()
        assert dump["recorded"] == 0
        assert dump["errors_total"] == 0
        assert dump["recent"] == dump["errors"] == dump["slowest"] == []


class TestDumpDeterminism:
    def build(self):
        recorder = FlightRecorder(capacity=8, slowest_k=3)
        recorder.record(
            "aa", "POST", "/v1/tcdp", 200, 0.0123456, ts=10.0,
            queue_depth=3, bytes_in=42,
            trace=[{"phase": "batch", "ms": 1.2}],
        )
        recorder.record("bb", "GET", "/healthz", 200, 0.001, ts=11.0)
        recorder.record("cc", "POST", "/v1/tcdp", 500, 0.5, ts=12.0)
        # Two requests with identical latency: seq breaks the tie.
        recorder.record("dd", "POST", "/v1/tcdp", 200, 0.25, ts=13.0)
        recorder.record("ee", "POST", "/v1/tcdp", 200, 0.25, ts=14.0)
        return recorder

    def test_equal_inputs_dump_byte_identically(self):
        first = json.dumps(self.build().dump(), sort_keys=False)
        second = json.dumps(self.build().dump(), sort_keys=False)
        assert first == second

    def test_record_key_order_is_fixed(self):
        dump = self.build().dump()
        expected = [
            "request_id",
            "ts",
            "method",
            "target",
            "status",
            "latency_ms",
            "queue_depth",
            "bytes_in",
            "trace",
        ]
        for section in ("recent", "errors", "slowest"):
            for record in dump[section]:
                assert list(record) == expected

    def test_json_roundtrip_preserves_everything(self):
        dump = self.build().dump()
        decoded = json.loads(json.dumps(dump))
        assert decoded == dump
        assert decoded["schema"] == DUMP_SCHEMA
        assert decoded["capacity"] == 8
        assert decoded["slowest_k"] == 3

    def test_slowest_ordering_highest_first_seq_breaks_ties(self):
        slowest = self.build().dump()["slowest"]
        assert [r["request_id"] for r in slowest] == ["cc", "ee", "dd"]

    def test_latency_rounded_to_4dp_milliseconds(self):
        dump = self.build().dump()
        aa = next(r for r in dump["recent"] if r["request_id"] == "aa")
        assert aa["latency_ms"] == 12.3456
        assert aa["queue_depth"] == 3
        assert aa["bytes_in"] == 42
        assert aa["trace"] == [{"phase": "batch", "ms": 1.2}]

    def test_trace_defaults_to_empty_list(self):
        dump = self.build().dump()
        bb = next(r for r in dump["recent"] if r["request_id"] == "bb")
        assert bb["trace"] == []
