"""Process-flow container and Equation 4 step accounting.

A :class:`ProcessFlow` is an ordered list of :class:`FlowSegment` objects
(FEOL, individual metal/via pairs, device tiers).  Each segment is itself a
list of :class:`~repro.fab.steps.ProcessStep`.  The flow exposes:

- ``total_energy_kwh()`` — EPA per wafer, the left-hand side of Eq. 4;
- ``step_count_matrix()`` — the N_step counts per process area (the first
  matrix in Eq. 4);
- ``segment_energies()`` — per-segment breakdown for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ProcessFlowError
from repro.fab.steps import ProcessArea, ProcessStep, StepCount


@dataclass
class FlowSegment:
    """A named, contiguous portion of a process flow.

    Examples: ``"FEOL+MOL"``, ``"M1/V0 pair (36 nm, EUV)"``,
    ``"CNFET tier 1"``.
    """

    name: str
    steps: List[ProcessStep] = field(default_factory=list)
    #: Lump-sum energy for segments modeled at coarser granularity than
    #: individual steps (the FEOL is the paper's example: a single
    #: 436 kWh/wafer figure, not a step list).
    lumped_energy_kwh: float = 0.0

    @property
    def energy_kwh(self) -> float:
        return self.lumped_energy_kwh + sum(s.energy_kwh for s in self.steps)

    def step_counts(self) -> StepCount:
        counts = StepCount()
        for step in self.steps:
            counts.add(step)
        return counts


class ProcessFlow:
    """An ordered fabrication flow for one wafer.

    Attributes:
        name: Flow identifier (``"all-Si 7nm"`` / ``"M3D IGZO/CNFET/Si 7nm"``).
        wafer_diameter_mm: Wafer diameter; 300 mm throughout the paper.
    """

    def __init__(self, name: str, wafer_diameter_mm: float = 300.0) -> None:
        if wafer_diameter_mm <= 0:
            raise ProcessFlowError(
                f"wafer diameter must be positive, got {wafer_diameter_mm}"
            )
        self.name = name
        self.wafer_diameter_mm = wafer_diameter_mm
        self._segments: List[FlowSegment] = []

    # -- construction -------------------------------------------------
    def add_segment(self, segment: FlowSegment) -> "ProcessFlow":
        """Append a segment; returns self for chaining."""
        if any(s.name == segment.name for s in self._segments):
            raise ProcessFlowError(
                f"duplicate segment name {segment.name!r} in flow {self.name!r}"
            )
        self._segments.append(segment)
        return self

    def extend(self, segments: Iterable[FlowSegment]) -> "ProcessFlow":
        for segment in segments:
            self.add_segment(segment)
        return self

    # -- accounting ---------------------------------------------------
    @property
    def segments(self) -> Sequence[FlowSegment]:
        return tuple(self._segments)

    def segment(self, name: str) -> FlowSegment:
        for seg in self._segments:
            if seg.name == name:
                return seg
        raise ProcessFlowError(f"no segment named {name!r} in flow {self.name!r}")

    def total_energy_kwh(self) -> float:
        """EPA per wafer (kWh / 300 mm wafer): Equation 4's output."""
        return sum(seg.energy_kwh for seg in self._segments)

    def segment_energies(self) -> Dict[str, float]:
        """Per-segment energy in kWh/wafer, insertion-ordered."""
        return {seg.name: seg.energy_kwh for seg in self._segments}

    def step_counts(self) -> StepCount:
        """Aggregate per-process-area step counts across all segments."""
        counts = StepCount()
        for seg in self._segments:
            for step in seg.steps:
                counts.add(step)
        return counts

    def step_count_matrix(self) -> np.ndarray:
        """Column vector of step counts in canonical process-area order.

        This is one column of the first matrix in Equation 4; stacking the
        columns of several flows (e.g. all-Si and M3D) reconstructs the
        full matrix.
        """
        counts = self.step_counts()
        return np.array(
            [counts.count(area) for area in ProcessArea.ordered()], dtype=float
        ).reshape(-1, 1)

    def n_steps(self) -> int:
        """Total number of explicitly modeled steps (excludes lumped FEOL)."""
        return sum(len(seg.steps) for seg in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessFlow({self.name!r}, segments={len(self._segments)}, "
            f"EPA={self.total_energy_kwh():.2f} kWh/wafer)"
        )


def epa_matrix(flows: Sequence[ProcessFlow]) -> np.ndarray:
    """Step-count matrix for several flows (the full Eq. 4 matrix).

    Rows follow :meth:`ProcessArea.ordered`, columns follow ``flows``.
    """
    if not flows:
        raise ProcessFlowError("need at least one flow")
    return np.hstack([flow.step_count_matrix() for flow in flows])


def epa_from_matrices(
    step_counts: np.ndarray, step_energies: np.ndarray
) -> np.ndarray:
    """Equation 4: EPA per flow = step-energy row vector @ count matrix.

    Args:
        step_counts: (n_areas, n_flows) matrix of per-area step counts.
        step_energies: (n_areas,) vector of kWh per step per area.

    Returns:
        (n_flows,) vector of EPA (kWh/wafer) attributable to the counted
        steps.  Lumped segments (FEOL) must be added separately.
    """
    counts = np.asarray(step_counts, dtype=float)
    energies = np.asarray(step_energies, dtype=float).reshape(-1)
    if counts.shape[0] != energies.shape[0]:
        raise ProcessFlowError(
            f"shape mismatch: counts has {counts.shape[0]} areas, "
            f"energies has {energies.shape[0]}"
        )
    return energies @ counts
