"""Perf-counter math and rendering."""

import pytest

from repro.cpu.simulator import ExecutionStats
from repro.runtime.perfcounters import RunPerf, render_perf_table, stopwatch


class TestRunPerf:
    def test_rates(self):
        perf = RunPerf(
            name="matmul-int",
            wall_seconds=2.0,
            cycles=20_000_000,
            instructions=14_000_000,
        )
        assert perf.ips == pytest.approx(7_000_000.0)
        assert perf.mips == pytest.approx(7.0)
        assert perf.sim_cycles_per_second == pytest.approx(10_000_000.0)

    def test_zero_wall_is_zero_rate(self):
        perf = RunPerf(name="x", wall_seconds=0.0, cycles=10, instructions=10)
        assert perf.ips == 0.0
        assert perf.mips == 0.0
        assert perf.sim_cycles_per_second == 0.0


class TestExecutionStatsRates:
    """The satellite: ExecutionStats grew ips/mips conveniences."""

    def test_ips_mips(self):
        stats = ExecutionStats(cycles=100, instructions=3_000_000)
        assert stats.ips(2.0) == pytest.approx(1_500_000.0)
        assert stats.mips(2.0) == pytest.approx(1.5)
        assert stats.ips(0.0) == 0.0

    def test_ipc(self):
        stats = ExecutionStats(cycles=200, instructions=100)
        assert stats.ipc == pytest.approx(0.5)
        assert ExecutionStats().ipc == 0.0

    def test_per_mnemonic_is_counter(self):
        stats = ExecutionStats()
        stats.count("adds")
        stats.count("adds")
        stats.count("bl")
        assert stats.per_mnemonic["adds"] == 2
        assert stats.per_mnemonic["bl"] == 1
        assert stats.per_mnemonic["never"] == 0  # Counter semantics


class TestRendering:
    def test_table_contains_rows_and_total(self):
        perfs = [
            RunPerf("matmul-int", 0.5, 1_000_000, 700_000, cached=False),
            RunPerf("crc32", 0.001, 500_000, 400_000, cached=True),
        ]
        text = render_perf_table(perfs)
        assert "matmul-int" in text
        assert "crc32" in text
        assert "cache" in text
        assert "iss" in text
        assert "TOTAL" in text

    def test_stopwatch_advances(self):
        with stopwatch() as timer:
            _ = sum(range(1000))
        assert timer.elapsed >= 0.0


class TestDeprecationShim:
    def test_import_emits_deprecation_warning(self):
        import importlib

        import repro.runtime.perfcounters as shim

        with pytest.warns(DeprecationWarning, match="repro.obs"):
            importlib.reload(shim)

    def test_reexports_are_the_obs_objects(self):
        from repro.obs import perf
        from repro.runtime import perfcounters

        assert perfcounters.RunPerf is perf.RunPerf
        assert perfcounters.Stopwatch is perf.Stopwatch
