"""Tests for the uncertainty analysis (Fig. 6b)."""

import numpy as np
import pytest

from repro.core.uncertainty import (
    IsolineUncertaintyAnalysis,
    MonteCarloSamples,
    ScenarioParameters,
    draw_monte_carlo_samples,
    monte_carlo_win_probability,
    monte_carlo_win_probability_legacy,
    paper_perturbations,
)
from repro.errors import CarbonModelError


@pytest.fixture
def nominal():
    """Paper case-study parameters at 24 months, US grid."""
    return ScenarioParameters(
        candidate_wafer_g=1100300.0,
        candidate_dies_per_wafer=606238.0,
        candidate_yield=0.50,
        candidate_op_per_month_g=0.1957,
        baseline_wafer_g=837060.0,
        baseline_dies_per_wafer=299127.0,
        baseline_yield=0.90,
        baseline_op_per_month_g=0.2246,
        lifetime_months=24.0,
    )


class TestScenarioParameters:
    def test_points_reproduce_paper(self, nominal):
        c = nominal.candidate_point()
        b = nominal.baseline_point()
        assert c.embodied_g == pytest.approx(3.63, abs=0.01)
        assert b.embodied_g == pytest.approx(3.11, abs=0.01)
        assert c.operational_g == pytest.approx(4.70, abs=0.01)
        assert b.operational_g == pytest.approx(5.39, abs=0.01)

    def test_nominal_map_favors_candidate(self, nominal):
        assert nominal.tradeoff_map().ratio(1.0, 1.0) < 1.0

    def test_validation(self, nominal):
        from dataclasses import replace

        with pytest.raises(CarbonModelError):
            replace(nominal, candidate_yield=0.0)
        with pytest.raises(CarbonModelError):
            replace(nominal, lifetime_months=-1.0)
        with pytest.raises(CarbonModelError):
            replace(nominal, ci_use_scale=-0.5)


class TestPaperPerturbations:
    def test_six_perturbations(self):
        perts = paper_perturbations()
        assert len(perts) == 6
        names = [p.name for p in perts]
        assert any("lifetime +6" in n for n in names)
        assert any("CI_use x3" in n for n in names)
        assert any("10%" in n for n in names)

    def test_perturbations_change_parameters(self, nominal):
        for pert in paper_perturbations():
            changed = pert.apply(nominal)
            assert changed != nominal

    def test_lifetime_never_negative(self, nominal):
        from dataclasses import replace

        short = replace(nominal, lifetime_months=2.0)
        minus = [
            p for p in paper_perturbations() if p.name.startswith("lifetime -")
        ][0]
        assert minus.apply(short).lifetime_months == 0.0


class TestIsolineFamilies:
    def test_isolines_for_all_perturbations(self, nominal):
        analysis = IsolineUncertaintyAnalysis(nominal)
        ys = np.linspace(0.1, 1.2, 5)
        isolines = analysis.isolines(ys)
        assert set(isolines) == {
            "nominal",
            "lifetime +6 mo",
            "lifetime -6 mo",
            "CI_use x3",
            "CI_use /3",
            "M3D yield 10%",
            "M3D yield 90%",
        }
        for arr in isolines.values():
            assert arr.shape == ys.shape

    def test_longer_lifetime_moves_isoline_right(self, nominal):
        """More use time -> more embodied budget for the efficient design."""
        analysis = IsolineUncertaintyAnalysis(nominal)
        iso = analysis.isolines(np.array([0.5]))
        assert iso["lifetime +6 mo"][0] > iso["nominal"][0]
        assert iso["lifetime -6 mo"][0] < iso["nominal"][0]

    def test_higher_yield_moves_isoline_right(self, nominal):
        """Better M3D yield shrinks its per-good-die embodied carbon,
        letting it tolerate a larger embodied scale."""
        analysis = IsolineUncertaintyAnalysis(nominal)
        iso = analysis.isolines(np.array([0.5]))
        assert iso["M3D yield 90%"][0] > iso["nominal"][0]
        assert iso["M3D yield 10%"][0] < iso["nominal"][0]

    def test_robust_regions_partition_grid(self, nominal):
        analysis = IsolineUncertaintyAnalysis(nominal)
        xs = np.linspace(0.1, 3.0, 12)
        ys = np.linspace(0.1, 3.0, 10)
        regions = analysis.robust_regions(xs, ys)
        total = (
            regions["candidate_always"].astype(int)
            + regions["baseline_always"].astype(int)
            + regions["uncertain"].astype(int)
        )
        assert np.all(total == 1)

    def test_extreme_corners_are_robust(self, nominal):
        """Tiny embodied+operational: candidate always wins; huge: never."""
        analysis = IsolineUncertaintyAnalysis(nominal)
        regions = analysis.robust_regions(
            np.array([0.01, 10.0]), np.array([0.01, 10.0])
        )
        assert regions["candidate_always"][0, 0]
        assert regions["baseline_always"][1, 1]

    def test_uncertain_band_exists(self, nominal):
        analysis = IsolineUncertaintyAnalysis(nominal)
        xs = np.linspace(0.1, 3.0, 40)
        ys = np.linspace(0.1, 3.0, 40)
        regions = analysis.robust_regions(xs, ys)
        assert regions["uncertain"].any()


class TestMonteCarlo:
    def test_probabilities_in_unit_interval(self, nominal):
        xs = np.linspace(0.5, 2.0, 4)
        ys = np.linspace(0.5, 2.0, 4)
        p = monte_carlo_win_probability(nominal, xs, ys, n_samples=50)
        assert p.shape == (4, 4)
        assert np.all((0.0 <= p) & (p <= 1.0))

    def test_deterministic_with_seed(self, nominal):
        xs = np.array([1.0])
        ys = np.array([1.0])
        rng1 = np.random.default_rng(42)
        rng2 = np.random.default_rng(42)
        p1 = monte_carlo_win_probability(nominal, xs, ys, 30, rng=rng1)
        p2 = monte_carlo_win_probability(nominal, xs, ys, 30, rng=rng2)
        assert p1 == pytest.approx(p2)

    def test_extremes_are_certain(self, nominal):
        p = monte_carlo_win_probability(
            nominal, np.array([0.001, 50.0]), np.array([0.001, 50.0]), 100
        )
        assert p[0, 0] == pytest.approx(1.0)
        assert p[1, 1] == pytest.approx(0.0)

    def test_probability_decreases_with_embodied_scale(self, nominal):
        xs = np.array([0.5, 1.0, 2.0, 4.0])
        p = monte_carlo_win_probability(nominal, xs, np.array([1.0]), 200)
        row = p[0]
        assert all(row[i] >= row[i + 1] for i in range(len(row) - 1))

    def test_bad_sample_count(self, nominal):
        with pytest.raises(CarbonModelError):
            monte_carlo_win_probability(
                nominal, np.array([1.0]), np.array([1.0]), 0
            )


@pytest.mark.smoke
class TestBatchedEngineEquivalence:
    """The batched Monte Carlo engine vs the legacy per-sample loop."""

    XS = np.linspace(0.05, 2.0, 9)
    YS = np.linspace(0.05, 2.0, 7)

    def test_batched_bit_identical_to_legacy(self, nominal):
        """Seeded-RNG equivalence: not approx — bit-for-bit equal."""
        fast = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 200, rng=np.random.default_rng(7)
        )
        slow = monte_carlo_win_probability_legacy(
            nominal, self.XS, self.YS, 200, rng=np.random.default_rng(7)
        )
        assert np.array_equal(fast, slow)

    def test_chunking_does_not_change_results(self, nominal):
        rng = lambda: np.random.default_rng(11)  # noqa: E731
        whole = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 100, rng=rng()
        )
        chunked = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 100, rng=rng(), chunk_size=7
        )
        assert np.array_equal(whole, chunked)

    def test_parallel_bit_identical_to_serial(self, nominal):
        serial = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 100, rng=np.random.default_rng(3),
            jobs=1,
        )
        fanned = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 100, rng=np.random.default_rng(3),
            jobs=2, chunk_size=25,
        )
        assert np.array_equal(serial, fanned)

    def test_sweep_cache_hit_returns_identical_grid(self, nominal, tmp_path):
        from repro.runtime.cache import SweepCache

        cache = SweepCache(root=tmp_path)
        first = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 60, rng=np.random.default_rng(5),
            cache=cache,
        )
        assert (cache.hits, cache.misses) == (0, 1)
        second = monte_carlo_win_probability(
            nominal, self.XS, self.YS, 60, rng=np.random.default_rng(5),
            cache=cache,
        )
        assert (cache.hits, cache.misses) == (1, 1)
        assert np.array_equal(first, second)

    def test_sweep_cache_distinguishes_parameters(self, nominal, tmp_path):
        from dataclasses import replace

        from repro.runtime.cache import SweepCache

        cache = SweepCache(root=tmp_path)
        monte_carlo_win_probability(
            nominal, self.XS, self.YS, 40, rng=np.random.default_rng(5),
            cache=cache,
        )
        other = replace(nominal, lifetime_months=36.0)
        monte_carlo_win_probability(
            other, self.XS, self.YS, 40, rng=np.random.default_rng(5),
            cache=cache,
        )
        assert cache.misses == 2


class TestSampleDraws:
    def test_draw_shapes_and_bounds(self, nominal):
        samples = draw_monte_carlo_samples(
            nominal, 500, rng=np.random.default_rng(0)
        )
        assert samples.n == 500
        for arr in (
            samples.lifetime_months, samples.ci_scales, samples.yields
        ):
            assert arr.shape == (500,)
        assert np.all(samples.lifetime_months >= 0.0)
        assert np.all(samples.ci_scales > 0.0)
        assert np.all((0.10 <= samples.yields) & (samples.yields <= 0.90))

    def test_draws_deterministic_under_seed(self, nominal):
        a = draw_monte_carlo_samples(
            nominal, 64, rng=np.random.default_rng(9)
        )
        b = draw_monte_carlo_samples(
            nominal, 64, rng=np.random.default_rng(9)
        )
        assert np.array_equal(a.lifetime_months, b.lifetime_months)
        assert np.array_equal(a.ci_scales, b.ci_scales)
        assert np.array_equal(a.yields, b.yields)

    def test_chunk_slices_all_arrays(self, nominal):
        samples = draw_monte_carlo_samples(
            nominal, 10, rng=np.random.default_rng(0)
        )
        part = samples.chunk(2, 7)
        assert part.n == 5
        assert np.array_equal(part.yields, samples.yields[2:7])

    def test_validation(self, nominal):
        with pytest.raises(CarbonModelError):
            draw_monte_carlo_samples(nominal, 0)
        with pytest.raises(CarbonModelError):
            MonteCarloSamples(
                np.zeros(3), np.ones(2), np.full(3, 0.5)
            )


@pytest.mark.smoke
class TestNominalMapReuse:
    """The nominal trade-off map is built once and shared (bugfix)."""

    def test_tradeoff_map_is_memoized(self, nominal):
        assert nominal.tradeoff_map() is nominal.tradeoff_map()

    def test_analysis_reuses_nominal_map(self, nominal):
        analysis = IsolineUncertaintyAnalysis(nominal)
        assert analysis._nominal_map is nominal.tradeoff_map()

    def test_robust_regions_identical_to_fresh_reference(self, nominal):
        """Reusing the cached nominal map changes nothing in the output."""
        xs = np.linspace(0.1, 3.0, 12)
        ys = np.linspace(0.1, 3.0, 10)
        regions = IsolineUncertaintyAnalysis(nominal).robust_regions(xs, ys)

        # Reference: rebuild every map from scratch, bypassing the cache.
        from repro.core.uncertainty import _build_tradeoff_map

        grids = [_build_tradeoff_map.__wrapped__(nominal).ratio_grid(xs, ys)]
        for pert in paper_perturbations():
            changed = pert.apply(nominal)
            grids.append(
                _build_tradeoff_map.__wrapped__(changed).ratio_grid(xs, ys)
            )
        wins = np.stack([g < 1.0 for g in grids])
        assert np.array_equal(regions["candidate_always"], wins.all(axis=0))
        assert np.array_equal(regions["baseline_always"], ~wins.any(axis=0))

    def test_robust_regions_parallel_matches_serial(self, nominal):
        xs = np.linspace(0.1, 3.0, 8)
        ys = np.linspace(0.1, 3.0, 6)
        analysis = IsolineUncertaintyAnalysis(nominal)
        serial = analysis.robust_regions(xs, ys, jobs=1)
        fanned = analysis.robust_regions(xs, ys, jobs=2)
        for key in serial:
            assert np.array_equal(serial[key], fanned[key])
