"""eDRAM design: 3T bit cells, sub-arrays, periphery, timing and energy.

Implements the memory of the case study (Sec. III-A): a 64 kB eDRAM macro
built from 2 kB sub-arrays (512 x 32-bit words each), in two technologies:

- **M3D**: 3T cell with one IGZO write transistor and two CNFET read
  transistors, fabricated in the BEOL directly above the Si periphery;
- **all-Si**: the same 3T topology in Si FETs, with the cell array beside
  its periphery (no stacking).

Cell-level electrical behaviour (write/read delay, retention, access
energy) comes from transient simulations on the :mod:`repro.spice`
simulator; macro-level area and energy roll up through
:mod:`repro.edram.array` and :mod:`repro.edram.energy`.
"""

from repro.edram.bitcell import (
    BitcellDesign,
    m3d_bitcell,
    si_bitcell,
)
from repro.edram.subarray import SubArrayDesign
from repro.edram.array import MemoryMacro
from repro.edram.retention import retention_time_s, refresh_interval_s
from repro.edram.timing import BitcellTiming, simulate_write, simulate_read
from repro.edram.energy import EdramEnergyModel, AccessProfile

__all__ = [
    "BitcellDesign",
    "m3d_bitcell",
    "si_bitcell",
    "SubArrayDesign",
    "MemoryMacro",
    "retention_time_s",
    "refresh_interval_s",
    "BitcellTiming",
    "simulate_write",
    "simulate_read",
    "EdramEnergyModel",
    "AccessProfile",
]
