"""Tests for the pragma hygiene audit (``repro lint --audit-pragmas``)."""

import subprocess
import sys
from pathlib import Path

from repro.quality.pragma_audit import (
    PragmaAuditEntry,
    audit_paths,
    audit_source,
    render_audit,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestAuditSource:
    def test_live_disable_is_not_flagged(self):
        # RPL002 genuinely fires on this line outside runtime/: the
        # pragma suppresses a real finding, so the audit stays quiet.
        source = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=RPL002\n"
        )
        assert audit_source(source, rel_path="core/x.py") == []

    def test_stale_disable_flagged(self):
        source = "x = 1  # repro-lint: disable=RPL002\n"
        (entry,) = audit_source(source, rel_path="core/x.py")
        assert entry.kind == "stale-disable"
        assert entry.line == 1
        assert "RPL002" in entry.detail

    def test_stale_disable_all_flagged(self):
        source = "x = 1  # repro-lint: disable=all\n"
        (entry,) = audit_source(source, rel_path="core/x.py")
        assert entry.kind == "stale-disable"
        assert "disable=all" in entry.detail

    def test_unknown_rule_flagged(self):
        source = "x = 1  # repro-lint: disable=RPL999\n"
        (entry,) = audit_source(source, rel_path="core/x.py")
        assert entry.kind == "unknown-rule"
        assert "RPL999" in entry.detail

    def test_live_rpl009_disable_is_not_flagged(self):
        source = (
            "import time\n"
            "\n"
            "async def handler():\n"
            "    time.sleep(0.1)  # repro-lint: disable=RPL009 - fixture\n"
        )
        assert audit_source(source, rel_path="serve/x.py") == []

    def test_live_rpl012_disable_is_not_flagged(self):
        source = (
            "def total(parts):\n"
            "    costs = {p.cost for p in parts}\n"
            "    total_j = sum(costs)  # repro-lint: disable=RPL012 - ok\n"
            "    return total_j\n"
        )
        assert audit_source(source, rel_path="core/x.py") == []

    def test_stale_concurrency_disables_flagged(self):
        for rule in ("RPL009", "RPL010", "RPL011", "RPL012"):
            source = f"x = 1  # repro-lint: disable={rule}\n"
            (entry,) = audit_source(source, rel_path="serve/x.py")
            assert entry.kind == "stale-disable"
            assert rule in entry.detail

    def test_serve_clock_pragma_shape_stays_live(self):
        # The serve layer's telemetry timestamps (flight recorder,
        # access log, uptime) read wall clocks under justified RPL002
        # pragmas; this fixture pins that shape as a live suppression.
        source = (
            "import time\n"
            "ts = time.time()  # repro-lint: disable=RPL002 - telemetry timestamp, not model output\n"
        )
        assert audit_source(source, rel_path="serve/server.py") == []

    def test_obs_clock_pragma_is_stale(self):
        # obs/ (the profiler's sampling clocks live here) is exempt
        # from RPL002 by directory, so a pragma there is dead weight
        # and the audit must flag it.
        source = (
            "import time\n"
            "ts = time.time()  # repro-lint: disable=RPL002\n"
        )
        (entry,) = audit_source(source, rel_path="obs/profiler.py")
        assert entry.kind == "stale-disable"
        assert "RPL002" in entry.detail

    def test_orphan_cache_pure_flagged(self):
        source = "x = 1  # repro-lint: cache-pure\n"
        (entry,) = audit_source(source, rel_path="core/x.py")
        assert entry.kind == "orphan-cache-pure"

    def test_cache_pure_on_def_is_fine(self):
        source = (
            "def f():  # repro-lint: cache-pure\n"
            "    return 1\n"
        )
        assert audit_source(source, rel_path="core/x.py") == []

    def test_docstring_examples_are_ignored(self):
        # A pragma *mentioned* in a docstring is documentation, not a
        # suppression; auditing it would flag every doc mention.
        source = (
            '"""Use ``# repro-lint: disable=RPL999`` inline.\n'
            "\n"
            "Or ``# repro-lint: cache-pure`` on a def line.\n"
            '"""\n'
            "x = 1\n"
        )
        assert audit_source(source, rel_path="core/x.py") == []

    def test_syntax_error_yields_nothing(self):
        source = "def broken(:  # repro-lint: disable=RPL002\n"
        assert audit_source(source, rel_path="core/x.py") == []

    def test_no_pragmas_short_circuits(self):
        assert audit_source("x = 1\n", rel_path="core/x.py") == []


class TestAuditPaths:
    def test_walks_and_relativizes(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "x = 1  # repro-lint: disable=RPL999\n"
        )
        entries, files = audit_paths([tmp_path], root=tmp_path)
        assert files == 2
        (entry,) = entries
        assert entry.path == "bad.py"
        assert entry.kind == "unknown-rule"

    def test_repo_tree_is_clean(self):
        """Every committed pragma suppresses something real."""
        entries, files = audit_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT
        )
        assert files > 50
        assert entries == [], render_audit(entries, files)


class TestRendering:
    def test_render_entry(self):
        entry = PragmaAuditEntry("a/b.py", 3, "stale-disable", "dead")
        assert entry.render() == "a/b.py:3: [stale-disable] dead"

    def test_render_audit_summary_line(self):
        text = render_audit([], 12)
        assert "0 problem(s) in 12 file(s)" in text


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )

    def test_audit_pragmas_clean_exit_zero(self):
        proc = self._run("lint", "--audit-pragmas")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 problem(s)" in proc.stdout

    def test_audit_pragmas_dirty_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1  # repro-lint: disable=RPL999\n")
        proc = self._run("lint", "--audit-pragmas", str(bad))
        assert proc.returncode == 1
        assert "unknown-rule" in proc.stdout
