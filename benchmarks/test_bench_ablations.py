"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the sensitivity studies its conclusion
invites: yield models, M3D tier count, fabrication grid, sub-array
organization, and the lifetime at which M3D breaks even.
"""

import pytest

from repro.analysis.case_study import build_case_study
from repro.core.embodied import EmbodiedCarbonModel
from repro.core.materials import MaterialsModel
from repro.fab import build_m3d_process
from repro.physical.yields import FixedYield, MurphyYield, PoissonYield


# ---------------------------------------------------------------------------
# Ablation 1: yield model choice
# ---------------------------------------------------------------------------
def yield_ablation():
    """Per-good-die embodied carbon under different yield models."""
    case = build_case_study()
    die_area_cm2 = case.m3d.floorplan.area_mm2 / 100.0
    models = {
        "fixed 50%": FixedYield(0.50),
        "poisson d0=0.1/cm2": PoissonYield(0.1),
        "poisson d0=1.0/cm2": PoissonYield(1.0),
        "murphy d0=1.0/cm2": MurphyYield(1.0),
    }
    out = {}
    for name, model in models.items():
        y = model.yield_fraction(die_area_cm2)
        out[name] = {
            "yield": y,
            "good_die_g": case.m3d.embodied.per_good_die_g(
                case.m3d.dies_per_wafer, y
            ),
        }
    return out


def test_bench_yield_models(benchmark, artifact_writer):
    data = benchmark(yield_ablation)
    lines = ["ABLATION - YIELD MODEL vs EMBODIED CARBON PER GOOD DIE", "-" * 60]
    for name, row in data.items():
        lines.append(
            f"{name:22s} yield={row['yield']:.4f}  "
            f"gCO2e/good-die={row['good_die_g']:.3f}"
        )
    artifact_writer("ablation_yield_models", "\n".join(lines))

    # Tiny dies: area-dependent models yield ~1 and beat the paper's
    # conservative fixed 50%.
    assert data["poisson d0=1.0/cm2"]["yield"] > 0.99
    assert (
        data["poisson d0=1.0/cm2"]["good_die_g"]
        < data["fixed 50%"]["good_die_g"]
    )
    # Murphy is always at least as optimistic as Poisson.
    assert (
        data["murphy d0=1.0/cm2"]["yield"]
        >= data["poisson d0=1.0/cm2"]["yield"]
    )


# ---------------------------------------------------------------------------
# Ablation 2: number of CNFET tiers
# ---------------------------------------------------------------------------
def tier_ablation():
    out = {}
    for tiers in range(4):
        flow = build_m3d_process(n_cnfet_tiers=tiers)
        model = EmbodiedCarbonModel(flow, materials=MaterialsModel.for_m3d())
        out[tiers] = model.evaluate("us").per_wafer_kg
    return out


def test_bench_tier_count(benchmark, artifact_writer):
    data = benchmark(tier_ablation)
    lines = ["ABLATION - CNFET TIER COUNT vs WAFER EMBODIED CARBON (US)", "-" * 60]
    for tiers, kg in data.items():
        lines.append(f"{tiers} CNFET tiers: {kg:8.1f} kgCO2e/wafer")
    artifact_writer("ablation_tier_count", "\n".join(lines))

    values = list(data.values())
    # Monotone and linear: each tier adds the same carbon.
    deltas = [b - a for a, b in zip(values, values[1:])]
    assert all(d > 0 for d in deltas)
    assert max(deltas) - min(deltas) < 1e-6
    # The paper's 2-tier flow is the 1100 kg point.
    assert data[2] == pytest.approx(1100.0, rel=0.005)


# ---------------------------------------------------------------------------
# Ablation 3: fabrication grid for the break-even lifetime
# ---------------------------------------------------------------------------
def grid_breakeven_ablation():
    out = {}
    for grid in ("solar", "us", "taiwan", "coal"):
        case = build_case_study(grid=grid)
        out[grid] = {
            "crossover_months": case.tc_crossover_months(),
            "advantage_24mo": case.carbon_efficiency_advantage(),
        }
    return out


def test_bench_grid_breakeven(benchmark, artifact_writer):
    data = benchmark(grid_breakeven_ablation)
    lines = [
        "ABLATION - GRID vs M3D BREAK-EVEN LIFETIME",
        "(same grid used for fab CI and use CI)",
        "-" * 60,
    ]
    for grid, row in data.items():
        cross = row["crossover_months"]
        cross_s = f"{cross:5.1f} mo" if cross else "  never"
        lines.append(
            f"{grid:8s} crossover {cross_s}   24-mo advantage "
            f"{row['advantage_24mo']:.4f}x"
        )
    artifact_writer("ablation_grid_breakeven", "\n".join(lines))

    # On every grid the M3D design eventually wins; the US-grid
    # crossover is the paper's ~18-month point.
    assert data["us"]["crossover_months"] == pytest.approx(18.0, abs=1.0)
    for row in data.values():
        assert row["crossover_months"] is not None


# ---------------------------------------------------------------------------
# Ablation 4: sub-array organization
# ---------------------------------------------------------------------------
def subarray_ablation():
    from repro.edram.bitcell import m3d_bitcell
    from repro.edram.subarray import SubArrayDesign
    from repro.edram.timing import characterize

    out = {}
    for rows in (64, 128, 256):
        design = SubArrayDesign(m3d_bitcell(), n_rows=rows, n_cols=128)
        timing = characterize(design)
        out[rows] = {
            "bytes": design.bytes,
            "read_ns": timing.read_delay_s * 1e9,
            "write_ns": timing.write_delay_s * 1e9,
            "bitline_cap_ff": design.bitline_parasitics().total_cap_f * 1e15,
        }
    return out


def test_bench_subarray_partitioning(benchmark, artifact_writer):
    data = benchmark.pedantic(subarray_ablation, rounds=1, iterations=1)
    lines = [
        "ABLATION - SUB-ARRAY ROWS vs ACCESS TIMING (M3D cell)",
        "(the paper partitions 64 kB into 2 kB = 128x128 sub-arrays)",
        "-" * 64,
    ]
    for rows, row in data.items():
        lines.append(
            f"{rows:4d} rows ({row['bytes']:5d} B): read "
            f"{row['read_ns']:.3f} ns, write {row['write_ns']:.3f} ns, "
            f"C_BL {row['bitline_cap_ff']:.1f} fF"
        )
    artifact_writer("ablation_subarray_partitioning", "\n".join(lines))

    # Larger sub-arrays -> more bitline capacitance -> slower reads:
    # the paper's rationale for 2 kB partitioning.
    assert data[64]["read_ns"] < data[128]["read_ns"] < data[256]["read_ns"]
    assert data[64]["bitline_cap_ff"] < data[256]["bitline_cap_ff"]


# ---------------------------------------------------------------------------
# Ablation 5: metallic-CNT removal efficiency -> M3D yield -> carbon
# ---------------------------------------------------------------------------
def cnt_removal_ablation():
    from repro.devices.cnfet import CnfetQuality
    from repro.devices.cnt_variation import CntVariationModel

    case = build_case_study()
    n_bits = 2 * 64 * 1024 * 8  # both macros' cells
    out = {}
    for efficiency in (0.9999, 0.999999, 0.99999999):
        model = CntVariationModel(quality=CnfetQuality(efficiency))
        array_yield = model.array_yield(
            n_bits, 0.1, spare_fraction=0.001
        )
        effective = max(array_yield, 1e-6)
        out[efficiency] = {
            "yield": array_yield,
            "good_die_g": case.m3d.embodied.per_good_die_g(
                case.m3d.dies_per_wafer, effective
            ),
        }
    return out


def test_bench_cnt_removal(benchmark, artifact_writer):
    data = benchmark(cnt_removal_ablation)
    lines = [
        "ABLATION - METALLIC-CNT REMOVAL vs M3D YIELD AND CARBON",
        "(two 64 kB macros, 0.1% spare columns, W = 0.1 um CNFETs)",
        "-" * 64,
    ]
    for efficiency, row in data.items():
        lines.append(
            f"removal {efficiency:.8f}: yield {row['yield']:.4f}  "
            f"gCO2e/good-die {row['good_die_g']:.3g}"
        )
    artifact_writer("ablation_cnt_removal", "\n".join(lines))

    # Yield (and hence per-good-die carbon) is exquisitely sensitive to
    # removal efficiency — Table I's metallic-CNT challenge, quantified.
    effs = sorted(data)
    yields = [data[e]["yield"] for e in effs]
    assert yields == sorted(yields)
    assert yields[0] < 0.01 and yields[-1] > 0.95
    assert data[effs[0]]["good_die_g"] > 100 * data[effs[-1]]["good_die_g"]
