"""Nestable-span tracer with Chrome-trace export.

A :class:`Tracer` records *spans* — named, timed regions of execution —
with monotonic ``time.perf_counter_ns`` clocks and thread/process-safe
identity (every span carries the recording ``pid`` and thread id, and
nesting depth is tracked per thread).  Spans are recorded on close, so
a parent span appears after its children in the raw record list; the
renderers re-derive the tree from timestamps and depths.

Two export formats:

- :meth:`Tracer.to_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto ``trace.json``): complete events
  (``"ph": "X"``) with microsecond timestamps, plus one counter event
  (``"ph": "C"``) per metric when a metrics snapshot is supplied;
- :meth:`Tracer.render_tree` — a human text tree, one line per span,
  indented by nesting depth and grouped by (pid, tid).

Disabled cost is the design constraint: :meth:`Tracer.span` returns a
single shared no-op context manager when tracing is off, so an
instrumented hot path pays one attribute read and one call per span
site and allocates nothing.

Cross-process spans: worker processes cannot append to the parent's
record list, so fan-out sites (see :func:`repro.runtime.parallel
.map_parallel`) measure start/duration worker-side and replay them into
the parent tracer via :meth:`Tracer.add_span`.  On Linux
``perf_counter_ns`` is the system-wide ``CLOCK_MONOTONIC``, so worker
timestamps land on the same axis as parent spans.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "Tracer",
    "NULL_SPAN",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named interval on the monotonic clock."""

    span_id: int
    name: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        """Accept and drop attributes (mirrors :meth:`_Span.set`)."""
        return self


#: Singleton no-op span: ``span()`` returns this when tracing is off.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span context manager; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args

    def set(self, **args: Any) -> "_Span":
        """Attach/override attributes mid-span; chainable."""
        self.args.update(args)
        return self

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._push()
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self._tracer
        tracer._pop()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        tracer._record(
            SpanRecord(
                span_id=next(tracer._ids),
                name=self.name,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Thread-safe span recorder with Chrome-trace and text-tree export.

    Spans may nest arbitrarily (per-thread depth tracking); records from
    worker processes are replayed in via :meth:`add_span`.  All public
    methods are safe to call from multiple threads.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args: Any):
        """A context manager timing one region; no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, args)

    def add_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        pid: Optional[int] = None,
        tid: int = 0,
        depth: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span measured elsewhere (e.g. in a worker process)."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                span_id=next(self._ids),
                name=name,
                start_ns=start_ns,
                duration_ns=duration_ns,
                pid=pid if pid is not None else os.getpid(),
                tid=tid,
                depth=depth,
                args=dict(args) if args else {},
            )
        )

    def _push(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _pop(self) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- inspection ----------------------------------------------------
    @property
    def spans(self) -> List[SpanRecord]:
        """A snapshot copy of every recorded span."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop all recorded spans (enabled state is unchanged)."""
        with self._lock:
            self._records.clear()

    # -- export --------------------------------------------------------
    def to_chrome_trace(
        self, metrics: Optional[object] = None
    ) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Timestamps are rebased to the earliest span so the trace starts
        near zero.  When ``metrics`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) is given, every
        counter and gauge is appended as a Chrome counter event
        (``"ph": "C"``) stamped at the end of the trace.
        """
        records = self.spans
        base_ns = min((r.start_ns for r in records), default=0)
        end_ns = max((r.end_ns for r in records), default=0)
        events: List[Dict[str, Any]] = []
        for r in records:
            events.append(
                {
                    "name": r.name,
                    "cat": r.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (r.start_ns - base_ns) / 1e3,
                    "dur": r.duration_ns / 1e3,
                    "pid": r.pid,
                    "tid": r.tid,
                    "args": r.args,
                }
            )
        if metrics is not None:
            snapshot = metrics.snapshot()
            ts = (end_ns - base_ns) / 1e3
            for kind in ("counters", "gauges"):
                for name, value in snapshot.get(kind, {}).items():
                    events.append(
                        {
                            "name": name,
                            "ph": "C",
                            "ts": ts,
                            "pid": os.getpid(),
                            "tid": 0,
                            "args": {"value": value},
                        }
                    )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(
        self, path, metrics: Optional[object] = None
    ) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        payload = self.to_chrome_trace(metrics=metrics)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True, default=str)
            fh.write("\n")
        return len([e for e in payload["traceEvents"] if e["ph"] == "X"])

    def render_tree(self, max_spans: int = 200) -> str:
        """A human text tree: spans indented by depth, per (pid, tid)."""
        records = self.spans
        if not records:
            return "(no spans recorded)"
        base_ns = min(r.start_ns for r in records)
        groups: Dict[Tuple[int, int], List[SpanRecord]] = {}
        for r in records:
            groups.setdefault((r.pid, r.tid), []).append(r)
        own_pid = os.getpid()
        lines: List[str] = []
        shown = 0
        for (pid, tid), group in sorted(groups.items()):
            tag = "main" if pid == own_pid else f"worker pid={pid}"
            lines.append(f"[{tag} tid={tid}]")
            for r in sorted(group, key=lambda r: (r.start_ns, -r.duration_ns)):
                if shown >= max_spans:
                    lines.append(
                        f"  ... {len(records) - shown} more span(s)"
                    )
                    return "\n".join(lines)
                shown += 1
                offset_ms = (r.start_ns - base_ns) / 1e6
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted(r.args.items())
                )
                lines.append(
                    f"  {'  ' * r.depth}{r.name:<32s} "
                    f"{r.duration_ns / 1e6:>10.3f} ms  "
                    f"@{offset_ms:>10.3f} ms"
                    + (f"  [{attrs}]" if attrs else "")
                )
        return "\n".join(lines)
