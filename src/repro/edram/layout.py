"""Physical layout of the M3D 3T bit cell, exportable as GDS.

The paper's repository ships a GDS layout of the M3D process with
instructions to render it in 3D (GDS3D).  This module generates the
equivalent artifact: the 3T cell drawn layer by layer — Si periphery
metal (M1-M4), CNFET tier 1/2 (active, gate, S/D), IGZO tier, and the
top metal levels — plus the layer map (z-height and thickness per GDS
layer) a 3D renderer needs, and an ASCII cross-section view in the style
of Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.edram.bitcell import BitcellDesign, m3d_bitcell
from repro.fab.gds import GdsLibrary, GdsRect


@dataclass(frozen=True)
class LayerInfo:
    """One GDS layer with its vertical placement (for 3D rendering)."""

    gds_layer: int
    name: str
    z_nm: float
    thickness_nm: float
    tier: str  # "si" | "cnfet1" | "cnfet2" | "igzo" | "top-metal"


#: The M3D stack's layer map (Fig. 2b ordering, heights cumulative).
M3D_LAYER_MAP: Tuple[LayerInfo, ...] = (
    LayerInfo(1, "si_active", 0.0, 50.0, "si"),
    LayerInfo(2, "si_gate", 50.0, 30.0, "si"),
    LayerInfo(10, "M1", 120.0, 36.0, "si"),
    LayerInfo(11, "M2", 192.0, 36.0, "si"),
    LayerInfo(12, "M3", 264.0, 36.0, "si"),
    LayerInfo(13, "M4", 336.0, 48.0, "si"),
    LayerInfo(20, "cnt1_active", 420.0, 2.0, "cnfet1"),
    LayerInfo(22, "cnt1_sd", 422.0, 40.0, "cnfet1"),
    LayerInfo(21, "cnt1_gate", 424.0, 30.0, "cnfet1"),
    LayerInfo(23, "M5", 500.0, 36.0, "cnfet1"),
    LayerInfo(24, "M6", 572.0, 36.0, "cnfet1"),
    LayerInfo(30, "cnt2_active", 650.0, 2.0, "cnfet2"),
    LayerInfo(32, "cnt2_sd", 652.0, 40.0, "cnfet2"),
    LayerInfo(31, "cnt2_gate", 654.0, 30.0, "cnfet2"),
    LayerInfo(33, "M7", 730.0, 36.0, "cnfet2"),
    LayerInfo(34, "M8", 802.0, 36.0, "cnfet2"),
    LayerInfo(40, "igzo_active", 880.0, 10.0, "igzo"),
    LayerInfo(42, "igzo_sd", 890.0, 40.0, "igzo"),
    LayerInfo(41, "igzo_gate", 892.0, 30.0, "igzo"),
    LayerInfo(43, "M9", 960.0, 36.0, "igzo"),
    LayerInfo(44, "M10", 1032.0, 36.0, "igzo"),
    LayerInfo(50, "M11", 1110.0, 48.0, "top-metal"),
    LayerInfo(51, "M12", 1206.0, 64.0, "top-metal"),
    LayerInfo(52, "M13", 1334.0, 64.0, "top-metal"),
    LayerInfo(53, "M14", 1462.0, 80.0, "top-metal"),
    LayerInfo(54, "M15", 1622.0, 80.0, "top-metal"),
)


def layer_by_name(name: str) -> LayerInfo:
    for info in M3D_LAYER_MAP:
        if info.name == name:
            return info
    raise KeyError(f"no layer named {name!r}")


def build_m3d_cell_layout(
    cell: "BitcellDesign | None" = None,
) -> GdsLibrary:
    """Draw one 3T M3D bit cell as a GDS library.

    The cell occupies cell_width x cell_height; devices are placed in
    their tiers: IGZO write FET on top, CNFET read stack in tier 1,
    wordlines horizontal, bitlines vertical (Fig. 3a topology).
    All coordinates in nanometers.
    """
    design = cell if cell is not None else m3d_bitcell()
    width_nm = int(design.cell_width_um * 1000)
    height_nm = int(design.cell_height_um * 1000)
    library = GdsLibrary("M3D_EDRAM")
    top = library.new_structure("bitcell_3t")

    def rect(layer_name: str, fx0, fy0, fx1, fy1):
        """Add a rectangle in fractional cell coordinates (0..1)."""
        info = layer_by_name(layer_name)
        top.add(
            GdsRect(
                info.gds_layer,
                int(round(fx0 * width_nm)),
                int(round(fy0 * height_nm)),
                int(round(fx1 * width_nm)),
                int(round(fy1 * height_nm)),
            )
        )

    # The stacked cell shares its footprint between tiers; fractions of
    # the ~307 x 155 nm cell keep every device at drawable size.
    # --- Vertical bitlines (M4 pitch metal): WBL left, RBL right.
    rect("M4", 0.02, 0.0, 0.14, 1.0)
    rect("M4", 0.86, 0.0, 0.98, 1.0)
    # --- Horizontal wordlines: WWL on M10 (IGZO tier), RWL on M6.
    rect("M10", 0.0, 0.78, 1.0, 0.95)
    rect("M6", 0.0, 0.05, 1.0, 0.22)

    # --- CNFET read stack (tier 1): two gates over a shared active strip.
    rect("cnt1_active", 0.18, 0.30, 0.82, 0.55)
    rect("cnt1_gate", 0.30, 0.26, 0.40, 0.60)   # RT gate (storage node)
    rect("cnt1_gate", 0.60, 0.26, 0.70, 0.60)   # RAT gate (RWL)
    # S/D contacts at the ends and the shared midpoint.
    rect("cnt1_sd", 0.18, 0.34, 0.26, 0.51)
    rect("cnt1_sd", 0.46, 0.34, 0.54, 0.51)
    rect("cnt1_sd", 0.74, 0.34, 0.82, 0.51)

    # --- IGZO write FET (top tier): gate fed by WWL, drain by WBL.
    rect("igzo_active", 0.14, 0.62, 0.62, 0.84)
    rect("igzo_gate", 0.32, 0.58, 0.46, 0.88)   # 44 nm gate length
    rect("igzo_sd", 0.14, 0.66, 0.26, 0.80)     # drain side (to WBL)
    rect("igzo_sd", 0.50, 0.66, 0.62, 0.80)     # source side (to SN)

    # --- Storage-node strap on M8 linking IGZO source to the RT gate.
    rect("M8", 0.30, 0.55, 0.40, 0.70)

    # --- Si periphery hint below (sense-amp/driver region on M1).
    rect("M1", 0.0, 0.0, 1.0, 0.04)
    return library


def cross_section_ascii(library: "GdsLibrary | None" = None) -> str:
    """Fig. 2b-style cross-section of the M3D stack.

    Lists every tier from the Si substrate up, with the layers drawn in
    the cell layout marked.
    """
    used_layers = set()
    if library is not None:
        for structure in library.structures.values():
            used_layers |= structure.layers()
    lines = ["M3D IGZO/CNFET/Si stack (cross-section, bottom to top)"]
    lines.append("=" * 62)
    tier_labels = {
        "si": "Si CMOS (FEOL + M1-M4)",
        "cnfet1": "CNFET tier 1 (+ M5, M6)",
        "cnfet2": "CNFET tier 2 (+ M7, M8)",
        "igzo": "IGZO tier (+ M9, M10)",
        "top-metal": "global metal (M11-M15)",
    }
    current_tier = None
    for info in M3D_LAYER_MAP:
        if info.tier != current_tier:
            current_tier = info.tier
            lines.append(f"--- {tier_labels[current_tier]} ---")
        marker = "*" if info.gds_layer in used_layers else " "
        lines.append(
            f" {marker} L{info.gds_layer:<3d} {info.name:12s} "
            f"z={info.z_nm:7.0f} nm  t={info.thickness_nm:5.0f} nm"
        )
    if library is not None:
        lines.append("(* = drawn in the exported bit-cell layout)")
    return "\n".join(lines)


def layer_map_table() -> List[Dict[str, object]]:
    """The layer map as row dicts (for GDS3D-style tech files)."""
    return [
        {
            "gds_layer": info.gds_layer,
            "name": info.name,
            "z_nm": info.z_nm,
            "thickness_nm": info.thickness_nm,
            "tier": info.tier,
        }
        for info in M3D_LAYER_MAP
    ]
