"""Circuit container: nodes, elements, and MNA bookkeeping."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NetlistError
from repro.spice.elements import Element

#: The ground node name; its voltage is fixed at zero and eliminated.
GROUND = "0"


class Circuit:
    """A flat netlist of elements over named nodes."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: List[Element] = []
        self._element_names: set = set()
        self._nodes: Dict[str, int] = {}

    # -- construction ----------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add an element; registers its nodes.  Returns the element."""
        if element.name in self._element_names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in {self.name!r}"
            )
        for node in element.nodes:
            self._register_node(node)
        self._element_names.add(element.name)
        self._elements.append(element)
        return element

    def _register_node(self, node: str) -> None:
        if not node:
            raise NetlistError("node name must be non-empty")
        if node == GROUND:
            return
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)

    # -- introspection -----------------------------------------------------
    @property
    def elements(self) -> "tuple[Element, ...]":
        return tuple(self._elements)

    @property
    def nodes(self) -> "tuple[str, ...]":
        """Non-ground nodes in registration order."""
        return tuple(self._nodes)

    def element(self, name: str) -> Element:
        for e in self._elements:
            if e.name == name:
                return e
        raise NetlistError(f"no element named {name!r}")

    def has_node(self, node: str) -> bool:
        return node == GROUND or node in self._nodes

    # -- MNA indexing -------------------------------------------------------
    def unknown_index(self) -> Dict[str, int]:
        """Node name -> unknown index; ground maps to -1."""
        index = {GROUND: -1}
        index.update(self._nodes)
        return index

    def n_unknowns(self) -> int:
        """Node voltages plus voltage-source branch currents."""
        return len(self._nodes) + self.n_branch_unknowns()

    def n_branch_unknowns(self) -> int:
        return sum(e.n_branches for e in self._elements)

    def branch_offsets(self) -> Dict[str, int]:
        """Element name -> first branch-unknown index (for those that
        carry branch currents)."""
        offsets: Dict[str, int] = {}
        next_offset = len(self._nodes)
        for e in self._elements:
            if e.n_branches:
                offsets[e.name] = next_offset
                next_offset += e.n_branches
        return offsets

    def validate(self) -> None:
        """Check the netlist is simulatable: non-empty and grounded."""
        if not self._elements:
            raise NetlistError(f"{self.name!r}: empty circuit")
        grounded = any(GROUND in e.nodes for e in self._elements)
        if not grounded:
            raise NetlistError(
                f"{self.name!r}: no element connects to ground ('0')"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}, nodes={len(self._nodes)}, "
            f"elements={len(self._elements)})"
        )
