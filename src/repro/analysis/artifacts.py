"""Deterministic paper-artifact pipeline with a content-addressed store.

``run_artifact_pipeline`` regenerates every table/figure data product of
the paper's evaluation — Table I/II, Fig. 2c/2d/4/5/6a/6b, the tornado
sensitivity, and the Monte Carlo win-probability map — as canonical JSON
under a run directory named by the hash of the generating parameters::

    <output_root>/<params_hash[:12]>/
        manifest.json
        artifacts/<name>.json

The manifest records, per artifact, the SHA-256 of its serialized bytes
and its wall time, plus the parameter hash, the ISS/sweep cache version
tags, and an aggregate ``content_hash`` over all artifact digests.  Two
runs with identical parameters produce byte-identical manifests modulo
the timing fields (``*_wall_seconds``, ``generated_unix``) — so artifact
regressions are a ``diff`` away, and CI can gate on them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.analysis.case_study import CaseStudy, build_case_study
from repro.core.operational import UsageScenario

#: Manifest fields (at any nesting depth) excluded from determinism
#: comparisons — everything else must be byte-identical across runs.
#: ``sweep_cache`` (per-artifact hit/miss deltas) and ``metrics`` (the
#: observability snapshot) describe *how* a run executed, not what it
#: produced, so they are excluded alongside the wall-clock stamps.
TIMING_FIELDS = (
    "wall_seconds",
    "total_wall_seconds",
    "generated_unix",
    "sweep_cache",
    "metrics",
)

MANIFEST_SCHEMA = "repro-artifacts/1"


@dataclass(frozen=True)
class PipelineConfig:
    """Everything that determines the artifact contents."""

    grid: str = "us"
    lifetime_months: float = 24.0
    clock_mhz: float = 500.0
    seed: int = 0
    mc_samples: int = 1000

    def params_hash(self) -> str:
        blob = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class PipelineContext:
    """Shared state handed to every artifact builder."""

    config: PipelineConfig
    case: CaseStudy
    jobs: Optional[int] = 1
    sweep_cache: "Union[object, None, bool]" = None


# ---------------------------------------------------------------------------
# Artifact builders
# ---------------------------------------------------------------------------
def _build_table1(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.table1_fet_figures()


def _build_table2(ctx: PipelineContext) -> object:
    from repro.analysis.ppatc import comparison_with_paper

    return comparison_with_paper(ctx.case)


def _build_fig2c(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig2c_embodied_per_wafer()


def _build_fig2d(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig2d_euv_metal_steps()


def _build_fig4_energy(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig4_energy_vs_clock()


def _build_fig4_critical_path(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig4_critical_path()


def _build_fig5(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    months = [
        float(m) for m in range(1, int(ctx.config.lifetime_months) + 1)
    ]
    return figures.fig5_tc_and_tcdp(ctx.case, months=months)


def _build_fig6a(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig6a_tradeoff_map(ctx.case, ctx.config.lifetime_months)


def _build_fig6b(ctx: PipelineContext) -> object:
    from repro.analysis import figures

    return figures.fig6b_isoline_uncertainty(
        ctx.case, ctx.config.lifetime_months
    )


def _build_tornado(ctx: PipelineContext) -> object:
    from repro.analysis.sensitivity import (
        case_study_parameters,
        tornado_analysis,
    )

    params = case_study_parameters(ctx.case, ctx.config.lifetime_months)
    entries = tornado_analysis(params)
    return [
        {
            "parameter": e.parameter,
            "ratio_low": e.ratio_low,
            "ratio_high": e.ratio_high,
            "ratio_nominal": e.ratio_nominal,
            "swing": e.swing,
            "flips_verdict": e.flips_verdict,
        }
        for e in entries
    ]


def _build_monte_carlo_map(ctx: PipelineContext) -> object:
    from repro.analysis.sensitivity import case_study_parameters
    from repro.core.uncertainty import monte_carlo_win_probability

    params = case_study_parameters(ctx.case, ctx.config.lifetime_months)
    xs = np.linspace(0.05, 2.0, 40)
    ys = np.linspace(0.05, 2.0, 40)
    win = monte_carlo_win_probability(
        params,
        xs,
        ys,
        n_samples=ctx.config.mc_samples,
        rng=np.random.default_rng(ctx.config.seed),
        jobs=ctx.jobs,
        cache=ctx.sweep_cache,
    )
    return {
        "emb_scales": xs,
        "op_scales": ys,
        "win_probability": win,
        "n_samples": ctx.config.mc_samples,
        "seed": ctx.config.seed,
        "parameters": params,
    }


_BUILDERS: Dict[str, Callable[[PipelineContext], object]] = {
    "table1": _build_table1,
    "table2": _build_table2,
    "fig2c": _build_fig2c,
    "fig2d": _build_fig2d,
    "fig4_energy": _build_fig4_energy,
    "fig4_critical_path": _build_fig4_critical_path,
    "fig5": _build_fig5,
    "fig6a": _build_fig6a,
    "fig6b": _build_fig6b,
    "tornado": _build_tornado,
    "monte_carlo_map": _build_monte_carlo_map,
}


def default_artifact_names() -> List[str]:
    """Every artifact the pipeline knows how to build, in build order."""
    return list(_BUILDERS)


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------
def to_jsonable(obj: object) -> object:
    """Recursively convert arrays/dataclasses/numpy scalars for JSON."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if is_dataclass(obj) and not isinstance(obj, type):
        return to_jsonable(asdict(obj))
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def canonical_json(obj: object) -> str:
    """Stable text form: sorted keys, fixed indent, trailing newline."""
    return json.dumps(to_jsonable(obj), indent=2, sort_keys=True) + "\n"


def strip_timing_fields(obj: object) -> object:
    """A copy of a manifest with every timing field removed (any depth)."""
    if isinstance(obj, dict):
        return {
            k: strip_timing_fields(v)
            for k, v in obj.items()
            if k not in TIMING_FIELDS
        }
    if isinstance(obj, list):
        return [strip_timing_fields(v) for v in obj]
    return obj


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------
def run_artifact_pipeline(
    output_root: "Union[str, Path]",
    config: Optional[PipelineConfig] = None,
    artifacts: Optional[Sequence[str]] = None,
    jobs: Optional[int] = 1,
    sweep_cache: "Union[object, None, bool]" = None,
) -> dict:
    """Regenerate the requested artifacts; returns the manifest dict.

    Args:
        output_root: directory that receives one run directory per
            parameter hash.
        config: generating parameters; defaults to the paper's nominal
            case (US grid, 24 months, 500 MHz, seed 0, 1000 MC samples).
        artifacts: subset of :func:`default_artifact_names` to build
            (the manifest parameter hash covers the selection).
        jobs: process fan-out for the Monte Carlo sweep.
        sweep_cache: passed through to the Monte Carlo memoization.
    """
    from repro.runtime.cache import ISS_VERSION, SWEEP_VERSION, SweepCache

    if sweep_cache is True:
        # Resolve the default cache here (rather than downstream in the
        # Monte Carlo) so per-artifact hit/miss deltas can be attributed.
        sweep_cache = SweepCache()
    cache_obj = sweep_cache if isinstance(sweep_cache, SweepCache) else None

    cfg = config if config is not None else PipelineConfig()
    names = list(artifacts) if artifacts is not None else default_artifact_names()
    unknown = [n for n in names if n not in _BUILDERS]
    if unknown:
        raise ValueError(
            f"unknown artifacts {unknown}; known: {default_artifact_names()}"
        )

    selection_blob = json.dumps({"config": asdict(cfg), "artifacts": names},
                                sort_keys=True)
    params_hash = hashlib.sha256(selection_blob.encode("utf-8")).hexdigest()
    run_dir = Path(output_root) / params_hash[:12]
    artifact_dir = run_dir / "artifacts"
    artifact_dir.mkdir(parents=True, exist_ok=True)

    # The wall-clock reads in this driver (perf_counter timings and the
    # generated_unix stamp) are observability metadata only: they feed
    # wall_seconds/generated_unix fields that are explicitly excluded
    # from per-artifact sha256 digests and the content hash, so seeded
    # reproducibility is unaffected.  They are grandfathered in
    # repro-lint-baseline.json rather than pragma'd line by line.
    pipeline_start = time.perf_counter()
    with obs.span(
        "artifacts.pipeline", params=params_hash[:12], artifacts=len(names)
    ):
        case = build_case_study(
            clock_hz=cfg.clock_mhz * 1e6,
            scenario=UsageScenario(cfg.lifetime_months),
            grid=cfg.grid,
        )
        ctx = PipelineContext(
            config=cfg, case=case, jobs=jobs, sweep_cache=sweep_cache
        )

        metrics = obs.get_metrics()
        build_hist = metrics.histogram("artifacts.build_seconds")
        entries: Dict[str, dict] = {}
        for name in names:
            hits_before = cache_obj.hits if cache_obj is not None else 0
            misses_before = cache_obj.misses if cache_obj is not None else 0
            with obs.span(f"artifact.{name}") as sp:
                start = time.perf_counter()
                data = _BUILDERS[name](ctx)
                text = canonical_json(data)
                wall = time.perf_counter() - start
                digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
                rel_path = f"artifacts/{name}.json"
                (run_dir / rel_path).write_text(text, encoding="utf-8")
                entries[name] = {
                    "sha256": digest,
                    "path": rel_path,
                    "bytes": len(text.encode("utf-8")),
                    "wall_seconds": wall,
                }
                sp.set(bytes=len(text.encode("utf-8")), sha=digest[:12])
                if cache_obj is not None:
                    entries[name]["sweep_cache"] = {
                        "hits": cache_obj.hits - hits_before,
                        "misses": cache_obj.misses - misses_before,
                    }
                    sp.set(
                        cache_hits=cache_obj.hits - hits_before,
                        cache_misses=cache_obj.misses - misses_before,
                    )
            metrics.counter("artifacts.built").inc()
            build_hist.observe(wall)

    content_hash = hashlib.sha256(
        json.dumps(
            {name: e["sha256"] for name, e in entries.items()},
            sort_keys=True,
        ).encode("utf-8")
    ).hexdigest()

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "params": asdict(cfg),
        "params_hash": params_hash,
        "artifact_names": names,
        "iss_version": ISS_VERSION,
        "sweep_version": SWEEP_VERSION,
        "python": platform.python_version(),
        "artifacts": entries,
        "content_hash": content_hash,
        "total_wall_seconds": time.perf_counter() - pipeline_start,
        "generated_unix": time.time(),
    }
    if obs.enabled():
        # Embedded observability snapshot; a TIMING_FIELDS member, so
        # determinism comparisons ignore it like the wall-clock stamps.
        manifest["metrics"] = obs.get_metrics().snapshot()
    (run_dir / "manifest.json").write_text(
        canonical_json(manifest), encoding="utf-8"
    )
    return manifest


def render_manifest(manifest: dict) -> str:
    """Human-readable run summary for the CLI.

    When the run carried a sweep cache, a ``cache`` column shows the
    per-artifact hit/miss deltas (``-`` for artifacts that never touch
    the cache).
    """
    entries = manifest["artifacts"]
    show_cache = any("sweep_cache" in e for e in entries.values())
    header = f"{'artifact':20s} {'sha256':>14s} {'bytes':>10s} {'wall':>9s}"
    if show_cache:
        header += f" {'cache h/m':>10s}"
    lines = [
        f"artifact run {manifest['params_hash'][:12]} "
        f"(content {manifest['content_hash'][:12]}, "
        f"{manifest['iss_version']})",
        header,
        "-" * len(header),
    ]
    total_hits = 0
    total_misses = 0
    for name, entry in entries.items():
        line = (
            f"{name:20s} {entry['sha256'][:12]:>14s} "
            f"{entry['bytes']:>10,} {entry['wall_seconds']:>8.3f}s"
        )
        if show_cache:
            stats = entry.get("sweep_cache")
            if stats is not None and (stats["hits"] or stats["misses"]):
                total_hits += stats["hits"]
                total_misses += stats["misses"]
                line += f" {stats['hits']:>5}/{stats['misses']:<4}"
            else:
                line += f" {'-':>7s}"
        lines.append(line)
    total = (
        f"{'total':20s} {'':>14s} {'':>10s} "
        f"{manifest['total_wall_seconds']:>8.3f}s"
    )
    if show_cache:
        total += f" {total_hits:>5}/{total_misses:<4}"
    lines.append(total)
    return "\n".join(lines)
