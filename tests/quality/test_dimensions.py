"""The suffix table must stay consistent with repro.units."""

import pytest

from repro import units
from repro.quality.dimensions import (
    _SUFFIX_SPEC,
    CONSTANT_TABLE,
    SUFFIX_TABLE,
    CompositeUnit,
    composite_of,
    resolve_unit,
    suffix_for,
    suffix_of,
)


@pytest.mark.smoke
class TestTableDerivation:
    def test_every_entry_resolves_against_units(self):
        for suffix, (dimension, constant) in _SUFFIX_SPEC.items():
            entry = SUFFIX_TABLE[suffix]
            assert entry.dimension == dimension
            assert entry.scale == float(getattr(units, constant))

    def test_scales_within_a_dimension_are_distinct(self):
        # Two suffixes of one dimension with equal scales would make
        # `compatible` treat them as interchangeable spellings.
        by_dim = {}
        for entry in SUFFIX_TABLE.values():
            by_dim.setdefault(entry.dimension, []).append(entry.scale)
        for dimension, scales in by_dim.items():
            assert len(scales) == len(set(scales)), dimension

    def test_repo_core_suffixes_present(self):
        for suffix in ("j", "kwh", "mm2", "cm2", "g", "kg", "s", "months",
                       "hz", "mhz", "v", "w"):
            assert suffix in SUFFIX_TABLE


class TestSuffixOf:
    def test_recognizes_suffixed_names(self):
        assert suffix_of("energy_j").dimension == "energy"
        assert suffix_of("die_area_cm2").dimension == "area"
        assert suffix_of("lifetime_months").dimension == "time"
        assert suffix_of("TOTAL_ENERGY_KWH").suffix == "kwh"

    def test_compatibility(self):
        assert suffix_of("a_j").compatible(suffix_of("b_j"))
        assert not suffix_of("a_j").compatible(suffix_of("b_kwh"))
        assert not suffix_of("a_j").compatible(suffix_of("b_g"))
        assert not suffix_of("a_mm2").compatible(suffix_of("b_cm2"))

    def test_rate_names_are_exempt(self):
        assert suffix_of("value_g_per_kwh") is None
        assert suffix_of("dibl_v_per_v") is None
        assert suffix_of("per_wafer_g") is not None  # prefix per_ is fine

    def test_bare_and_unknown_names(self):
        assert suffix_of("s") is None  # no stem
        assert suffix_of("_s") is None
        assert suffix_of("energy") is None
        assert suffix_of("x_parsec") is None


class TestCarbonSuffixes:
    def test_carbon_resolves_against_units(self):
        assert suffix_of("embodied_gco2").dimension == "carbon"
        assert suffix_of("embodied_gco2").scale == float(units.GCO2E)
        assert suffix_of("total_kgco2").scale == float(units.KGCO2E)

    def test_carbon_is_not_mass(self):
        # Grams of deposited tungsten and grams of CO2e must not add.
        assert not suffix_of("a_gco2").compatible(suffix_of("b_g"))
        assert suffix_of("a_gco2").dimension != suffix_of("b_g").dimension

    def test_carbon_scales_are_distinct(self):
        assert not suffix_of("a_gco2").compatible(suffix_of("b_kgco2"))


class TestCompositeOf:
    def test_carbon_intensity_rate(self):
        comp = composite_of("ci_gco2_per_kwh")
        assert isinstance(comp, CompositeUnit)
        assert comp.dimension == "carbon/energy"
        assert comp.suffix == "gco2_per_kwh"
        assert comp.scale == float(units.GCO2E) / float(units.KWH)

    def test_energy_per_area_rate(self):
        comp = composite_of("epa_kwh_per_cm2")
        assert comp.dimension == "energy/area"
        assert comp.scale == float(units.KWH) / float(units.CM2)

    def test_count_rate_has_no_numerator(self):
        comp = composite_of("defect_density_per_cm2")
        assert comp.numerator is None
        assert comp.dimension == "count/area"
        assert comp.suffix == "per_cm2"

    def test_unknown_denominator_rejected(self):
        assert composite_of("speed_m_per_fortnight") is None

    def test_bare_rate_without_stem_rejected(self):
        assert composite_of("per_cm2") is None

    def test_compatibility(self):
        a = composite_of("ci_gco2_per_kwh")
        b = composite_of("grid_gco2_per_kwh")
        c = composite_of("mpa_g_per_cm2")
        assert a.compatible(b)
        assert not a.compatible(c)
        assert not a.compatible(suffix_of("x_gco2"))


class TestResolveUnit:
    def test_prefers_simple_suffix(self):
        assert resolve_unit("energy_kwh").suffix == "kwh"

    def test_falls_back_to_composite(self):
        assert isinstance(resolve_unit("ci_gco2_per_kwh"), CompositeUnit)

    def test_unknown_is_none(self):
        assert resolve_unit("payload") is None


class TestReverseTables:
    def test_constant_table_round_trips(self):
        assert CONSTANT_TABLE["KWH"].suffix == "kwh"
        assert CONSTANT_TABLE["GCO2E"].suffix == "gco2"
        for constant, entry in CONSTANT_TABLE.items():
            assert entry.scale == float(getattr(units, constant))

    def test_suffix_for_matches_conversion_arithmetic(self):
        kwh = SUFFIX_TABLE["kwh"]
        assert suffix_for("energy", kwh.scale / float(units.KWH)).suffix == "j"
        # Tolerant to float rounding from conversion chains.
        assert suffix_for("energy", 1.0 + 1e-12).suffix == "j"
        assert suffix_for("energy", 42.0) is None
