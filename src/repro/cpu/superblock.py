"""Superblock-translating execution engine for the Cortex-M0 ISS.

:class:`~repro.cpu.fastpath.FastEngine` pays one Python call, one
per-mnemonic ``Counter`` update, and one ``regs[15]`` store per
instruction.  This engine extends it by *translating* straight-line runs
of instructions ("superblocks": everything up to the next BL, BKPT, or
multi-access memory op, *including* a terminating conditional or
unconditional branch) into a single exec-compiled Python function,
executed as one call per block:

- **Batched constant accounting.**  Every straight-line instruction has
  a constant cycle count, load/store count, mnemonic, and
  register-write count, so a block's totals are compile-time constants.
  The run loop bumps one per-block execution counter; cycles accumulate
  in a loop local; per-mnemonic counts, loads/stores, and
  ``register_writes`` flush as ``constant * executions`` at run exit.
- **Flag liveness.**  Within a block, N/Z/C/V stores are emitted only
  when a later reader (ADC/SBC, a potentially faulting memory access,
  or the block exit) can observe them — dead flag writes cost nothing.
- **Register caching.**  Architectural registers live in Python locals
  for the duration of a block and are written back at every exit.

Bit-identity with the legacy engine is preserved exactly, including the
awkward cases:

- **Faults mid-block** (misaligned/unmapped accesses): the generated
  code tracks the index of the active memory instruction and, on any
  exception, restores registers, sets ``regs[15]`` to the faulting pc,
  and stashes a precomputed partial-progress tuple (instructions,
  cycles, loads, stores, register writes, per-mnemonic counts for the
  completed prefix — including the faulting instruction's mnemonic
  exactly when the legacy decoder counts it before the access) that
  ``run()`` merges in its ``finally`` clause before re-raising.
- **Self-modifying code**: stores that reach the program region
  invalidate the block cache (block granularity: every translated
  block drops).  The generated code checks the cache generation after
  every slow-path store and, when it changed, exits the block early
  with the same partial-progress protocol so the remaining
  instructions re-translate from the patched bytes.
- **Cycle limits**: a block only runs when the budget covers every
  intermediate pre-instruction check the legacy loop would make
  (``cycles + guard < max_cycles`` where ``guard`` is the cycle prefix
  before the block's terminating instruction); otherwise execution
  falls back
  to the per-instruction dispatch table, which raises the identical
  ``cycle limit N exceeded`` error at the identical instruction.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.cpu.fastpath import FastEngine, _Halt, _hamming
from repro.errors import ExecutionError, MemoryAccessError

_MASK32 = 0xFFFFFFFF

#: Register-write toggle pattern, rewritten in vector blocks to the
#: pair-journaling form ``H2(old, new)`` so the XOR happens in bulk at
#: journal-flush time instead of as one NumPy op per write.
_VEC_TOGGLE_RE = re.compile(r"tg \+= H\((r\d+) \^ v\)")

#: Block cache slots (plain lists for dispatch speed).
(
    B_FN, B_CYC, B_GUARD, B_EXECS, B_K, B_LD, B_ST, B_WR, B_PM, B_TB,
) = range(10)

#: Minimum run length worth translating; shorter runs use the parent
#: per-instruction handlers (marked ``False`` in the block cache).
_MIN_BLOCK = 2

#: Maximum instructions fused into one block.
_MAX_BLOCK = 48

_ALL_FLAGS = frozenset("nzcv")
_NZ = frozenset("nz")
_NZC = frozenset("nzc")

#: Condition-code expressions over the live APSR, mirroring
#: :func:`repro.cpu.fastpath._cond_fn` case for case (indices 0..13;
#: 0xE is undefined and 0xF is SVC, neither of which fuses).
_COND_EXPR = (
    "R.z", "not R.z", "R.c", "not R.c", "R.n", "not R.n", "R.v",
    "not R.v", "R.c and not R.z", "(not R.c) or R.z", "R.n == R.v",
    "R.n != R.v", "(not R.z) and R.n == R.v", "R.z or R.n != R.v",
)


class _FusedBranch:
    """A conditional or unconditional branch terminating a block.

    ``base_cycles`` joins the block's constant cycle total; the tail
    code returns the *extra* cycles beyond that base (2 for a taken
    conditional branch, 0 otherwise).  ``taken_const`` is the
    per-execution ``taken_branches`` increment when it is a constant
    (unconditional branches); data-dependent outcomes bump the stats
    object directly in the tail.
    """

    __slots__ = ("mnem", "base_cycles", "taken_const", "_lines", "_vec_lines")

    def __init__(
        self,
        mnem: str,
        base_cycles: int,
        taken_const: int,
        lines: List[str],
        vec_lines: Optional[List[str]] = None,
    ) -> None:
        self.mnem = mnem
        self.base_cycles = base_cycles
        self.taken_const = taken_const
        self._lines = lines
        self._vec_lines = vec_lines if vec_lines is not None else lines

    def tail(self) -> List[str]:
        return self._lines

    def vector_tail(self) -> List[str]:
        """Tail for N-lane blocks: flags may be arrays, so conditional
        outcomes resolve through ``eng._vec_branch`` (uniform -> extra
        cycles, divergent -> a divergence object the vector run loop
        handles)."""
        return self._vec_lines


class _Insn:
    """One classified straight-line instruction inside a block."""

    __slots__ = (
        "pc", "mnem", "cycles", "loads", "stores", "writes",
        "fw", "fkill", "fr", "faultable", "pm_on_fault",
        "reads_regs", "writes_regs", "gen",
    )

    def __init__(
        self,
        pc: int,
        mnem: str,
        cycles: int,
        gen: Callable[..., List[str]],
        loads: int = 0,
        stores: int = 0,
        writes: int = 0,
        fw: frozenset = frozenset(),
        fkill: Optional[frozenset] = None,
        fr: frozenset = frozenset(),
        faultable: bool = False,
        pm_on_fault: bool = False,
        reads_regs: Tuple[int, ...] = (),
        writes_regs: Tuple[int, ...] = (),
    ) -> None:
        self.pc = pc
        self.mnem = mnem
        self.cycles = cycles
        self.loads = loads
        self.stores = stores
        self.writes = writes
        self.fw = fw
        # Flags *unconditionally* overwritten (kill set for liveness);
        # shift-by-register ops write C only when the shift is nonzero.
        self.fkill = fw if fkill is None else fkill
        self.fr = fr
        self.faultable = faultable
        self.pm_on_fault = pm_on_fault
        self.reads_regs = reads_regs
        self.writes_regs = writes_regs
        self.gen = gen


class SuperblockEngine(FastEngine):
    """FastEngine with straight-line runs fused into translated blocks."""

    # Flipped by the N-lane vector subclass: switches block codegen to
    # array-safe emission (helper-based memory, deferred branch tails).
    _vector = False

    # The ``H`` binding in generated blocks; the vector subclass swaps
    # in a polymorphic popcount that journals lane-varying patterns.
    _toggle_hash = staticmethod(_hamming)

    # The ``H2`` binding (pair-journaled toggles).  Scalar blocks never
    # emit an H2 call, so the placeholder is never invoked.
    _toggle_hash2: Any = None

    def __init__(self, cpu) -> None:
        self.blocks: Dict[int, Any] = {}
        self._generation = 0
        self._partial: Optional[tuple] = None
        super().__init__(cpu)
        # Engine-health tallies (cold paths only), mirrored into the
        # observability counters by the workload runner.
        self.blocks_translated = 0
        self.block_execs = 0
        self.block_steps = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Program memory changed: drop blocks and per-PC handlers."""
        self._flush_blocks()
        self.blocks.clear()
        self._generation += 1
        super().invalidate()

    # ------------------------------------------------------------------
    def _flush_blocks(self) -> None:
        """Fold batched per-block tallies into the architectural stats."""
        stats = self.cpu.stats
        pm = stats.per_mnemonic
        tr = self.cpu.trace if self.cpu.trace is not None else self._null_trace
        prog_reads = 0
        for b in self.blocks.values():
            if b and b[B_EXECS]:
                e = b[B_EXECS]
                b[B_EXECS] = 0
                k = e * b[B_K]
                prog_reads += k
                stats.instructions += k
                stats.loads += e * b[B_LD]
                stats.stores += e * b[B_ST]
                tr.register_writes += e * b[B_WR]
                stats.taken_branches += e * b[B_TB]
                for m, c in b[B_PM]:
                    pm[m] += c * e
                self.block_execs += e
                self.block_steps += k
        if prog_reads:
            self.prog.counters.reads += prog_reads

    def _merge_partial(self, cycles: int) -> int:
        """Fold a block's partial-progress tuple; returns new cycles."""
        p = self._partial
        if p is None:
            return cycles
        self._partial = None
        k, cyc, ld, stc, wr, pmi = p
        stats = self.cpu.stats
        self.prog.counters.reads += k
        stats.instructions += k
        stats.loads += ld
        stats.stores += stc
        tr = self.cpu.trace if self.cpu.trace is not None else self._null_trace
        tr.register_writes += wr
        pm = stats.per_mnemonic
        for m, c in pmi:
            pm[m] += c
        self.block_steps += k
        return cycles + cyc

    # ------------------------------------------------------------------
    def run(self, max_cycles: int):
        """Run until BKPT or the cycle limit; returns the shared stats."""
        cpu = self.cpu
        if self._decoded_version != self.prog.version:
            self.invalidate()
        stats = cpu.stats
        regs = self.regs_list
        table = self.table
        decode = self._decode
        bget = self.blocks.get
        translate = self._translate
        prog_base = self.prog.base
        prog_counters = self.prog.counters
        trace = cpu.trace
        cycles = stats.cycles
        base_cycles = cycles
        trace_base = trace.cycles if trace is not None else 0
        steps = 0
        flushed_steps = 0
        if cpu.halted:
            return stats
        try:
            while True:
                if cycles >= max_cycles:
                    raise ExecutionError(
                        f"cycle limit {max_cycles} exceeded at "
                        f"pc={regs[15]:#010x}"
                    )
                pc = regs[15]
                b = bget(pc)
                if b is None and prog_base <= pc:
                    b = translate(pc)
                if b and cycles + b[2] < max_cycles:
                    extra = b[0]()
                    if extra is not None:
                        # Normal exit: ``extra`` is the terminating
                        # branch's cycles beyond the not-taken base
                        # (0 for blocks without a fused branch).
                        b[3] += 1
                        cycles += b[1] + extra
                        continue
                    # Early exit: a store invalidated the block cache.
                    cycles = self._merge_partial(cycles)
                    continue
                h = None
                if prog_base <= pc:
                    try:
                        h = table[pc - prog_base]
                    except IndexError:
                        pass
                    else:
                        if h is None:
                            h = decode(pc)
                if h is not None:
                    steps += 1
                    cycles += h()
                else:
                    # Executing outside the predecoded program region:
                    # flush and take one legacy step, which decodes,
                    # counts, and raises identically.
                    delta = steps - flushed_steps
                    flushed_steps = steps
                    prog_counters.reads += delta
                    stats.instructions += delta
                    self._flush_blocks()
                    stats.cycles = cycles
                    if trace is not None:
                        trace.cycles = trace_base + (cycles - base_cycles)
                    cpu.step()
                    self.fallback_steps += 1
                    cycles = stats.cycles
                    if cpu.halted:
                        break
        except _Halt:
            cycles += 1  # the BKPT cycle
        finally:
            cycles = self._merge_partial(cycles)
            delta = steps - flushed_steps
            prog_counters.reads += delta
            stats.instructions += delta
            self._flush_blocks()
            stats.cycles = cycles
            self.fast_steps += steps
            if trace is not None:
                trace.cycles = trace_base + (cycles - base_cycles)
        return stats

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def _translate(self, start: int):
        """Classify the straight-line run at ``start`` and compile it.

        Returns the block list, or ``False`` (cached) when the run is
        too short to be worth fusing.
        """
        mem = self.cpu.memory
        prog_end = self.prog.end
        insns: List[_Insn] = []
        branch = None
        pc = start
        while len(insns) < _MAX_BLOCK:
            if pc < self.prog.base or pc + 2 > prog_end or pc & 1:
                break
            try:
                raw = mem.read(pc, 2, count=False)
            except MemoryAccessError:
                break
            d = self._classify(pc, raw)
            if d is None:
                if insns:
                    branch = self._classify_branch(pc, raw)
                break
            insns.append(d)
            pc += 2
        if len(insns) + (1 if branch else 0) < _MIN_BLOCK:
            self.blocks[start] = False
            return False
        block = self._compile(start, insns, branch)
        self.blocks[start] = block
        self.blocks_translated += 1
        return block

    # ------------------------------------------------------------------
    def _classify_branch(self, pc: int, insn: int) -> Optional[_FusedBranch]:
        """Classify a block-terminating branch for fusion, or ``None``.

        Mirrors the conditional/unconditional branch handlers in
        :meth:`FastEngine._build`: ``bcond`` costs 3 cycles taken / 1
        not taken, ``b`` always 3, and both count one ``taken_branches``
        per taken execution.
        """
        if (insn & 0xF800) == 0xE000:
            offset = insn & 0x7FF
            if offset & 0x400:
                offset -= 0x800
            target = (pc + 4 + (offset << 1)) & _MASK32
            return _FusedBranch(
                "b", 3, 1, [f"regs[15] = {target}", "return 0"]
            )
        if (insn & 0xF000) == 0xD000:
            cond = (insn >> 8) & 0xF
            if cond >= 0xE:  # 0xE undefined, 0xF SVC
                return None
            offset = insn & 0xFF
            if offset & 0x80:
                offset -= 0x100
            taken_pc = (pc + 4 + (offset << 1)) & _MASK32
            if cond < 8:
                # Single-flag condition: when the flag is a plain bool
                # (lane-uniform), resolve inline; anything else (an
                # array, a NumPy scalar) defers to _vec_branch.
                flag = "zzccnnvv"[cond]
                want = "True" if (cond & 1) == 0 else "False"
                other = "False" if want == "True" else "True"
                vec_lines = [
                    f"f_ = R.{flag}",
                    f"if f_ is {want}:",
                    "    st.taken_branches += 1",
                    f"    regs[15] = {taken_pc}",
                    "    return 2",
                    f"if f_ is {other}:",
                    f"    regs[15] = {pc + 2}",
                    "    return 0",
                    f"return eng._vec_branch({cond}, {taken_pc}, {pc + 2})",
                ]
            else:
                vec_lines = [
                    f"return eng._vec_branch({cond}, {taken_pc}, {pc + 2})",
                ]
            return _FusedBranch(
                "bcond", 1, 0,
                [
                    f"if {_COND_EXPR[cond]}:",
                    "    st.taken_branches += 1",
                    f"    regs[15] = {taken_pc}",
                    "    return 2",
                    f"regs[15] = {pc + 2}",
                    "return 0",
                ],
                vec_lines=vec_lines,
            )
        return None

    # ------------------------------------------------------------------
    def _compile(self, start: int, insns: List[_Insn], branch=None):
        """Generate, exec, and wrap the fused handler for one block.

        ``branch`` is an optional ``_FusedBranch`` terminating the
        block; its (possibly data-dependent) cycles and ``regs[15]``
        update are emitted in the block tail, and its extra-over-base
        cycles are the generated function's return value.
        """
        k = len(insns)
        # Backward flag liveness: a flag store is emitted only when a
        # later reader may observe it.  Memory instructions read all
        # four (a fault freezes architectural state mid-block), and the
        # block exit is conservatively a full read (the terminator may
        # be a conditional branch).
        live: Set[str] = set(_ALL_FLAGS)
        mats: List[Set[str]] = [set()] * k
        for i in range(k - 1, -1, -1):
            d = insns[i]
            reads = set(d.fr) | (_ALL_FLAGS if d.faultable else frozenset())
            mats[i] = set(d.fw) & live
            live = (live - set(d.fkill)) | reads

        # Prefix tables for fault / self-modifying-code exits.
        pcs = tuple(d.pc for d in insns)
        cyc_prefix = [0] * (k + 1)
        ld_prefix = [0] * (k + 1)
        st_prefix = [0] * (k + 1)
        wr_prefix = [0] * (k + 1)
        pm_prefix: List[Counter] = [Counter()]
        for i, d in enumerate(insns):
            cyc_prefix[i + 1] = cyc_prefix[i] + d.cycles
            ld_prefix[i + 1] = ld_prefix[i] + d.loads
            st_prefix[i + 1] = st_prefix[i] + d.stores
            wr_prefix[i + 1] = wr_prefix[i] + d.writes
            nxt = Counter(pm_prefix[i])
            nxt[d.mnem] += 1
            pm_prefix.append(nxt)
        # FLT[i]: legacy state when instruction i faults — its fetch is
        # counted, its cycles/loads/stores/writes are not, and its
        # mnemonic is counted only for formats that tally before the
        # access (register-offset loads/stores).
        flt = []
        smc = []
        for i, d in enumerate(insns):
            pm_f = Counter(pm_prefix[i])
            if d.pm_on_fault:
                pm_f[d.mnem] += 1
            flt.append((
                i + 1, cyc_prefix[i], ld_prefix[i], st_prefix[i],
                wr_prefix[i], tuple(pm_f.items()),
            ))
            smc.append((
                i + 1, cyc_prefix[i + 1], ld_prefix[i + 1],
                st_prefix[i + 1], wr_prefix[i + 1],
                tuple(pm_prefix[i + 1].items()),
            ))
        flt_t = tuple(flt)
        smc_t = tuple(smc)

        cached = sorted(
            {r for d in insns for r in d.reads_regs}
            | {r for d in insns for r in d.writes_regs}
        )
        written = sorted({r for d in insns for r in d.writes_regs})
        wb = "; ".join(f"regs[{r}] = r{r}" for r in written) or "pass"
        end_pc = pcs[-1] + 2

        k_total = k + (1 if branch else 0)
        cyc_total = cyc_prefix[k]
        tb_const = 0
        pm_total = Counter(pm_prefix[k])
        if branch:
            # The terminator executes only after every straight-line
            # instruction's pre-check passed, so the guard is the full
            # straight-line prefix.
            guard = cyc_prefix[k]
            cyc_total += branch.base_cycles
            tb_const = branch.taken_const
            pm_total[branch.mnem] += 1
        else:
            guard = cyc_prefix[k - 1]

        lines: List[str] = []
        lines.append(
            "def _block(regs=regs, R=R, tr=tr, H=H, H2=H2,"
        )
        lines.append(
            "           from_bytes=from_bytes,"
        )
        lines.append(
            "           data_bytes=data_bytes, data_counters=data_counters,"
        )
        lines.append(
            "           read32=read32, read16=read16, read8=read8,"
        )
        lines.append(
            "           write32=write32, write16=write16, write8=write8):"
        )
        lines.append("    tg = 0")
        lines.append("    _i = 0")
        for r in cached:
            lines.append(f"    r{r} = regs[{r}]")
        lines.append("    try:")
        ctx = _GenCtx(self, wb, vector=self._vector)
        body: List[str] = []
        for i, d in enumerate(insns):
            body.append(f"# {d.pc:#06x} {d.mnem}")
            body.extend(d.gen(i, mats[i], ctx))
        if self._vector:
            body = [
                _VEC_TOGGLE_RE.sub(r"tg += H2(\1, v)", ln) for ln in body
            ]
        if all(ln.startswith("#") for ln in body):
            body.append("pass")  # e.g. an all-NOP block emits no code
        for ln in body:
            lines.append("        " + ln)
        lines.append("    except Exception:")
        lines.append(f"        {wb}")
        lines.append("        regs[15] = PCS[_i]")
        lines.append("        tr.register_toggles += tg")
        lines.append("        eng._partial = FLT[_i]")
        lines.append("        raise")
        lines.append(f"    {wb}")
        lines.append("    tr.register_toggles += tg")
        if branch is None:
            lines.append(f"    regs[15] = {end_pc}")
            lines.append("    return 0")
        else:
            tail = branch.vector_tail() if self._vector else branch.tail()
            for ln in tail:
                lines.append("    " + ln)

        tr = self.cpu.trace if self.cpu.trace is not None else self._null_trace
        r32, r16, r8, w32, w16, w8 = self._mem_helpers
        ns: Dict[str, Any] = {
            "regs": self.regs_list,
            "R": self.cpu.regs,
            "tr": tr,
            "H": self._toggle_hash,
            "H2": self._toggle_hash2,
            "from_bytes": int.from_bytes,
            "data_bytes": self.data.data,
            "data_counters": self.data.counters,
            "read32": r32, "read16": r16, "read8": r8,
            "write32": w32, "write16": w16, "write8": w8,
            "eng": self,
            "st": self.cpu.stats,
            "PCS": pcs,
            "FLT": flt_t,
            "SMC": smc_t,
        }
        src = "\n".join(lines)
        exec(compile(src, f"<superblock@{start:#06x}>", "exec"), ns)
        fn = ns["_block"]
        return [
            fn, cyc_total, guard, 0, k_total,
            ld_prefix[k], st_prefix[k], wr_prefix[k],
            tuple(pm_total.items()), tb_const,
        ]

    # ------------------------------------------------------------------
    # Classification: one straight-line instruction -> codegen recipe.
    # Mirrors FastEngine._build case for case; anything that branches,
    # halts, does multi-register memory access, or is undefined ends
    # the block (returns None) and runs through the parent handlers.
    # ------------------------------------------------------------------
    def _classify(self, pc: int, insn: int) -> Optional[_Insn]:  # noqa: C901
        db = self.data.base
        de = self.data.end
        top5 = insn >> 11

        if (insn & 0xF800) == 0xF000:  # BL prefix: terminator
            return None

        if top5 in (0b00000, 0b00001, 0b00010):
            return self._c_shift_imm(pc, insn)

        if top5 == 0b00011:
            return self._c_add_sub_fmt2(pc, insn)

        if (insn >> 13) == 0b001:
            return self._c_imm8_ops(pc, insn)

        if (insn & 0xFC00) == 0x4000:
            return self._c_alu_fmt4(pc, insn)

        if (insn & 0xFC00) == 0x4400:
            return self._c_hi_ops(pc, insn)

        if (insn & 0xF800) == 0x4800:  # LDR literal
            rd = (insn >> 8) & 0x7
            address = ((pc + 4) & ~3) + (insn & 0xFF) * 4

            def g_lit(i, mat, ctx, rd=rd, address=address):
                return [
                    f"_i = {i}",
                    f"v = read32({address})",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldr", 2, g_lit, loads=1, writes=1, faultable=True,
                writes_regs=(rd,),
            )

        if (insn & 0xF000) == 0x5000:
            return self._c_ldr_str_reg(pc, insn, db, de)

        if (insn & 0xE000) == 0x6000:
            return self._c_ldr_str_imm(pc, insn, db, de)

        if (insn & 0xF000) == 0x8000:
            return self._c_ldrh_strh_imm(pc, insn)

        if (insn & 0xF000) == 0x9000:
            return self._c_ldr_str_sp(pc, insn, db, de)

        if (insn & 0xF000) == 0xA000:  # ADD rd, SP/PC, #imm
            use_sp = bool(insn & (1 << 11))
            rd = (insn >> 8) & 0x7
            imm = (insn & 0xFF) * 4
            if use_sp:
                def g_addsp(i, mat, ctx, rd=rd, imm=imm):
                    return [
                        f"v = (r13 + {imm}) & 0xFFFFFFFF",
                        f"tg += H(r{rd} ^ v); r{rd} = v",
                    ]
                return _Insn(
                    pc, "add", 1, g_addsp, writes=1,
                    reads_regs=(13,), writes_regs=(rd,),
                )
            const = (((pc + 4) & ~3) + imm) & _MASK32

            def g_addpc(i, mat, ctx, rd=rd, const=const):
                return [f"tg += H(r{rd} ^ {const}); r{rd} = {const}"]
            return _Insn(pc, "add", 1, g_addpc, writes=1, writes_regs=(rd,))

        if (insn & 0xFF00) == 0xB000:  # ADD/SUB SP, #imm
            magnitude = (insn & 0x7F) * 4
            if insn & 0x80:
                magnitude = -magnitude
            mnem = "add sp" if magnitude >= 0 else "sub sp"

            def g_adjsp(i, mat, ctx, magnitude=magnitude):
                # No trace write: the legacy path writes SP directly.
                return [f"r13 = (r13 + {magnitude}) & 0xFFFFFFFF"]
            return _Insn(
                pc, mnem, 1, g_adjsp, reads_regs=(13,), writes_regs=(13,),
            )

        if (insn & 0xFF00) == 0xB200:
            return self._c_extend(pc, insn)

        if (insn & 0xFF00) == 0xBA00:
            return self._c_rev(pc, insn)

        if (insn & 0xF600) == 0xB400:  # PUSH/POP: terminator
            return None

        if (insn & 0xFF00) == 0xBE00:  # BKPT: terminator
            return None

        if (insn & 0xFFFF) == 0xBF00:  # NOP
            def g_nop(i, mat, ctx):
                return []
            return _Insn(pc, "nop", 1, g_nop)

        if (insn & 0xF000) == 0xC000:  # LDM/STM: terminator
            return None

        if (insn & 0xFF00) == 0xDF00:  # SVC
            def g_svc(i, mat, ctx):
                return []
            return _Insn(pc, "svc", 1, g_svc)

        # Conditional branch, B, undefined encodings: terminator.
        return None

    # -- flag helpers --------------------------------------------------
    @staticmethod
    def _nz(mat: Set[str], val: str = "v") -> List[str]:
        out = []
        if "n" in mat:
            out.append(f"R.n = {val} >= 0x80000000")
        if "z" in mat:
            out.append(f"R.z = {val} == 0")
        return out

    @staticmethod
    def _addsub_flags(
        mat: Set[str], a: str, b_sig: str, cin: str
    ) -> List[str]:
        """C/V stores for the inlined ``_adc`` pattern.

        ``b_sig`` is the *signed* expression for the second operand (a
        constant string for immediates); ``cin`` is "0" or "1" or a
        local name.  The caller has computed ``res = a + b + cin`` and
        must emit these lines immediately after, before masking.
        """
        out = []
        if "c" in mat:
            out.append("R.c = res > 0xFFFFFFFF")
        if "v" in mat:
            out.append(
                f"sa = ({a} & 0x7FFFFFFF) - ({a} & 0x80000000)"
            )
            out.append(f"sr = sa + {b_sig} + {cin}")
            out.append(
                "R.v = (sr < -2147483648) | (2147483647 < sr)"
            )
        return out

    # -- per-format classifiers ----------------------------------------
    def _c_shift_imm(self, pc: int, insn: int) -> _Insn:
        top5 = insn >> 11
        op = top5 & 0x3
        imm5 = (insn >> 6) & 0x1F
        rm = (insn >> 3) & 0x7
        rd = insn & 0x7
        if op == 0 and imm5 == 0:  # MOVS (register): C unchanged
            def g(i, mat, ctx, rm=rm, rd=rd):
                out = [f"v = r{rm}"]
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
            return _Insn(
                pc, "movs", 1, g, writes=1, fw=_NZ,
                reads_regs=(rm,), writes_regs=(rd,),
            )
        if op == 0:  # LSL imm
            def g(i, mat, ctx, rm=rm, rd=rd, imm5=imm5):
                out = [f"a = r{rm}"]
                if "c" in mat:
                    out.append(f"R.c = (a >> {32 - imm5}) & 1 != 0")
                out.append(f"v = (a << {imm5}) & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
            return _Insn(
                pc, "lsls", 1, g, writes=1, fw=_NZC,
                reads_regs=(rm,), writes_regs=(rd,),
            )
        if op == 1:  # LSR imm (imm5 == 0 means 32)
            shift = imm5 or 32
            if shift < 32:
                def g(i, mat, ctx, rm=rm, rd=rd, shift=shift):
                    out = [f"a = r{rm}"]
                    if "c" in mat:
                        out.append(f"R.c = (a >> {shift - 1}) & 1 != 0")
                    out.append(f"v = a >> {shift}")
                    out += self._nz(mat)
                    out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                    return out
            else:
                def g(i, mat, ctx, rm=rm, rd=rd):
                    out = [f"a = r{rm}"]
                    if "c" in mat:
                        out.append("R.c = a >> 31 != 0")
                    if "n" in mat:
                        out.append("R.n = False")
                    if "z" in mat:
                        out.append("R.z = True")
                    out.append(f"tg += H(r{rd}); r{rd} = 0")
                    return out
            return _Insn(
                pc, "lsrs", 1, g, writes=1, fw=_NZC,
                reads_regs=(rm,), writes_regs=(rd,),
            )
        # ASR imm (imm5 == 0 means 32)
        shift = imm5 or 32
        if shift < 32:
            def g(i, mat, ctx, rm=rm, rd=rd, shift=shift):
                out = [
                    f"a = r{rm}",
                    "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)",
                ]
                if "c" in mat:
                    out.append(f"R.c = (sa >> {shift - 1}) & 1 != 0")
                out.append(f"v = (sa >> {shift}) & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
        else:
            def g(i, mat, ctx, rm=rm, rd=rd):
                out = [
                    f"a = r{rm}",
                    "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)",
                ]
                if "c" in mat:
                    out.append("R.c = (sa >> 31) & 1 != 0")
                out.append("v = ((sa >> 63) & 1) * 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
        return _Insn(
            pc, "asrs", 1, g, writes=1, fw=_NZC,
            reads_regs=(rm,), writes_regs=(rd,),
        )

    def _c_add_sub_fmt2(self, pc: int, insn: int) -> _Insn:
        immediate = bool(insn & (1 << 10))
        sub = bool(insn & (1 << 9))
        operand = (insn >> 6) & 0x7
        rn = (insn >> 3) & 0x7
        rd = insn & 0x7
        mnem = "subs" if sub else "adds"
        if immediate:
            if sub:
                nb = (~operand) & _MASK32
                snb = nb - 0x100000000

                def g(i, mat, ctx, rn=rn, rd=rd, nb=nb, snb=snb):
                    out = [f"a = r{rn}", f"res = a + {nb} + 1"]
                    out += self._addsub_flags(mat, "a", str(snb), "1")
                    out.append("v = res & 0xFFFFFFFF")
                    out += self._nz(mat)
                    out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                    return out
            else:
                def g(i, mat, ctx, rn=rn, rd=rd, operand=operand):
                    out = [f"a = r{rn}", f"res = a + {operand}"]
                    out += self._addsub_flags(mat, "a", str(operand), "0")
                    out.append("v = res & 0xFFFFFFFF")
                    out += self._nz(mat)
                    out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                    return out
            return _Insn(
                pc, mnem, 1, g, writes=1, fw=_ALL_FLAGS,
                reads_regs=(rn,), writes_regs=(rd,),
            )
        if sub:
            def g(i, mat, ctx, rn=rn, rd=rd, rm=operand):
                out = [
                    f"a = r{rn}",
                    f"b = (~r{rm}) & 0xFFFFFFFF",
                    "res = a + b + 1",
                ]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb + 1; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
        else:
            def g(i, mat, ctx, rn=rn, rd=rd, rm=operand):
                out = [f"a = r{rn}", f"b = r{rm}", "res = a + b"]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
        return _Insn(
            pc, mnem, 1, g, writes=1, fw=_ALL_FLAGS,
            reads_regs=(rn, operand), writes_regs=(rd,),
        )

    def _c_imm8_ops(self, pc: int, insn: int) -> _Insn:
        op = (insn >> 11) & 0x3
        rd = (insn >> 8) & 0x7
        imm8 = insn & 0xFF
        if op == 0:  # MOVS
            def g(i, mat, ctx, rd=rd, imm8=imm8):
                out = []
                if "n" in mat:
                    out.append("R.n = False")
                if "z" in mat:
                    out.append(f"R.z = {imm8 == 0}")
                out.append(f"tg += H(r{rd} ^ {imm8}); r{rd} = {imm8}")
                return out
            return _Insn(
                pc, "movs", 1, g, writes=1, fw=_NZ, writes_regs=(rd,),
            )
        if op == 1:  # CMP
            nb = (~imm8) & _MASK32
            snb = nb - 0x100000000

            def g(i, mat, ctx, rd=rd, nb=nb, snb=snb):
                out = [f"a = r{rd}", f"res = a + {nb} + 1"]
                out += self._addsub_flags(mat, "a", str(snb), "1")
                if "n" in mat or "z" in mat:
                    out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                return out
            return _Insn(
                pc, "cmp", 1, g, fw=_ALL_FLAGS, reads_regs=(rd,),
            )
        if op == 2:  # ADDS
            def g(i, mat, ctx, rd=rd, imm8=imm8):
                out = [f"a = r{rd}", f"res = a + {imm8}"]
                out += self._addsub_flags(mat, "a", str(imm8), "0")
                out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
                return out
            return _Insn(
                pc, "adds", 1, g, writes=1, fw=_ALL_FLAGS,
                reads_regs=(rd,), writes_regs=(rd,),
            )
        nb = (~imm8) & _MASK32
        snb = nb - 0x100000000

        def g(i, mat, ctx, rd=rd, nb=nb, snb=snb):
            out = [f"a = r{rd}", f"res = a + {nb} + 1"]
            out += self._addsub_flags(mat, "a", str(snb), "1")
            out.append("v = res & 0xFFFFFFFF")
            out += self._nz(mat)
            out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
            return out
        return _Insn(
            pc, "subs", 1, g, writes=1, fw=_ALL_FLAGS,
            reads_regs=(rd,), writes_regs=(rd,),
        )

    def _c_alu_fmt4(self, pc: int, insn: int) -> _Insn:  # noqa: C901
        op = (insn >> 6) & 0xF
        rm = (insn >> 3) & 0x7
        rdn = insn & 0x7

        def bitwise(expr: str, mnem: str) -> _Insn:
            def g(i, mat, ctx, rdn=rdn, expr=expr):
                out = [f"v = {expr}"]
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, mnem, 1, g, writes=1, fw=_NZ,
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )

        if op == 0x0:
            return bitwise(f"r{rdn} & r{rm}", "ands")
        if op == 0x1:
            return bitwise(f"r{rdn} ^ r{rm}", "eors")
        if op == 0x2:  # LSL (register)
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"a = r{rdn}", f"sh = r{rm} & 0xFF", "v = a"]
                out.append("if sh:")
                if "c" in mat:
                    out.append(
                        "    R.c = sh <= 32 and (a >> (32 - sh)) & 1 != 0"
                    )
                out.append(
                    "    v = (a << sh) & 0xFFFFFFFF if sh < 32 else 0"
                )
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, "lsls", 1, g, writes=1, fw=_NZC, fkill=_NZ,
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )
        if op == 0x3:  # LSR (register)
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"a = r{rdn}", f"sh = r{rm} & 0xFF", "v = a"]
                out.append("if sh:")
                if "c" in mat:
                    out.append(
                        "    R.c = sh <= 32 and (a >> (sh - 1)) & 1 != 0"
                    )
                out.append("    v = (a >> sh) if sh < 32 else 0")
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, "lsrs", 1, g, writes=1, fw=_NZC, fkill=_NZ,
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )
        if op == 0x4:  # ASR (register)
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"a = r{rdn}", f"sh = r{rm} & 0xFF", "v = a"]
                out.append("if sh:")
                out.append(
                    "    sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                )
                out.append("    eff = sh if sh < 32 else 32")
                if "c" in mat:
                    out.append("    R.c = (sa >> (eff - 1)) & 1 != 0")
                out.append("    if eff < 32:")
                out.append("        v = (sa >> eff) & 0xFFFFFFFF")
                out.append("    else:")
                out.append("        v = ((sa >> 63) & 1) * 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, "asrs", 1, g, writes=1, fw=_NZC, fkill=_NZ,
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )
        if op in (0x5, 0x6):  # ADC / SBC
            mnem = "adcs" if op == 0x5 else "sbcs"
            bexpr = f"r{rm}" if op == 0x5 else f"(~r{rm}) & 0xFFFFFFFF"

            def g(i, mat, ctx, rdn=rdn, bexpr=bexpr):
                out = [
                    f"a = r{rdn}",
                    f"b = {bexpr}",
                    "cin = 1 if R.c else 0",
                    "res = a + b + cin",
                ]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb + cin; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, mnem, 1, g, writes=1, fw=_ALL_FLAGS, fr=frozenset("c"),
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )
        if op == 0x7:  # ROR
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"a = r{rdn}", f"sh = r{rm} & 0xFF", "v = a"]
                out.append("if sh:")
                out.append("    rot = sh % 32")
                out.append("    if rot:")
                out.append(
                    "        v = ((a >> rot) | (a << (32 - rot)))"
                    " & 0xFFFFFFFF"
                )
                if "c" in mat:
                    out.append("    R.c = v >= 0x80000000")
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, "rors", 1, g, writes=1, fw=_NZC, fkill=_NZ,
                reads_regs=(rdn, rm), writes_regs=(rdn,),
            )
        if op == 0x8:  # TST
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"v = r{rdn} & r{rm}"]
                out += self._nz(mat)
                return out
            return _Insn(pc, "tst", 1, g, fw=_NZ, reads_regs=(rdn, rm))
        if op == 0x9:  # RSB (NEG)
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"b = (~r{rm}) & 0xFFFFFFFF", "res = b + 1"]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sb + 1; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
                return out
            return _Insn(
                pc, "rsbs", 1, g, writes=1, fw=_ALL_FLAGS,
                reads_regs=(rm,), writes_regs=(rdn,),
            )
        if op == 0xA:  # CMP
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [
                    f"a = r{rdn}",
                    f"b = (~r{rm}) & 0xFFFFFFFF",
                    "res = a + b + 1",
                ]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb + 1; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                if "n" in mat or "z" in mat:
                    out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                return out
            return _Insn(
                pc, "cmp", 1, g, fw=_ALL_FLAGS, reads_regs=(rdn, rm),
            )
        if op == 0xB:  # CMN
            def g(i, mat, ctx, rdn=rdn, rm=rm):
                out = [f"a = r{rdn}", f"b = r{rm}", "res = a + b"]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                if "n" in mat or "z" in mat:
                    out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                return out
            return _Insn(
                pc, "cmn", 1, g, fw=_ALL_FLAGS, reads_regs=(rdn, rm),
            )
        if op == 0xC:
            return bitwise(f"r{rdn} | r{rm}", "orrs")
        if op == 0xD:  # MUL
            return bitwise(f"(r{rdn} * r{rm}) & 0xFFFFFFFF", "muls")
        if op == 0xE:  # BIC
            return bitwise(f"r{rdn} & ~r{rm} & 0xFFFFFFFF", "bics")
        # MVN
        def g(i, mat, ctx, rdn=rdn, rm=rm):
            out = [f"v = (~r{rm}) & 0xFFFFFFFF"]
            out += self._nz(mat)
            out.append(f"tg += H(r{rdn} ^ v); r{rdn} = v")
            return out
        return _Insn(
            pc, "mvns", 1, g, writes=1, fw=_NZ,
            reads_regs=(rm,), writes_regs=(rdn,),
        )

    def _c_hi_ops(self, pc: int, insn: int) -> Optional[_Insn]:
        op = (insn >> 8) & 0x3
        rm = (insn >> 3) & 0xF
        rd = ((insn >> 4) & 0x8) | (insn & 0x7)
        if op == 0x3:  # BX / BLX: terminator
            return None
        pc4 = (pc + 4) & _MASK32
        if op == 0x0:  # ADD (no flags)
            if rd == 15:
                return None  # branch: terminator
            if rm == 15:
                def g(i, mat, ctx, rd=rd, pc4=pc4):
                    return [
                        f"v = (r{rd} + {pc4}) & 0xFFFFFFFF",
                        f"tg += H(r{rd} ^ v); r{rd} = v",
                    ]
                return _Insn(
                    pc, "add", 1, g, writes=1,
                    reads_regs=(rd,), writes_regs=(rd,),
                )

            def g(i, mat, ctx, rd=rd, rm=rm):
                return [
                    f"v = (r{rd} + r{rm}) & 0xFFFFFFFF",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "add", 1, g, writes=1,
                reads_regs=(rd, rm), writes_regs=(rd,),
            )
        if op == 0x1:  # CMP
            aexpr = str(pc4) if rd == 15 else f"r{rd}"
            bexpr = str(pc4) if rm == 15 else f"r{rm}"

            def g(i, mat, ctx, aexpr=aexpr, bexpr=bexpr):
                out = [
                    f"a = {aexpr}",
                    f"b = (~{bexpr}) & 0xFFFFFFFF",
                    "res = a + b + 1",
                ]
                if "c" in mat:
                    out.append("R.c = res > 0xFFFFFFFF")
                if "v" in mat:
                    out.append(
                        "sa = (a & 0x7FFFFFFF) - (a & 0x80000000)"
                    )
                    out.append(
                        "sb = (b & 0x7FFFFFFF) - (b & 0x80000000)"
                    )
                    out.append(
                        "sr = sa + sb + 1; R.v = (sr < -2147483648) | (2147483647 < sr)"
                    )
                if "n" in mat or "z" in mat:
                    out.append("v = res & 0xFFFFFFFF")
                out += self._nz(mat)
                return out
            reads = tuple(r for r in (rd, rm) if r != 15)
            return _Insn(pc, "cmp", 1, g, fw=_ALL_FLAGS, reads_regs=reads)
        # MOV (no flags)
        if rd == 15:
            return None  # branch: terminator
        if rm == 15:
            def g(i, mat, ctx, rd=rd, pc4=pc4):
                return [f"tg += H(r{rd} ^ {pc4}); r{rd} = {pc4}"]
            return _Insn(pc, "mov", 1, g, writes=1, writes_regs=(rd,))

        def g(i, mat, ctx, rd=rd, rm=rm):
            return [f"v = r{rm}", f"tg += H(r{rd} ^ v); r{rd} = v"]
        return _Insn(
            pc, "mov", 1, g, writes=1, reads_regs=(rm,), writes_regs=(rd,),
        )

    def _c_ldr_str_reg(self, pc: int, insn: int, db: int, de: int) -> _Insn:
        op = (insn >> 9) & 0x7
        rm = (insn >> 6) & 0x7
        rn = (insn >> 3) & 0x7
        rd = insn & 0x7
        addr = f"(r{rn} + r{rm}) & 0xFFFFFFFF"
        names = ["str", "strh", "strb", "ldrsb", "ldr", "ldrh", "ldrb",
                 "ldrsh"]
        mnem = names[op]
        # Legacy counts the mnemonic *before* the access in this format.
        if op == 0:  # STR
            def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
                if ctx.vector:
                    return [f"_i = {i}", f"write32({addr}, r{rd})"]
                return [
                    f"_i = {i}",
                    f"a = {addr}",
                    f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                    "    data_counters.writes += 1",
                    f"    o = a - {db}",
                    f"    data_bytes[o:o + 4] = r{rd}.to_bytes(4, 'little')",
                    "else:",
                    f"    write32(a, r{rd})",
                ] + ctx.genchk(i, indent=1)
            return _Insn(
                pc, "str", 2, g, stores=1, faultable=True, pm_on_fault=True,
                reads_regs=(rn, rm, rd),
            )
        if op in (1, 2):  # STRH / STRB
            helper = "write16" if op == 1 else "write8"

            def g(i, mat, ctx, rd=rd, addr=addr, helper=helper):
                return [
                    f"_i = {i}",
                    f"{helper}({addr}, r{rd})",
                ] + ctx.genchk(i, indent=0)
            return _Insn(
                pc, mnem, 2, g, stores=1, faultable=True, pm_on_fault=True,
                reads_regs=(rn, rm, rd),
            )
        if op == 4:  # LDR — hottest load form, inlined fast case
            def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
                if ctx.vector:
                    return [
                        f"_i = {i}",
                        f"v = read32({addr})",
                        f"tg += H(r{rd} ^ v); r{rd} = v",
                    ]
                return [
                    f"_i = {i}",
                    f"a = {addr}",
                    f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                    "    data_counters.reads += 1",
                    f"    o = a - {db}",
                    "    v = from_bytes(data_bytes[o:o + 4], 'little')",
                    "else:",
                    "    v = read32(a)",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldr", 2, g, loads=1, writes=1, faultable=True,
                pm_on_fault=True, reads_regs=(rn, rm), writes_regs=(rd,),
            )
        # LDRSB / LDRH / LDRB / LDRSH
        helper = {3: "read8", 5: "read16", 6: "read8", 7: "read16"}[op]
        sign = {3: (7, "0xFFFFFF00"), 7: (15, "0xFFFF0000")}

        def g(i, mat, ctx, rd=rd, addr=addr, helper=helper,
              ext=sign.get(op)):
            out = [f"_i = {i}", f"v = {helper}({addr})"]
            if ext is not None:
                out.append(f"v |= ((v >> {ext[0]}) & 1) * {ext[1]}")
            out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
            return out
        return _Insn(
            pc, mnem, 2, g, loads=1, writes=1, faultable=True,
            pm_on_fault=True, reads_regs=(rn, rm), writes_regs=(rd,),
        )

    def _c_ldr_str_imm(self, pc: int, insn: int, db: int, de: int) -> _Insn:
        byte = bool(insn & (1 << 12))
        load = bool(insn & (1 << 11))
        imm5 = (insn >> 6) & 0x1F
        rn = (insn >> 3) & 0x7
        rd = insn & 0x7
        offset = imm5 * (1 if byte else 4)
        addr = f"(r{rn} + {offset}) & 0xFFFFFFFF" if offset else f"r{rn}"
        if load and byte:
            def g(i, mat, ctx, rd=rd, addr=addr):
                return [
                    f"_i = {i}",
                    f"v = read8({addr})",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldrb", 2, g, loads=1, writes=1, faultable=True,
                reads_regs=(rn,), writes_regs=(rd,),
            )
        if load:
            def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
                if ctx.vector:
                    return [
                        f"_i = {i}",
                        f"v = read32({addr})",
                        f"tg += H(r{rd} ^ v); r{rd} = v",
                    ]
                return [
                    f"_i = {i}",
                    f"a = {addr}",
                    f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                    "    data_counters.reads += 1",
                    f"    o = a - {db}",
                    "    v = from_bytes(data_bytes[o:o + 4], 'little')",
                    "else:",
                    "    v = read32(a)",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldr", 2, g, loads=1, writes=1, faultable=True,
                reads_regs=(rn,), writes_regs=(rd,),
            )
        if byte:
            def g(i, mat, ctx, rd=rd, addr=addr):
                return [
                    f"_i = {i}",
                    f"write8({addr}, r{rd})",
                ] + ctx.genchk(i, indent=0)
            return _Insn(
                pc, "strb", 2, g, stores=1, faultable=True,
                reads_regs=(rn, rd),
            )

        def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
            if ctx.vector:
                return [f"_i = {i}", f"write32({addr}, r{rd})"]
            return [
                f"_i = {i}",
                f"a = {addr}",
                f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                "    data_counters.writes += 1",
                f"    o = a - {db}",
                f"    data_bytes[o:o + 4] = r{rd}.to_bytes(4, 'little')",
                "else:",
                f"    write32(a, r{rd})",
            ] + ctx.genchk(i, indent=1)
        return _Insn(
            pc, "str", 2, g, stores=1, faultable=True, reads_regs=(rn, rd),
        )

    def _c_ldrh_strh_imm(self, pc: int, insn: int) -> _Insn:
        load = bool(insn & (1 << 11))
        offset = ((insn >> 6) & 0x1F) * 2
        rn = (insn >> 3) & 0x7
        rd = insn & 0x7
        addr = f"(r{rn} + {offset}) & 0xFFFFFFFF" if offset else f"r{rn}"
        if load:
            def g(i, mat, ctx, rd=rd, addr=addr):
                return [
                    f"_i = {i}",
                    f"v = read16({addr})",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldrh", 2, g, loads=1, writes=1, faultable=True,
                reads_regs=(rn,), writes_regs=(rd,),
            )

        def g(i, mat, ctx, rd=rd, addr=addr):
            return [
                f"_i = {i}",
                f"write16({addr}, r{rd})",
            ] + ctx.genchk(i, indent=0)
        return _Insn(
            pc, "strh", 2, g, stores=1, faultable=True, reads_regs=(rn, rd),
        )

    def _c_ldr_str_sp(self, pc: int, insn: int, db: int, de: int) -> _Insn:
        load = bool(insn & (1 << 11))
        rd = (insn >> 8) & 0x7
        offset = (insn & 0xFF) * 4
        addr = f"(r13 + {offset}) & 0xFFFFFFFF" if offset else "r13"
        if load:
            def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
                if ctx.vector:
                    return [
                        f"_i = {i}",
                        f"v = read32({addr})",
                        f"tg += H(r{rd} ^ v); r{rd} = v",
                    ]
                return [
                    f"_i = {i}",
                    f"a = {addr}",
                    f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                    "    data_counters.reads += 1",
                    f"    o = a - {db}",
                    "    v = from_bytes(data_bytes[o:o + 4], 'little')",
                    "else:",
                    "    v = read32(a)",
                    f"tg += H(r{rd} ^ v); r{rd} = v",
                ]
            return _Insn(
                pc, "ldr", 2, g, loads=1, writes=1, faultable=True,
                reads_regs=(13,), writes_regs=(rd,),
            )

        def g(i, mat, ctx, rd=rd, addr=addr, db=db, de=de):
            if ctx.vector:
                return [f"_i = {i}", f"write32({addr}, r{rd})"]
            return [
                f"_i = {i}",
                f"a = {addr}",
                f"if {db} <= a and a + 4 <= {de} and not a & 3:",
                "    data_counters.writes += 1",
                f"    o = a - {db}",
                f"    data_bytes[o:o + 4] = r{rd}.to_bytes(4, 'little')",
                "else:",
                f"    write32(a, r{rd})",
            ] + ctx.genchk(i, indent=1)
        return _Insn(
            pc, "str", 2, g, stores=1, faultable=True, reads_regs=(13, rd),
        )

    def _c_extend(self, pc: int, insn: int) -> _Insn:
        op = (insn >> 6) & 0x3
        rm = (insn >> 3) & 0x7
        rd = insn & 0x7
        mnem = ["sxth", "sxtb", "uxth", "uxtb"][op]

        def g(i, mat, ctx, rd=rd, rm=rm, op=op):
            if op == 0:
                out = [
                    f"v = r{rm} & 0xFFFF",
                    "v |= ((v >> 15) & 1) * 0xFFFF0000",
                ]
            elif op == 1:
                out = [
                    f"v = r{rm} & 0xFF",
                    "v |= ((v >> 7) & 1) * 0xFFFFFF00",
                ]
            elif op == 2:
                out = [f"v = r{rm} & 0xFFFF"]
            else:
                out = [f"v = r{rm} & 0xFF"]
            out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
            return out
        return _Insn(
            pc, mnem, 1, g, writes=1, reads_regs=(rm,), writes_regs=(rd,),
        )

    def _c_rev(self, pc: int, insn: int) -> Optional[_Insn]:
        op = (insn >> 6) & 0x3
        rm = (insn >> 3) & 0x7
        rd = insn & 0x7
        if op == 2:  # undefined REV variant: terminator
            return None

        def g(i, mat, ctx, rd=rd, rm=rm, op=op):
            out = [f"a = r{rm}"]
            if op == 0:
                out.append(
                    "v = ((a & 0xFF) << 24) | ((a & 0xFF00) << 8)"
                    " | ((a >> 8) & 0xFF00) | ((a >> 24) & 0xFF)"
                )
            elif op == 1:
                out.append(
                    "v = ((a & 0xFF) << 8) | ((a >> 8) & 0xFF)"
                    " | ((a & 0xFF0000) << 8) | ((a >> 8) & 0xFF0000)"
                )
            else:  # REVSH
                out.append("v = ((a & 0xFF) << 8) | ((a >> 8) & 0xFF)")
                out.append("v |= ((v >> 15) & 1) * 0xFFFF0000")
            out.append(f"tg += H(r{rd} ^ v); r{rd} = v")
            return out
        return _Insn(
            pc, "rev", 1, g, writes=1, reads_regs=(rm,), writes_regs=(rd,),
        )


class _GenCtx:
    """Shared state handed to instruction generators."""

    def __init__(
        self,
        engine: SuperblockEngine,
        writeback: str,
        vector: bool = False,
    ) -> None:
        self.engine = engine
        self.writeback = writeback
        self.vector = vector

    def genchk(self, i: int, indent: int) -> List[str]:
        """Post-slow-path-store generation check (self-modifying code).

        Emitted after every store that may have reached the program
        region; when the block cache generation changed, the block
        exits early with the store's effects fully applied.

        Vector lanes cannot self-modify: stores into the program region
        raise inside the vector memory helpers (forcing a scalar
        bailout), so no generation check is emitted.
        """
        if self.vector:
            return []
        pad = "    " * indent
        return [
            pad + f"if eng._generation != {self.engine._generation}:",
            pad + f"    {self.writeback}",
            pad + f"    regs[15] = PCS[{i}] + 2",
            pad + "    tr.register_toggles += tg",
            pad + f"    eng._partial = SMC[{i}]",
            pad + "    return None",
        ]
