#!/usr/bin/env python3
"""Carbon-aware scheduling: *when* the 2 h/day runs matters.

Scenario: the paper fixes the usage window at 8-10 pm and notes that
CI_use(t) varies through the day (Eq. 6's indicator function).  On grids
with midday solar, shifting the same 2 hours of daily work can cut
operational carbon several-fold — which also moves the M3D-vs-all-Si
break-even lifetime.

Run:  python examples/carbon_aware_scheduling.py
"""

from repro.analysis import build_case_study
from repro.core.grid_profiles import (
    best_usage_window,
    get_daily_profile,
    scheduling_benefit,
    window_sweep,
)
from repro.core.operational import (
    OperationalCarbonModel,
    UsageScenario,
)


def main() -> None:
    print("Mean carbon intensity of a 2-hour window vs start time")
    print("=" * 64)
    profiles = {name: get_daily_profile(name) for name in ("us", "solar-heavy", "coal")}
    header = f"{'start':>6s}" + "".join(f"{n:>14s}" for n in profiles)
    print(header)
    sweeps = {n: dict(window_sweep(p)) for n, p in profiles.items()}
    for start in range(0, 24, 2):
        row = f"{start:>4d}h "
        for name in profiles:
            row += f"{sweeps[name][float(start)]:>13.0f} "
        print(row)

    print()
    print("Best 2-hour window per grid (vs the paper's 8-10 pm):")
    print("-" * 64)
    for name, profile in profiles.items():
        (start, end), ci = best_usage_window(profile)
        factor = scheduling_benefit(profile)
        print(
            f"{name:12s} best {start:4.1f}-{end:4.1f} h at {ci:5.0f} g/kWh "
            f"-> {1 - 1/factor:5.1%} operational-carbon saving"
        )

    print()
    print("Effect on the M3D break-even lifetime (solar-heavy grid)")
    print("-" * 64)
    case = build_case_study()
    profile = profiles["solar-heavy"]
    for label, window in (
        ("evening (paper's 8-10 pm)", (20.0, 22.0)),
        ("midday (carbon-aware)", best_usage_window(profile)[0]),
    ):
        results = {}
        for key, system in (("all-Si", case.all_si), ("M3D", case.m3d)):
            model = OperationalCarbonModel(
                system.total_carbon.operational.power, profile
            )
            per_month = model.carbon_per_month_g(
                UsageScenario(1.0, daily_windows=(window,))
            )
            results[key] = (system.embodied_per_good_die_g, per_month)
        (emb_si, op_si), (emb_m3d, op_m3d) = results["all-Si"], results["M3D"]
        crossover = (emb_m3d - emb_si) / (op_si - op_m3d)
        print(
            f"{label:28s} op carbon {op_si*12:5.2f} (Si) / {op_m3d*12:5.2f} "
            f"(M3D) g/yr -> crossover {crossover:6.1f} months"
        )
    print(
        "\nCleaner use-phase electricity stretches the embodied-carbon "
        "payback: on solar-rich grids run at midday, the M3D design "
        "needs a much longer lifetime to win — embodied carbon becomes "
        "the whole story."
    )


if __name__ == "__main__":
    main()
