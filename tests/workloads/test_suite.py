"""Workload suite tests: self-checks against golden models.

Heavy configurations are scaled down; the full paper-length matmul-int
run (20,047,348 cycles, ~1 minute) lives in the benchmark harness.
"""

import pytest

from repro.errors import ReproError
from repro.workloads import all_workloads, get_workload, run_workload
from repro.workloads import (
    crc32, edn, fib, matmul_int, primecount, sort, st, ud,
)
from repro.workloads.suite import Workload


class TestRegistry:
    def test_eight_workloads(self):
        loads = all_workloads()
        assert set(loads) == {
            "matmul-int", "crc32", "edn", "primecount", "fib", "ud",
            "st", "sort",
        }

    def test_get_workload(self):
        w = get_workload("crc32")
        assert w.name == "crc32"
        with pytest.raises(ReproError, match="unknown workload"):
            get_workload("doom")

    def test_headline_workload_is_paper_length(self):
        """The registered matmul-int must predict the paper's count."""
        assert matmul_int.predicted_cycles() == matmul_int.PAPER_CYCLE_COUNT
        assert matmul_int.PAPER_CYCLE_COUNT == 20_047_348


class TestMatmulInt:
    def test_small_config_correct(self):
        w = matmul_int.workload(repeats=1, tune=1, pads=0)
        result = run_workload(w)
        assert result.correct

    def test_predicted_cycles_match_measured(self):
        for repeats, tune, pads in [(1, 1, 0), (2, 5, 3)]:
            w = matmul_int.workload(repeats=repeats, tune=tune, pads=pads)
            result = run_workload(w)
            assert result.cycles == matmul_int.predicted_cycles(
                repeats, tune, pads
            )

    def test_golden_checksum_stable(self):
        assert matmul_int.golden_checksum() == matmul_int.golden_checksum()

    def test_access_profile_shape(self):
        """matmul-int is fetch- and load-dominated, few stores."""
        result = run_workload(matmul_int.workload(repeats=1, tune=1, pads=0))
        profile = result.access_profile()
        assert 0.5 < profile.program_reads_per_cycle < 1.0
        assert profile.data_reads_per_cycle > 5 * profile.data_writes_per_cycle

    def test_failed_selfcheck_raises(self):
        w = matmul_int.workload(repeats=1, tune=1, pads=0)
        bad = Workload(w.name, w.description, w.source, expected_checksum=0)
        with pytest.raises(ReproError, match="self-check"):
            run_workload(bad)


class TestOtherWorkloads:
    def test_crc32_matches_binascii(self):
        result = run_workload(crc32.workload(length=256, repeats=1))
        import binascii

        assert result.checksum == crc32.golden_checksum(256)
        # golden model itself is binascii-backed
        assert crc32.golden_checksum(256) == binascii.crc32(
            crc32._lcg_buffer(256)
        )

    def test_edn(self):
        result = run_workload(edn.workload(length=64, taps=8, repeats=2))
        assert result.correct

    def test_primecount_value(self):
        result = run_workload(primecount.workload(limit=1000, repeats=1))
        assert result.checksum == 168  # primes below 1000

    def test_fib(self):
        result = run_workload(fib.workload(k=32, repeats=2))
        assert result.correct

    def test_ud_software_divide(self):
        result = run_workload(ud.workload(pairs=32, repeats=1))
        assert result.correct

    def test_st_statistics(self):
        result = run_workload(st.workload(length=64, repeats=2))
        assert result.correct

    def test_sort_is_store_heavy(self):
        """Sorting moves data: the highest store rate in the suite."""
        sort_result = run_workload(sort.workload(length=48, repeats=1))
        matmul_result = run_workload(
            matmul_int.workload(repeats=1, tune=1, pads=0)
        )
        assert sort_result.correct
        sort_writes = sort_result.data_writes / sort_result.cycles
        matmul_writes = matmul_result.data_writes / matmul_result.cycles
        assert sort_writes > 5 * matmul_writes

    def test_sort_order_sensitive_checksum(self):
        """The position-weighted checksum catches an unsorted array."""
        keys = sort._lcg_keys(16)
        sorted_sum = sum((i + 1) * v for i, v in enumerate(sorted(keys)))
        unsorted_sum = sum((i + 1) * v for i, v in enumerate(keys))
        assert sorted_sum != unsorted_sum

    def test_all_have_reasonable_cpi(self):
        """Cortex-M0 CPI on integer code sits between 1 and ~2."""
        configs = [
            matmul_int.workload(repeats=1, tune=1, pads=0),
            crc32.workload(length=128, repeats=1),
            edn.workload(length=64, taps=8, repeats=1),
            primecount.workload(limit=512, repeats=1),
            fib.workload(k=24, repeats=1),
            ud.workload(pairs=16, repeats=1),
        ]
        for w in configs:
            result = run_workload(w)
            assert 1.0 <= result.cpi <= 2.2, w.name

    def test_activity_factors_in_range(self):
        for w in (
            matmul_int.workload(repeats=1, tune=1, pads=0),
            crc32.workload(length=128, repeats=1),
        ):
            result = run_workload(w)
            assert 0.0 < result.activity_factor < 0.3
