"""Tests for the CNT variation / yield model."""

import math

import pytest

from repro.devices.cnfet import CnfetQuality
from repro.devices.cnt_variation import CntVariationModel, _poisson_cdf
from repro.errors import ReproError

#: The 64 kB macro's CNFET-cell count (two macros counted at system level).
MACRO_BITS = 64 * 1024 * 8


class TestPoissonCdf:
    def test_zero_rate(self):
        assert _poisson_cdf(0, 0.0) == 1.0

    def test_known_value(self):
        # P(X <= 1) for lam = 1: 2/e.
        assert _poisson_cdf(1, 1.0) == pytest.approx(2 / math.e, rel=1e-9)

    def test_monotone_in_k(self):
        values = [_poisson_cdf(k, 3.0) for k in range(8)]
        assert values == sorted(values)


class TestFailureProbabilities:
    def test_better_removal_fewer_shorts(self):
        good = CntVariationModel(quality=CnfetQuality(0.99999))
        bad = CntVariationModel(quality=CnfetQuality(0.999))
        assert good.short_failure_probability(0.1) < bad.short_failure_probability(0.1)

    def test_wider_device_more_shorts(self):
        model = CntVariationModel()
        assert model.short_failure_probability(0.2) > model.short_failure_probability(0.05)

    def test_open_failures_small_but_nonzero_at_normal_density(self):
        """~17 semiconducting tubes expected: opens are rare (~1e-5 per
        FET) but NOT negligible at megabit scale — the open channel is
        why arrays need redundancy even with perfect metallic removal."""
        model = CntVariationModel()
        assert 1e-7 < model.open_failure_probability(0.1) < 1e-4

    def test_open_failures_matter_at_low_density(self):
        sparse = CntVariationModel(tubes_per_um=20.0)
        assert sparse.open_failure_probability(0.1) > 0.1

    def test_cell_failure_combines_fets(self):
        model = CntVariationModel()
        one = model.cell_failure_probability(0.1, fets_per_cell=1)
        two = model.cell_failure_probability(0.1, fets_per_cell=2)
        assert two == pytest.approx(1 - (1 - one) ** 2, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ReproError):
            CntVariationModel(tubes_per_um=0.0)
        with pytest.raises(ReproError):
            CntVariationModel().short_failure_probability(-1.0)
        with pytest.raises(ReproError):
            CntVariationModel().cell_failure_probability(0.1, fets_per_cell=0)


class TestArrayYield:
    def test_yield_decreases_with_bits(self):
        model = CntVariationModel(quality=CnfetQuality(0.99999))
        small = model.array_yield(1024, 0.1)
        large = model.array_yield(MACRO_BITS, 0.1)
        assert large < small

    def test_paper_scale_yield_requires_extreme_removal(self):
        """With 99.99% removal, a 64 kB CNFET array yields ~0; even
        ref [29]-level removal needs redundancy to mop up open failures
        — which is why the paper's conservative 50% M3D yield is
        well-motivated."""
        baseline = CntVariationModel(quality=CnfetQuality(0.9999))
        assert baseline.array_yield(MACRO_BITS, 0.1) < 0.01
        heroic = CntVariationModel(quality=CnfetQuality(0.99999999))
        # Metallic shorts solved, but opens still kill the bare array...
        assert heroic.array_yield(MACRO_BITS, 0.1) < 0.5
        # ...until spare columns absorb them.
        assert heroic.array_yield(
            MACRO_BITS, 0.1, spare_fraction=0.01
        ) > 0.99

    def test_redundancy_rescues_yield(self):
        model = CntVariationModel(quality=CnfetQuality(0.99999))
        bare = model.array_yield(MACRO_BITS, 0.1)
        spared = model.array_yield(MACRO_BITS, 0.1, spare_fraction=0.01)
        assert spared > bare

    def test_required_removal_inversion(self):
        """The solver inverts the *short-failure* channel; at high tube
        density (opens negligible) it round-trips through array_yield."""
        dense = CntVariationModel(
            tubes_per_um=400.0, min_semiconducting_tubes=2
        )
        target = 0.5
        efficiency = dense.required_removal_efficiency(
            MACRO_BITS, 0.1, target
        )
        achieved = CntVariationModel(
            tubes_per_um=400.0,
            min_semiconducting_tubes=2,
            quality=CnfetQuality(efficiency),
        ).array_yield(MACRO_BITS, 0.1)
        assert achieved == pytest.approx(target, rel=0.02)

    def test_required_removal_bounds(self):
        model = CntVariationModel()
        assert 0.0 <= model.required_removal_efficiency(100, 0.1, 0.9) <= 1.0
        with pytest.raises(ReproError):
            model.required_removal_efficiency(100, 0.1, 1.5)

    def test_validation(self):
        model = CntVariationModel()
        with pytest.raises(ReproError):
            model.array_yield(0, 0.1)
        with pytest.raises(ReproError):
            model.array_yield(100, 0.1, spare_fraction=1.0)
