"""Uncertainty-sweep benchmark: writes the ``BENCH_sweep.json`` artifact.

Tracks the batched Monte Carlo speedup over the legacy per-sample loop,
the chunked-parallel and sweep-cache paths, and the full paper-artifact
pipeline wall time, so sweep performance is visible across PRs.
"""

import json


def test_bench_sweep(output_dir):
    from repro.runtime.bench_sweep import run_sweep_bench

    path = output_dir / "BENCH_sweep.json"
    report = run_sweep_bench(output_path=path)

    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["schema"] == "bench-sweep/1"

    mc = data["monte_carlo"]
    assert mc["n_samples"] == 1000
    assert mc["grid_points"] == 1600  # the Fig. 6a 40x40 grid

    # The acceptance gate: the batched engine is >= 5x faster than the
    # legacy per-sample loop at n_samples=1000 on the Fig. 6a grid and
    # bit-identical to it under a fixed seed — on every path.
    assert mc["bit_identical"]
    assert mc["parallel_bit_identical"]
    assert mc["speedup_batched_over_legacy"] >= 5.0

    cache = data["sweep_cache"]
    assert cache["hit_was_hit"]
    assert cache["hit_bit_identical"]
    assert cache["hit_wall_seconds"] < cache["miss_wall_seconds"]

    pipeline = data["artifact_pipeline"]
    assert pipeline["artifact_count"] == 11
    assert pipeline["total_wall_seconds"] < 60.0
    assert set(pipeline["per_artifact_wall_seconds"]) == {
        "table1", "table2", "fig2c", "fig2d", "fig4_energy",
        "fig4_critical_path", "fig5", "fig6a", "fig6b", "tornado",
        "monte_carlo_map",
    }

    print(json.dumps(report["monte_carlo"], indent=2))
