"""CNFET compact-model parameters (VS-CNFET, reference [27]).

Carbon-nanotube FETs (Table I):

- (+) high I_EFF: ballistic transport gives a high virtual-source
  velocity, enabling high-performance circuits [26];
- (-) subject to metallic CNTs: tubes with E_g ~ 0 conduct regardless of
  gate bias, raising I_OFF unless removed [28], [29];
- (+) BEOL-compatible: deposited at low temperature (wet incubation).

Semiconducting-tube subthreshold behaviour follows the VS exponential;
the metallic-tube population adds a gate-independent leakage floor
proportional to the *unremoved* metallic fraction, modeled by
:class:`CnfetQuality`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.devices.fet import Polarity
from repro.devices.virtual_source import VirtualSourceFET, VSParameters

#: As-grown fraction of metallic tubes (roughly 1/3 of chiralities).
AS_GROWN_METALLIC_FRACTION = 0.33

#: Conduction of a fully metallic CNT film per um of device width at
#: V_DS = V_DD (A/um): sets the leakage scale before removal.
METALLIC_FILM_CURRENT_A_PER_UM = 4.0e-5


@dataclass(frozen=True)
class CnfetQuality:
    """CNT process quality: how well metallic CNTs were removed.

    Attributes:
        metallic_removal_efficiency: Fraction of metallic tubes removed
            (0.9999 is the highly-scaled removal of ref [29]).
    """

    metallic_removal_efficiency: float = 0.9999

    def __post_init__(self) -> None:
        if not (0.0 <= self.metallic_removal_efficiency <= 1.0):
            raise ValueError(
                "removal efficiency must be in [0, 1], got "
                f"{self.metallic_removal_efficiency}"
            )

    @property
    def remaining_metallic_fraction(self) -> float:
        return AS_GROWN_METALLIC_FRACTION * (
            1.0 - self.metallic_removal_efficiency
        )

    @property
    def leakage_floor_a_per_um(self) -> float:
        """Metallic-tube leakage floor added to semiconducting I_OFF."""
        return (
            self.remaining_metallic_fraction * METALLIC_FILM_CURRENT_A_PER_UM
        )


#: Semiconducting-network VS parameters: 30 nm gate length (Sec. II-C),
#: 1-2 nm diameter tubes (E_g 0.43-0.85 eV), slightly soft subthreshold.
_CNFET_BASE = VSParameters(
    vt0_v=0.26,
    n_ss=1.18,  # ~70 mV/decade
    dibl_v_per_v=0.04,
    c_inv_f_per_um2=1.6e-14,
    l_gate_um=0.030,
    v_x0_cm_per_s=2.2e7,  # ballistic-transport advantage over Si
    mobility_cm2_per_vs=1200.0,
    c_gate_f_per_um=0.9e-15,
    vdd_v=0.7,
)


def cnfet_params(
    quality: "CnfetQuality | None" = None, vt_shift_v: float = 0.0
) -> VSParameters:
    """VS parameters with the metallic-CNT leakage floor applied."""
    q = quality if quality is not None else CnfetQuality()
    return replace(
        _CNFET_BASE,
        vt0_v=_CNFET_BASE.vt0_v + vt_shift_v,
        i_leak_floor_a_per_um=q.leakage_floor_a_per_um,
    )


def cnfet_nfet(
    name: str,
    width_um: float,
    quality: "CnfetQuality | None" = None,
    vt_shift_v: float = 0.0,
) -> VirtualSourceFET:
    """An n-type CNFET instance."""
    return VirtualSourceFET(
        name, Polarity.NMOS, width_um, cnfet_params(quality, vt_shift_v)
    )


def cnfet_pfet(
    name: str,
    width_um: float,
    quality: "CnfetQuality | None" = None,
    vt_shift_v: float = 0.0,
) -> VirtualSourceFET:
    """A p-type CNFET instance (CNFETs are naturally ambipolar; doped
    contacts set polarity [10])."""
    return VirtualSourceFET(
        name, Polarity.PMOS, width_um, cnfet_params(quality, vt_shift_v)
    )
