"""Latch-type sense amplifier, simulated at the circuit level.

The eDRAM periphery (Fig. 3b) senses the read bitline with a
cross-coupled latch SA.  This module builds the actual transistor
netlist — two cross-coupled Si inverters with a footed enable — and
measures, via transient simulation:

- sense delay vs input differential (the regeneration time);
- the minimum differential that resolves correctly within the cycle
  budget (sense margin), which sets how far the RBL must discharge
  before the sense-enable fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import si_nfet, si_pfet
from repro.errors import AnalysisError
from repro.spice import (
    Capacitor,
    Circuit,
    Dc,
    FetElement,
    Pulse,
    VoltageSource,
    transient,
)

VDD = 0.7

#: Internal node capacitance of the latch (device + wire).
LATCH_NODE_CAP_F = 2e-15


def build_senseamp(
    v_plus: float,
    v_minus: float,
    enable_delay_s: float = 0.1e-9,
) -> Circuit:
    """Cross-coupled latch SA precharged to the input differential.

    Nodes ``outp``/``outn`` start at the sampled bitline levels
    (v_plus/v_minus); the tail enable then fires and the latch
    regenerates the differential to full rail.
    """
    circuit = Circuit("senseamp")
    circuit.add(VoltageSource("vdd", "vdd", "0", Dc(VDD)))
    circuit.add(
        VoltageSource(
            "ven",
            "en",
            "0",
            Pulse(0.0, VDD, delay=enable_delay_s, rise=10e-12, width=1e-6),
        )
    )
    # Cross-coupled inverters: outp <-> outn.
    circuit.add(FetElement("mpp", si_pfet("pp", 0.2), "outp", "outn", "vdd"))
    circuit.add(FetElement("mnp", si_nfet("np", 0.1), "outp", "outn", "tail"))
    circuit.add(FetElement("mpn", si_pfet("pn", 0.2), "outn", "outp", "vdd"))
    circuit.add(FetElement("mnn", si_nfet("nn", 0.1), "outn", "outp", "tail"))
    # Footed tail: NMOS enable to ground.
    circuit.add(FetElement("men", si_nfet("en", 0.3), "tail", "en", "0"))
    circuit.add(Capacitor("cp", "outp", "0", LATCH_NODE_CAP_F))
    circuit.add(Capacitor("cn", "outn", "0", LATCH_NODE_CAP_F))
    # Record intended initial conditions on the object for the runner.
    circuit.initial_conditions = {  # type: ignore[attr-defined]
        "outp": v_plus,
        "outn": v_minus,
        "tail": 0.0,
    }
    return circuit


@dataclass(frozen=True)
class SenseResult:
    """Outcome of one sensing event."""

    resolved_correctly: bool
    sense_delay_s: float
    final_outp_v: float
    final_outn_v: float


def simulate_sense(
    differential_v: float,
    common_mode_v: float = 0.6,
    t_stop: float = 2e-9,
    dt: float = 2e-12,
    enable_delay_s: float = 0.1e-9,
) -> SenseResult:
    """Sense a differential: outp starts above outn by ``differential_v``.

    Returns the regeneration outcome; ``sense_delay_s`` is measured from
    the enable edge to outn falling through VDD/2 (for a positive
    differential, outp must win).
    """
    if differential_v <= 0:
        raise AnalysisError("differential must be > 0 (swap inputs instead)")
    v_plus = min(common_mode_v + differential_v / 2, VDD)
    v_minus = common_mode_v - differential_v / 2
    if v_minus < 0:
        raise AnalysisError("common mode too low for this differential")
    circuit = build_senseamp(v_plus, v_minus, enable_delay_s)
    result = transient(
        circuit,
        t_stop=t_stop,
        dt=dt,
        initial_conditions=circuit.initial_conditions,  # type: ignore[attr-defined]
        use_dc_start=False,
    )
    outp = result.voltage("outp")
    outn = result.voltage("outn")
    final_p, final_n = outp.final(), outn.final()
    resolved = final_p > 0.9 * VDD and final_n < 0.1 * VDD
    if resolved:
        t_en = enable_delay_s
        crossings = [
            t for t in outn.crossings(VDD / 2, rising=False) if t >= t_en
        ]
        delay = (crossings[0] - t_en) if crossings else float("inf")
    else:
        delay = float("inf")
    return SenseResult(
        resolved_correctly=resolved,
        sense_delay_s=delay,
        final_outp_v=final_p,
        final_outn_v=final_n,
    )


def minimum_sense_differential(
    budget_s: float = 0.4e-9,
    lo_v: float = 0.001,
    hi_v: float = 0.3,
    iterations: int = 8,
) -> float:
    """Smallest differential the SA resolves within the time budget.

    Bisection over the input differential; this is the margin the RBL
    discharge must develop before sense-enable.
    """
    if budget_s <= 0:
        raise AnalysisError("budget must be > 0")

    def ok(diff: float) -> bool:
        outcome = simulate_sense(diff)
        return outcome.resolved_correctly and outcome.sense_delay_s <= budget_s

    if not ok(hi_v):
        raise AnalysisError(
            f"even a {hi_v:.3f} V differential misses the {budget_s*1e9:.2f} ns budget"
        )
    lo, hi = lo_v, hi_v
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if ok(mid):
            hi = mid
        else:
            lo = mid
    return hi
