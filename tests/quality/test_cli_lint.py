"""End-to-end `repro lint` CLI behavior."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

BAD_SNIPPET = textwrap.dedent(
    """
    import functools
    import os
    import time

    def total_j(a_j, b_kwh):
        return a_j + b_kwh

    @functools.lru_cache()
    def cached(x):
        return os.environ.get("MODE", "") + x

    stamp = time.time()
    check = stamp == 0.25

    def eol_overhead(energy_j, lifetime_months):
        eol = lifetime_months
        total = energy_j + eol
        mode = energy_j
        mode = lifetime_months
        return total

    def fan_out(payloads):
        return map_parallel(lambda p: p, payloads)

    import asyncio
    import threading

    async def handler():
        time.sleep(0.1)

    async def spawn(work):
        asyncio.create_task(work())

    class Registry:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []

        def add(self, item):
            with self._lock:
                self._items.append(item)

        def reset(self):
            self._items = []

    def set_total(parts):
        costs = {p.cost for p in parts}
        total_j = sum(costs)
        return total_j

    import math

    def scalar_helper(x_j: float) -> float:
        return math.sqrt(x_j)

    def clamp_ratio(ratio: float) -> float:
        return 1.0 if ratio > 1.0 else ratio

    def fold_lanes(samples: "np.ndarray") -> float:
        return sum(samples)

    def drift_pipeline(power_w: float) -> float:
        return scalar_helper(power_w * 2.0)
    """
)

ALL_RULES = (
    "RPL001",
    "RPL002",
    "RPL003",
    "RPL004",
    "RPL005",
    "RPL006",
    "RPL007",
    "RPL008",
    "RPL009",
    "RPL010",
    "RPL011",
    "RPL012",
    "RPL013",
    "RPL014",
    "RPL015",
    "RPL016",
)


@pytest.fixture
def bad_tree(tmp_path):
    core = tmp_path / "core"
    core.mkdir()
    (core / "model.py").write_text(BAD_SNIPPET, encoding="utf-8")
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        '__all__ = ["missing"]\n', encoding="utf-8"
    )
    return tmp_path


@pytest.mark.smoke
class TestLintCli:
    def test_repo_is_clean_with_committed_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_injected_violations_fail_each_rule(self, capsys, monkeypatch,
                                                bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "pkg"]) == 1
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_each_rule_fails_in_isolation(self, capsys, monkeypatch,
                                          bad_tree):
        monkeypatch.chdir(bad_tree)
        for rule in ALL_RULES:
            assert main(["lint", "core", "pkg", "--rules", rule]) == 1, rule
            assert rule in capsys.readouterr().out

    def test_json_format(self, capsys, monkeypatch, bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["counts_by_rule"]["RPL001"] >= 1
        assert all(
            set(f) >= {"rule", "path", "line", "message", "fingerprint"}
            for f in payload["findings"]
        )

    def test_rule_subset_selection(self, capsys, monkeypatch, bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--rules", "RPL004"]) == 1
        out = capsys.readouterr().out
        assert "RPL004" in out and "RPL001" not in out

    def test_unknown_rule_rejected(self, capsys, monkeypatch, bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--rules", "RPL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_rejected(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "does-not-exist"]) == 2

    def test_write_baseline_then_clean(self, capsys, monkeypatch, bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--write-baseline"]) == 0
        assert (bad_tree / "repro-lint-baseline.json").is_file()
        capsys.readouterr()
        assert main(["lint", "core"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_no_baseline_flag_unsuppresses(self, capsys, monkeypatch,
                                           bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--write-baseline"]) == 0
        assert main(["lint", "core", "--no-baseline"]) == 1

    def test_witness_chain_rendered_in_output(self, capsys, monkeypatch,
                                              bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--rules", "RPL006"]) == 1
        out = capsys.readouterr().out
        assert "'eol' = lifetime_months" in out
        assert "[line" in out and "<-" in out

    def test_parallel_jobs_match_serial(self, capsys, monkeypatch,
                                        bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "pkg", "--format", "json",
                     "--jobs", "1"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert main(["lint", "core", "pkg", "--format", "json",
                     "--jobs", "2"]) == 1
        parallel = json.loads(capsys.readouterr().out)
        assert serial == parallel


@pytest.mark.smoke
class TestSarifFormat:
    def test_sarif_log_shape(self, capsys, monkeypatch, bad_tree):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "pkg", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert set(ALL_RULES) <= declared
        assert run["results"], "expected findings from the bad tree"
        result_rules = {r["ruleId"] for r in run["results"]}
        assert result_rules <= declared

    def test_sarif_results_carry_location_and_fingerprint(
        self, capsys, monkeypatch, bad_tree
    ):
        monkeypatch.chdir(bad_tree)
        assert main(["lint", "core", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        for result in log["runs"][0]["results"]:
            (location,) = result["locations"]
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert location["physicalLocation"]["artifactLocation"][
                "uri"
            ].endswith(".py")
            assert result["partialFingerprints"][
                "reproLintFingerprint/v1"
            ]

    def test_sarif_clean_tree_has_no_results(self, capsys, monkeypatch,
                                             tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "ok.py", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []


@pytest.mark.smoke
class TestExplain:
    def test_explain_prints_rule_rationale(self, capsys):
        for rule in ALL_RULES:
            assert main(["lint", "--explain", rule]) == 0
            out = capsys.readouterr().out
            assert out.startswith(rule), rule
            assert len(out.splitlines()) > 3, rule

    def test_explain_is_case_insensitive(self, capsys):
        assert main(["lint", "--explain", "rpl006"]) == 0
        assert capsys.readouterr().out.startswith("RPL006")

    def test_explain_unknown_rule_rejected(self, capsys):
        assert main(["lint", "--explain", "RPL999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explain_all_lists_every_rule(self, capsys):
        assert main(["lint", "--explain", "all"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(ALL_RULES)
        for rule, line in zip(ALL_RULES, lines):
            assert line.startswith(rule)
            assert len(line) > len(rule) + 10  # id + one-line summary
