"""Inline ``# repro-lint:`` pragma parsing.

Two pragma forms are recognized, both attached to the physical line
they appear on:

- ``# repro-lint: disable=RPL001,RPL004`` — suppress the named rules
  on this line (``disable=all`` suppresses every rule);
- ``# repro-lint: cache-pure`` — opt the ``def`` on this line into
  RPL003 cache-purity checking even without an ``lru_cache`` decorator
  (used for functions whose results feed a
  :class:`~repro.runtime.cache.SweepCache`).

Pragmas ride on comments, so they survive ``ast`` parsing untouched;
the engine scans raw source lines once per file and hands rules a
:class:`PragmaMap`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence, Set

#: Token accepted by ``disable=`` meaning "every rule".
ALL_RULES = "all"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<body>[A-Za-z0-9_=,\- ]+)"
)
_DISABLE_RE = re.compile(r"disable\s*=\s*(?P<rules>[A-Za-z0-9_, ]+)")


@dataclass(frozen=True)
class PragmaMap:
    """Per-line pragma state for one source file (1-based line numbers)."""

    disabled: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    cache_pure_lines: FrozenSet[int] = frozenset()

    def is_disabled(self, rule: str, line: int) -> bool:
        rules = self.disabled.get(line)
        if rules is None:
            return False
        return ALL_RULES in rules or rule in rules

    def is_cache_pure(self, line: int) -> bool:
        return line in self.cache_pure_lines


def parse_pragmas(source_lines: Sequence[str]) -> PragmaMap:
    """Scan raw source lines for ``# repro-lint:`` pragmas."""
    disabled: Dict[int, FrozenSet[str]] = {}
    cache_pure: Set[int] = set()
    for lineno, text in enumerate(source_lines, start=1):
        if "repro-lint" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        body = match.group("body")
        if "cache-pure" in body:
            cache_pure.add(lineno)
        dis = _DISABLE_RE.search(body)
        if dis is not None:
            rules = frozenset(
                token.strip()
                for token in dis.group("rules").split(",")
                if token.strip()
            )
            if rules:
                disabled[lineno] = rules
    return PragmaMap(disabled=disabled, cache_pure_lines=frozenset(cache_pure))
