"""End-to-end integration tests: the full flow, cross-checked by hand.

These tests rebuild the paper's chain with independent arithmetic at
every joint — if any module's contract drifts, the mismatch surfaces
here even when the module's own tests still pass.
"""


import pytest

from repro import units
from repro.analysis import build_case_study
from repro.analysis.case_study import build_m3d_system
from repro.core.operational import UsageScenario
from repro.workloads import matmul_int
from repro.workloads.suite import run_workload


@pytest.fixture(scope="module")
def case():
    return build_case_study()


class TestCrossModuleConsistency:
    def test_equation2_by_hand(self, case):
        """C_embodied = (MPA + GPA + CI_fab*EPA_f) * Area, recomputed
        from raw pieces."""
        system = case.m3d
        result = system.embodied
        area = result.wafer_area_cm2
        by_hand = (
            result.mpa_g_per_cm2
            + result.gpa_g_per_cm2
            + 380.0 * (result.epa_kwh_per_wafer * 1.4) / area
        ) * area
        assert result.per_wafer_g == pytest.approx(by_hand, rel=1e-12)

    def test_equation5_by_hand(self, case):
        system = case.all_si
        by_hand = system.embodied.per_wafer_g / (
            system.dies_per_wafer * system.yield_fraction
        )
        assert system.embodied_per_good_die_g == pytest.approx(
            by_hand, rel=1e-12
        )

    def test_equation8_by_hand(self, case):
        """C_op = CI * P * t_life * (2/24), recomputed."""
        system = case.m3d
        power = system.operational_power_w
        t_life = units.months_to_seconds(24.0)
        by_hand = 380.0 * power * t_life * (2.0 / 24.0) / units.KWH
        measured = system.total_carbon.breakdown(24.0).operational_g
        assert measured == pytest.approx(by_hand, rel=1e-9)

    def test_power_matches_energy_rows(self, case):
        """Eq. 6: P = (E_core + E_mem) / T_clk."""
        for system in (case.all_si, case.m3d):
            by_hand = (
                system.core.energy_per_cycle_j
                + system.memory_energy_per_cycle_j
            ) * system.clock_hz
            assert system.operational_power_w == pytest.approx(
                by_hand, rel=1e-12
            )

    def test_tcdp_by_hand(self, case):
        system = case.m3d
        t_exec = 20_047_348 / 500e6
        by_hand = system.total_carbon.total_g(24.0) * t_exec
        assert system.tcdp(24.0) == pytest.approx(by_hand, rel=1e-12)

    def test_die_area_consistency(self, case):
        """Floorplan dims, die geometry, and area all agree."""
        for system in (case.all_si, case.m3d):
            assert system.die.die_height_mm == pytest.approx(
                system.floorplan.height_mm
            )
            assert system.die.die_width_mm == pytest.approx(
                system.floorplan.width_mm
            )
            block_area = sum(
                b.area_mm2 for b in system.floorplan.blocks
            )
            assert system.floorplan.area_mm2 == pytest.approx(
                block_area, rel=1e-9
            )

    def test_memory_area_is_two_macros_plus_core(self, case):
        for system in (case.all_si, case.m3d):
            expected = (
                2 * system.memory_macro.area_um2 + system.core_area_um2
            )
            assert system.floorplan.area_mm2 * 1e6 == pytest.approx(
                expected, rel=1e-9
            )


class TestFullFlowVariants:
    def test_with_timing_verification(self):
        """The complete pipeline with SPICE timing validation on."""
        system = build_m3d_system(verify_timing=True)
        assert system.timing is not None
        assert system.timing.meets_clock(500e6)
        assert system.embodied_per_good_die_g == pytest.approx(3.63, abs=0.02)

    def test_real_iss_profile_roundtrip(self):
        """Feed a real ISS run's profile through the whole carbon flow;
        the result must match the default-profile build (the defaults
        ARE the matmul-int measurements)."""
        result = run_workload(matmul_int.workload(repeats=2, tune=1, pads=0))
        system = build_m3d_system(profile=result.access_profile())
        default = build_m3d_system()
        assert system.operational_power_w == pytest.approx(
            default.operational_power_w, rel=0.005
        )

    def test_lifetime_sweep_consistency(self):
        """tC(t) is affine in lifetime: slope = per-month op carbon."""
        system = build_m3d_system(scenario=UsageScenario(36.0))
        t6 = system.total_carbon.total_g(6.0)
        t18 = system.total_carbon.total_g(18.0)
        t30 = system.total_carbon.total_g(30.0)
        assert t30 - t18 == pytest.approx(t18 - t6, rel=1e-9)

    def test_headline_chain(self, case):
        """The abstract's three claims, end to end in one place:
        1.31x per wafer, 1.02x carbon efficiency, retention >1000 s."""
        from repro.analysis.figures import fig2c_embodied_per_wafer
        from repro.edram.bitcell import m3d_bitcell
        from repro.edram.retention import retention_time_s

        assert fig2c_embodied_per_wafer()["average"]["ratio"] == pytest.approx(
            1.31, abs=0.02
        )
        assert case.carbon_efficiency_advantage() == pytest.approx(
            1.02, abs=0.005
        )
        assert retention_time_s(m3d_bitcell()) > 1000.0
