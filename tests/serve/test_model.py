"""Model-layer contract: validation, and scalar/batched bit-equality.

The load-bearing test is differential: the batched tensor evaluator
must produce byte-identical JSON to the scalar model stack for any
batch composition, because the server's request coalescing relies on
being invisible to clients.
"""

import json
import random

import numpy as np
import pytest

from repro.core.isoline import TcdpTradeoffMap
from repro.core.uncertainty import monte_carlo_win_probability
from repro.serve.model import (
    LIFETIME_AXIS_MONTHS,
    GridQuery,
    ModelContext,
    PointQuery,
    QueryError,
    evaluate_grid,
    evaluate_point_scalar,
    evaluate_points_batched,
)


def canonical(payload) -> str:
    return json.dumps(payload, separators=(",", ":"))


def random_queries(seed: int, n: int):
    rng = random.Random(seed)
    queries = []
    for _ in range(n):
        payload = {
            "grid": rng.choice(["us", "coal", "solar", "taiwan"]),
            "lifetime_months": rng.uniform(0.5, 60.0),
            "ci_use_scale": rng.uniform(0.05, 8.0),
            "emb_scale": rng.uniform(0.0, 4.0),
            "op_scale": rng.uniform(0.0, 4.0),
        }
        if rng.random() < 0.4:
            payload["candidate_yield"] = rng.uniform(0.05, 1.0)
        queries.append(PointQuery.from_payload(payload))
    return queries


# ---------------------------------------------------------------------------
# Query validation
# ---------------------------------------------------------------------------
def test_point_query_defaults():
    query = PointQuery.from_payload({})
    assert query.grid == "us"
    assert query.lifetime_months == 24.0
    assert query.emb_scale == 1.0
    assert query.candidate_yield is None


@pytest.mark.parametrize(
    "payload",
    [
        {"grid": "mars"},
        {"unknown_field": 1},
        {"lifetime_months": 0.0},
        {"lifetime_months": -3},
        {"lifetime_months": "soon"},
        {"ci_use_scale": 0.0},
        {"candidate_yield": 0.0},
        {"candidate_yield": 1.5},
        {"emb_scale": -0.1},
        {"clock_mhz": 5.0},
        {"clock_mhz": True},
    ],
)
def test_point_query_rejects(payload):
    with pytest.raises(QueryError):
        PointQuery.from_payload(payload)


def test_grid_query_axis_specs():
    query = GridQuery.from_payload(
        {
            "emb_scales": {"start": 0.0, "stop": 2.0, "n": 5},
            "op_scales": [0.5, 1.0],
        }
    )
    assert query.emb_scales == tuple(np.linspace(0.0, 2.0, 5).tolist())
    assert query.op_scales == (0.5, 1.0)
    default = GridQuery.from_payload({})
    assert len(default.emb_scales) == 40


@pytest.mark.parametrize(
    "payload",
    [
        {"emb_scales": {"start": 2.0, "stop": 1.0, "n": 5}},
        {"emb_scales": {"start": 0.0, "stop": 1.0, "n": 1}},
        {"emb_scales": {"start": 0.0, "stop": 1.0, "n": 10_000}},
        {"emb_scales": {"start": 0.0, "stop": 1.0, "n": 5, "step": 2}},
        {"emb_scales": "wide"},
        {"emb_scales": [-1.0]},
        {"emb_scales": ["a"]},
        {"mc_samples": -1},
        {"mc_samples": 10**9},
        {"mc_seed": "x"},
        {"include_ratio_map": "yes"},
    ],
)
def test_grid_query_rejects(payload):
    with pytest.raises(QueryError):
        GridQuery.from_payload(payload)


def test_context_rejects_unknown_grid():
    with pytest.raises(QueryError):
        ModelContext(grids=("us", "jupiter"))


# ---------------------------------------------------------------------------
# Scalar vs batched bit-equality
# ---------------------------------------------------------------------------
@pytest.mark.smoke
def test_batched_matches_scalar_bit_for_bit(warm_context):
    queries = random_queries(seed=101, n=48)
    scalar = [evaluate_point_scalar(warm_context, q) for q in queries]
    batched = evaluate_points_batched(warm_context, queries)
    for expected, got in zip(scalar, batched):
        assert canonical(expected) == canonical(got)


def test_single_element_batch_matches_scalar(warm_context):
    (query,) = random_queries(seed=7, n=1)
    scalar = evaluate_point_scalar(warm_context, query)
    (batched,) = evaluate_points_batched(warm_context, [query])
    assert canonical(scalar) == canonical(batched)


def test_batch_result_independent_of_batch_composition(warm_context):
    queries = random_queries(seed=55, n=16)
    alone = [
        evaluate_points_batched(warm_context, [q])[0] for q in queries
    ]
    together = evaluate_points_batched(warm_context, queries)
    reversed_batch = evaluate_points_batched(
        warm_context, list(reversed(queries))
    )
    for i in range(len(queries)):
        assert canonical(alone[i]) == canonical(together[i])
        assert canonical(together[i]) == canonical(
            reversed_batch[len(queries) - 1 - i]
        )


# ---------------------------------------------------------------------------
# Response semantics
# ---------------------------------------------------------------------------
def test_point_response_schema_and_ratio(warm_context):
    query = PointQuery.from_payload(
        {"grid": "us", "lifetime_months": 24.0}
    )
    response = evaluate_point_scalar(warm_context, query)
    assert response["schema"] == "ppatc-point/1"
    # The nominal ratio must equal the core trade-off map exactly.
    base = warm_context.base("us", 500.0)
    tmap = base.scenario(query).tradeoff_map()
    assert response["tcdp_ratio"] == tmap.ratio(1.0, 1.0)
    assert response["candidate_wins"] == (response["tcdp_ratio"] < 1.0)
    assert response["query"]["candidate_yield"] == base.candidate_yield
    assert len(response["robustness"]["ratios"]) == 6
    assert len(response["lifetime"]["months"]) == len(LIFETIME_AXIS_MONTHS)
    lifetime = response["lifetime"]
    for lo, mid, hi in zip(
        lifetime["envelope_lo"],
        lifetime["tcdp_ratio_by_month"],
        lifetime["envelope_hi"],
    ):
        assert lo <= mid <= hi


def test_isoline_nan_serializes_as_none(warm_context):
    # A huge op_scale pushes the embodied isoline negative -> NaN -> null.
    query = PointQuery.from_payload({"op_scale": 900.0})
    response = evaluate_point_scalar(warm_context, query)
    assert response["isoline"]["emb_scale_at_query_op"] is None
    assert "NaN" not in canonical(response)


def test_crossover_months_consistency(warm_context):
    query = PointQuery.from_payload(
        {"grid": "coal", "op_scale": 0.3}
    )
    response = evaluate_point_scalar(warm_context, query)
    lifetime = response["lifetime"]
    crossover = lifetime["crossover_months"]
    if crossover is not None:
        index = lifetime["months"].index(float(crossover))
        assert lifetime["tcdp_ratio_by_month"][index] < 1.0
        assert all(
            r >= 1.0
            for r in lifetime["tcdp_ratio_by_month"][:index]
        )
    best = lifetime["best_case_crossover_months"]
    worst = lifetime["worst_case_crossover_months"]
    if crossover is not None and best is not None:
        assert best <= crossover
    if worst is not None and crossover is not None:
        assert crossover <= worst


def test_yield_override_changes_embodied_only(warm_context):
    base_resp = evaluate_point_scalar(
        warm_context, PointQuery.from_payload({})
    )
    low_yield = evaluate_point_scalar(
        warm_context, PointQuery.from_payload({"candidate_yield": 0.1})
    )
    assert (
        low_yield["candidate"]["embodied_g"]
        > base_resp["candidate"]["embodied_g"]
    )
    assert (
        low_yield["candidate"]["operational_g"]
        == base_resp["candidate"]["operational_g"]
    )
    assert (
        low_yield["baseline"]["embodied_g"]
        == base_resp["baseline"]["embodied_g"]
    )


# ---------------------------------------------------------------------------
# Grid evaluation
# ---------------------------------------------------------------------------
def test_grid_matches_core_tradeoff_map(warm_context):
    query = GridQuery.from_payload(
        {
            "grid": "us",
            "emb_scales": {"start": 0.1, "stop": 2.0, "n": 7},
            "op_scales": {"start": 0.1, "stop": 2.0, "n": 5},
        }
    )
    response = evaluate_grid(warm_context, query)
    assert response["schema"] == "ppatc-grid/1"
    base = warm_context.base("us", 500.0)
    params = base.scenario(PointQuery.from_payload({"grid": "us"}))
    tmap = params.tradeoff_map()
    assert isinstance(tmap, TcdpTradeoffMap)
    expected = tmap.ratio_grid(
        np.array(query.emb_scales), np.array(query.op_scales)
    )
    assert response["ratio_map"] == expected.tolist()
    assert response["nominal_ratio"] == tmap.ratio(1.0, 1.0)
    iso = tmap.isoline_emb_scale(np.array(query.op_scales))
    for got, exp in zip(response["isoline_emb_scale"], iso):
        if np.isnan(exp):
            assert got is None
        else:
            assert got == exp


def test_grid_monte_carlo_matches_core_and_uses_cache(
    warm_context, tmp_path
):
    from repro.runtime.cache import SweepCache

    cache = SweepCache(tmp_path / "sweeps")
    context = ModelContext(grids=("us",), sweep_cache=cache)
    query = GridQuery.from_payload(
        {
            "grid": "us",
            "emb_scales": [0.5, 1.0, 1.5],
            "op_scales": [0.5, 1.0],
            "include_ratio_map": False,
            "mc_samples": 300,
            "mc_seed": 9,
        }
    )
    response = evaluate_grid(context, query)
    base = context.base("us", 500.0)
    params = base.scenario(PointQuery.from_payload({"grid": "us"}))
    expected = monte_carlo_win_probability(
        params,
        np.array([0.5, 1.0, 1.5]),
        np.array([0.5, 1.0]),
        n_samples=300,
        rng=np.random.default_rng(9),
        jobs=1,
    )
    assert response["win_probability"] == expected.tolist()
    assert "ratio_map" not in response
    # Same seed -> same drawn samples -> SweepCache hit, same bytes.
    again = evaluate_grid(context, query)
    assert canonical(again) == canonical(response)
    assert cache.hits >= 1
