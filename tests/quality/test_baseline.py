"""Baseline round-trip, fingerprint stability, and count consumption."""

import json

import pytest

from repro.quality import Baseline, Finding, Severity


def make_finding(rule="RPL001", path="src/x.py", line=3,
                 snippet="a = b_j + c_kwh", message="mixes scales"):
    return Finding(
        rule=rule,
        message=message,
        path=path,
        line=line,
        severity=Severity.ERROR,
        snippet=snippet,
    )


@pytest.mark.smoke
class TestRoundTrip:
    def test_save_load_partition(self, tmp_path):
        findings = [make_finding(), make_finding(rule="RPL004", line=9)]
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)

        loaded = Baseline.load(path)
        assert len(loaded) == 2
        fresh, grandfathered = loaded.partition(findings)
        assert fresh == []
        assert len(grandfathered) == 2

    def test_save_is_deterministic(self, tmp_path):
        findings = [make_finding(path="b.py"), make_finding(path="a.py")]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(a)
        Baseline.from_findings(list(reversed(findings))).save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)
        path.write_text(json.dumps({"schema": "other/9"}), encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestMatching:
    def test_line_drift_does_not_resurrect(self):
        baseline = Baseline.from_findings([make_finding(line=3)])
        drifted = make_finding(line=47)
        fresh, grandfathered = baseline.partition([drifted])
        assert fresh == []
        assert grandfathered == [drifted]

    def test_edited_snippet_resurfaces(self):
        baseline = Baseline.from_findings([make_finding()])
        edited = make_finding(snippet="a = b_j + d_kwh")
        fresh, _ = baseline.partition([edited])
        assert fresh == [edited]

    def test_counts_consumed_per_fingerprint(self):
        # Two identical findings baselined; a third new copy must fail.
        pair = [make_finding(), make_finding()]
        baseline = Baseline.from_findings(pair)
        assert len(baseline) == 2
        fresh, grandfathered = baseline.partition(pair + [make_finding()])
        assert len(grandfathered) == 2
        assert len(fresh) == 1

    def test_unrelated_rule_not_suppressed(self):
        baseline = Baseline.from_findings([make_finding(rule="RPL001")])
        other = make_finding(rule="RPL002")
        fresh, _ = baseline.partition([other])
        assert fresh == [other]
