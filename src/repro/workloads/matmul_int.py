"""matmul-int: 20x20 integer matrix multiplication (the paper's headline
workload).

Matrices A and B are filled by an LCG, C = A x B is computed ``REPEATS``
times, and the checksum is the 32-bit sum of C's entries.  A calibration
loop (``TUNE`` iterations of 4 cycles plus up to 3 NOPs) pads the run so
the total cycle count matches the paper's reported 20,047,348 cycles for
"matmul-int" (Table II) — the paper's count comes from its particular
compiled binary, which we cannot bit-reproduce, so we match the
application *length* by construction and the access behaviour by kernel
shape.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.suite import Workload

#: Matrix dimension.
N = 20

#: Kernel repetitions (Embench-style repeat loop).
REPEATS = 188

#: Calibration: iterations of the 4-cycle tuning loop + trailing NOPs,
#: solved so total cycles == 20,047,348 (:func:`predicted_cycles`).
TUNE = 22280
PADS = 0

#: Paper-reported cycle count for matmul-int at 500 MHz (Table II).
PAPER_CYCLE_COUNT = 20_047_348

#: Measured ISS cycle structure for N = 20 (deterministic; verified by
#: tests/workloads): startup + init + checksum + halt, and one kernel
#: repetition including the repeat-loop overhead.
_BASE_CYCLES = 11_240
_CYCLES_PER_MATMUL = 106_101

LCG_SEED = 12345
LCG_MUL = 1664525
LCG_ADD = 1013904223

A_BASE = 0x2000_0000
B_BASE = A_BASE + 4 * N * N
C_BASE = B_BASE + 4 * N * N

_TEMPLATE = """
.equ N, {n}
.equ NB, {nbytes}        @ N*4, the row stride in bytes
.equ A_BASE, {a_base}
.equ B_BASE, {b_base}
.equ C_BASE, {c_base}

_start:
    bl init
    ldr r7, ={repeats}
repeat_loop:
    bl matmul
    subs r7, r7, #1
    bne repeat_loop
    bl checksum
    ldr r1, ={tune}
tune_loop:
    subs r1, r1, #1
    bne tune_loop
{pads}
    bkpt #0

@ Fill A and B (contiguous, 2*N*N words) with LCG values >> 16.
init:
    push {{r4, r5, r6, lr}}
    ldr r0, =A_BASE
    {seed_load}
    ldr r4, ={lcg_mul}
    ldr r5, ={lcg_add}
    ldr r6, ={fill_words}
init_loop:
    muls r1, r4
    adds r1, r1, r5
    asrs r2, r1, #16
    str r2, [r0]
    adds r0, r0, #4
    subs r6, r6, #1
    bne init_loop
    pop {{r4, r5, r6, pc}}

@ C = A x B, row-major NxN int32.
matmul:
    push {{r4, r5, r6, r7, lr}}
    movs r7, #0              @ i
mi_loop:
    movs r6, #0              @ j
mj_loop:
    movs r1, #NB
    mov r0, r7
    muls r0, r1              @ i * NB
    ldr r4, =A_BASE
    adds r4, r4, r0          @ &A[i][0]
    lsls r1, r6, #2
    ldr r5, =B_BASE
    adds r5, r5, r1          @ &B[0][j]
    movs r2, #0              @ acc
    movs r3, #N              @ k
mk_loop:
    ldr r0, [r4]
    ldr r1, [r5]
    muls r0, r1
    adds r2, r2, r0
    adds r4, r4, #4
    adds r5, r5, #NB
    subs r3, r3, #1
    bne mk_loop
    movs r0, #NB
    mov r1, r7
    muls r1, r0              @ i * NB
    lsls r0, r6, #2
    adds r1, r1, r0
    ldr r0, =C_BASE
    adds r1, r1, r0
    str r2, [r1]             @ C[i][j]
    adds r6, r6, #1
    cmp r6, #N
    blt mj_loop
    adds r7, r7, #1
    cmp r7, #N
    blt mi_loop
    pop {{r4, r5, r6, r7, pc}}

@ r0 = 32-bit sum of C.
checksum:
    push {{r4, lr}}
    ldr r1, =C_BASE
    ldr r2, ={cn2}
    movs r0, #0
cs_loop:
    ldr r3, [r1]
    adds r0, r0, r3
    adds r1, r1, #4
    subs r2, r2, #1
    bne cs_loop
    pop {{r4, pc}}
"""


def source(
    n: int = N,
    repeats: int = REPEATS,
    tune: int = TUNE,
    pads: int = PADS,
    seed: "int | None" = LCG_SEED,
) -> str:
    """Assembly text for a parameterized matmul-int run.

    ``seed=None`` emits a program that reads the LCG seed from the
    first data-region word (``A_BASE``, overwritten by the fill loop a
    moment later) instead of baking it into the literal pool.  Every
    seed variant then shares identical program bytes, which is what
    lets the N-lane vector engine run them in lockstep.
    """
    seed_load = (
        "ldr r1, [r0]" if seed is None else f"ldr r1, ={seed}"
    )
    return _TEMPLATE.format(
        n=n,
        nbytes=n * 4,
        a_base=f"0x{A_BASE:08X}",
        b_base=f"0x{A_BASE + 4 * n * n:08X}",
        c_base=f"0x{A_BASE + 8 * n * n:08X}",
        repeats=repeats,
        tune=tune,
        seed_load=seed_load,
        lcg_mul=LCG_MUL,
        lcg_add=LCG_ADD,
        fill_words=2 * n * n,
        cn2=n * n,
        pads="\n".join("    nop" for _ in range(pads)),
    )


def predicted_cycles(
    repeats: int = REPEATS, tune: int = TUNE, pads: int = PADS
) -> int:
    """Exact cycle count of a matmul-int configuration (N = 20 only).

    The ISS is deterministic, so the count decomposes exactly into the
    measured base + per-repetition + calibration-loop terms.  The default
    configuration lands on the paper's 20,047,348 cycles.

    >>> predicted_cycles() == PAPER_CYCLE_COUNT
    True
    """
    return _BASE_CYCLES + repeats * _CYCLES_PER_MATMUL + 4 * tune + pads


def golden_checksum(n: int = N, seed: int = LCG_SEED) -> int:
    """Pure-Python/numpy model of the kernel's checksum."""
    values = []
    x = seed
    for _ in range(2 * n * n):
        x = (x * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        signed = x - 0x100000000 if x & 0x80000000 else x
        values.append(signed >> 16)
    a = np.array(values[: n * n], dtype=np.int64).reshape(n, n)
    b = np.array(values[n * n :], dtype=np.int64).reshape(n, n)
    c = (a @ b) & 0xFFFFFFFF
    return int(c.sum() & 0xFFFFFFFF)


def workload(
    n: int = N, repeats: int = REPEATS, tune: int = TUNE, pads: int = PADS
) -> Workload:
    return Workload(
        name="matmul-int",
        description=f"{n}x{n} int32 matrix multiply, {repeats} repeats",
        source=source(n, repeats, tune, pads),
        expected_checksum=golden_checksum(n),
    )


def seed_variant(
    seed: int,
    n: int = N,
    repeats: int = REPEATS,
    tune: int = TUNE,
    pads: int = PADS,
) -> Workload:
    """A matmul-int variant whose LCG seed arrives via a data word.

    All variants of one ``(n, repeats, tune, pads)`` shape share
    byte-identical program text — only ``data_words`` differs — so a
    batch of them forms one vector-engine lane group.
    """
    return Workload(
        name=f"matmul-int-s{seed}",
        description=(
            f"{n}x{n} int32 matrix multiply, {repeats} repeats, "
            f"seed {seed}"
        ),
        source=source(n, repeats, tune, pads, seed=None),
        expected_checksum=golden_checksum(n, seed),
        data_words=(seed,),
    )
