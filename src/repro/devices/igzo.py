"""IGZO FET compact-model parameters (references [37], [38] of the paper).

Indium-gallium-zinc-oxide FETs (Table I):

- (-) low I_EFF: low mobility (the paper calibrates to the measured
  1 cm^2/V.s of ref [38]);
- (+) ultra-low I_OFF: the wide bandgap (E_g ~ 3.5 eV) means there is no
  junction/GIDL leakage floor and essentially no off-state conduction —
  refs [13], [23] demonstrate < 3e-21 A/um;
- (+) BEOL-compatible: RF-sputtered at low temperature.

Model notes:

- SS = 90 mV/decade at 44 nm gate length (measured, ref [38]) via the
  ideality factor n = 1.51.
- In the 3T bit cell the IGZO write transistor holds charge with its
  *gate below its source* (WWL at 0 V, storage node near V_DD), so the
  subthreshold exponential at V_GS ~ -0.7 V — not the V_GS = 0 spec —
  governs retention, landing near the experimental 1e-20 A/um scale.
- Writing requires overdrive: the paper raises the write wordline to
  V_WWL = 1.3 V so the cell can charge the storage node to full V_DD
  through V_T ~ 0.5 V.
"""

from __future__ import annotations

from dataclasses import replace

from repro.devices.fet import Polarity
from repro.devices.virtual_source import VirtualSourceFET, VSParameters

#: Write wordline overdrive voltage (Sec. III-B step 2).
V_WWL = 1.3

IGZO_NMOS_PARAMS = VSParameters(
    vt0_v=0.50,
    n_ss=1.51,  # 90 mV/decade (ref [38])
    dibl_v_per_v=0.02,
    c_inv_f_per_um2=1.2e-14,
    l_gate_um=0.044,  # 44 nm gate length of the calibration device
    v_x0_cm_per_s=5.0e5,  # mobility-limited: ~1 cm^2/V.s
    mobility_cm2_per_vs=1.0,
    c_gate_f_per_um=0.8e-15,
    i_leak_floor_a_per_um=1e-21,  # wide bandgap: no junction/GIDL floor
    vdd_v=0.7,
)


def igzo_nfet(
    name: str, width_um: float, vt_shift_v: float = 0.0
) -> VirtualSourceFET:
    """An n-channel IGZO FET instance (IGZO is n-type only [24])."""
    params = IGZO_NMOS_PARAMS
    if vt_shift_v != 0.0:  # repro-lint: disable=RPL004 - default sentinel
        params = replace(params, vt0_v=params.vt0_v + vt_shift_v)
    return VirtualSourceFET(name, Polarity.NMOS, width_um, params)
