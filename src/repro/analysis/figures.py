"""Data generators for every figure in the paper's evaluation.

Each function returns plain dict/array data — the benchmark harness
prints them, and tests assert their shapes against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.case_study import CaseStudy
from repro.core.carbon_intensity import GRIDS
from repro.core.embodied import EmbodiedCarbonModel
from repro.core.isoline import TcdpOperatingPoint, TcdpTradeoffMap
from repro.core.materials import MaterialsModel
from repro.core.tcdp import edp_ratio
from repro.core.uncertainty import (
    IsolineUncertaintyAnalysis,
    ScenarioParameters,
)
from repro.fab import build_all_si_process, build_m3d_process
from repro.fab.energy_data import EUV_METAL_VIA_PAIR_RECIPE, STEP_ENERGY_KWH
from repro.fab.steps import ProcessArea
from repro.physical.power import CorePowerModel
from repro.physical.stdcells import VtFlavor


# ---------------------------------------------------------------------------
# Table I: FET figures of merit, quantified
# ---------------------------------------------------------------------------
def table1_fet_figures() -> Dict[str, Dict[str, float]]:
    """Quantified Table I: I_EFF, I_OFF, SS, and BEOL compatibility."""
    from repro.devices import cnfet_nfet, igzo_nfet, si_nfet

    rows: Dict[str, Dict[str, float]] = {}
    for name, fet in (
        ("cnfet", cnfet_nfet("c", 1.0)),
        ("igzo", igzo_nfet("i", 1.0)),
        ("si", si_nfet("s", 1.0)),
    ):
        rows[name] = {
            "ieff_ua_per_um": fet.effective_current_a() * 1e6,
            "ioff_a_per_um": fet.off_current_a(),
            "ss_mv_per_dec": fet.subthreshold_slope_mv_per_dec(),
            "beol_compatible": name != "si",
        }
    return rows


# ---------------------------------------------------------------------------
# Fig. 2c: embodied carbon per wafer by grid
# ---------------------------------------------------------------------------
def fig2c_embodied_per_wafer(
    grids: Optional[Dict[str, float]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-wafer C_embodied (kg) for both processes across grids.

    Returns {grid: {"all_si": kg, "m3d": kg, "ratio": x}} plus an
    ``"average"`` entry with the mean ratio (the paper's 1.31x).
    """
    grid_map = grids if grids is not None else GRIDS
    si_model = EmbodiedCarbonModel(
        build_all_si_process(), materials=MaterialsModel.for_all_si()
    )
    m3d_model = EmbodiedCarbonModel(
        build_m3d_process(), materials=MaterialsModel.for_m3d()
    )
    out: Dict[str, Dict[str, float]] = {}
    ratios: List[float] = []
    for grid, ci_value in grid_map.items():
        si = si_model.evaluate(ci_value).per_wafer_kg
        m3d = m3d_model.evaluate(ci_value).per_wafer_kg
        out[grid] = {"all_si": si, "m3d": m3d, "ratio": m3d / si}
        ratios.append(m3d / si)
    out["average"] = {"ratio": float(np.mean(ratios))}
    return out


# ---------------------------------------------------------------------------
# Fig. 2d: EUV metal-layer fabrication step energies
# ---------------------------------------------------------------------------
def fig2d_euv_metal_steps() -> Dict[str, Dict[str, float]]:
    """Steps and total energy per process area for an EUV metal/via pair.

    Mirrors the paper's Fig. 2d bar chart (the worked example: deposition
    = 3 steps, 4 kWh -> 1.33 kWh/step).
    """
    recipe = EUV_METAL_VIA_PAIR_RECIPE
    out: Dict[str, Dict[str, float]] = {}
    for area in ProcessArea.ordered():
        steps = recipe.steps.get(area, 0)
        if not steps:
            continue
        total = recipe.area_energy_kwh(area)
        out[area.value] = {
            "steps": float(steps),
            "total_kwh": total,
            "kwh_per_step": STEP_ENERGY_KWH[area],
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 4: M0 energy per cycle vs clock frequency per V_T flavour
# ---------------------------------------------------------------------------
def fig4_energy_vs_clock(
    clocks_hz: Optional[Sequence[float]] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Energy/cycle series for HVT/RVT/LVT/SLVT over the paper's sweep
    (100 MHz to 1 GHz in 100 MHz steps)."""
    clocks = (
        list(clocks_hz)
        if clocks_hz is not None
        else [100e6 * k for k in range(1, 11)]
    )
    model = CorePowerModel()
    sweep = model.sweep(clocks)
    out: Dict[str, List[Dict[str, float]]] = {}
    for flavor in VtFlavor:
        out[flavor.value] = [
            {
                "clock_mhz": r.clock_hz / 1e6,
                "energy_per_cycle_pj": r.energy_per_cycle_j * 1e12,
                "met_timing": float(r.met_timing),
                "sizing": r.sizing_factor,
            }
            for r in sweep[flavor]
        ]
    return out


def fig4_critical_path(
    clocks_hz: Optional[Sequence[float]] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Critical-path delay per (clock, V_T) point (Sec. III-B step 3:
    "Figure 4 shows the critical path delay for each design")."""
    from repro.physical.timing import TimingClosure

    clocks = (
        list(clocks_hz)
        if clocks_hz is not None
        else [100e6 * k for k in range(1, 11)]
    )
    closure = TimingClosure()
    sweep = closure.sweep(clocks)
    out: Dict[str, List[Dict[str, float]]] = {}
    for flavor in VtFlavor:
        out[flavor.value] = [
            {
                "clock_mhz": r.clock_hz / 1e6,
                "critical_path_ns": r.critical_path_s * 1e9,
                "slack_ns": r.slack_s * 1e9,
                "met_timing": float(r.met),
            }
            for r in sweep[flavor]
        ]
    return out


# ---------------------------------------------------------------------------
# Fig. 5: tC and tCDP vs lifetime
# ---------------------------------------------------------------------------
def fig5_tc_and_tcdp(
    case: CaseStudy, months: Optional[Sequence[float]] = None
) -> Dict[str, object]:
    """tC components and tCDP per month of lifetime (US grid).

    Returns per-system series plus the ratio annotations the paper
    highlights (at 1, 18, 24 months) and the EDP-limit asymptote.
    """
    month_axis = (
        list(months) if months is not None else [float(m) for m in range(1, 25)]
    )
    series: Dict[str, object] = {"months": month_axis}
    for key, system in (("all_si", case.all_si), ("m3d", case.m3d)):
        breakdowns = system.total_carbon.series(month_axis)
        series[key] = {
            "embodied_g": [b.embodied_g for b in breakdowns],
            "operational_g": [b.operational_g for b in breakdowns],
            "total_g": [b.total_g for b in breakdowns],
            "tcdp": [b.total_g * system.execution_time_s for b in breakdowns],
        }
    series["ratio_m3d_over_si"] = [
        case.tcdp_ratio(m) for m in month_axis
    ]
    series["highlighted_ratios"] = {
        m: case.tcdp_ratio(m) for m in (1.0, 18.0, 24.0)
    }
    series["edp_limit"] = edp_ratio(
        case.m3d.operational_power_w,
        case.all_si.operational_power_w,
        case.m3d.execution_time_s,
        case.all_si.execution_time_s,
    )
    series["crossover_months"] = case.tc_crossover_months()
    series["dominance_months"] = {
        "all_si": case.all_si.total_carbon.operational_dominance_months(),
        "m3d": case.m3d.total_carbon.operational_dominance_months(),
    }
    return series


# ---------------------------------------------------------------------------
# Fig. 6a: tCDP trade-off map and isoline
# ---------------------------------------------------------------------------
def _operating_points(case: CaseStudy, lifetime_months: float):
    m3d_b = case.m3d.total_carbon.breakdown(lifetime_months)
    si_b = case.all_si.total_carbon.breakdown(lifetime_months)
    candidate = TcdpOperatingPoint(
        m3d_b.embodied_g,
        m3d_b.operational_g,
        execution_time_s=case.m3d.execution_time_s,
    )
    baseline = TcdpOperatingPoint(
        si_b.embodied_g,
        si_b.operational_g,
        execution_time_s=case.all_si.execution_time_s,
    )
    return candidate, baseline


def fig6a_tradeoff_map(
    case: CaseStudy,
    lifetime_months: float = 24.0,
    emb_scales: Optional[np.ndarray] = None,
    op_scales: Optional[np.ndarray] = None,
) -> Dict[str, object]:
    """Relative-tCDP colormap + isoline over (C_emb scale, E_op scale)."""
    xs = emb_scales if emb_scales is not None else np.linspace(0.05, 2.0, 40)
    ys = op_scales if op_scales is not None else np.linspace(0.05, 2.0, 40)
    candidate, baseline = _operating_points(case, lifetime_months)
    tmap = TcdpTradeoffMap(candidate, baseline)
    return {
        "emb_scales": xs,
        "op_scales": ys,
        "ratio_map": tmap.ratio_grid(xs, ys),
        "isoline_emb_scale": tmap.isoline_emb_scale(ys),
        "nominal_ratio": tmap.ratio(1.0, 1.0),
    }


# ---------------------------------------------------------------------------
# Fig. 6b: isoline under uncertainty
# ---------------------------------------------------------------------------
def fig6b_isoline_uncertainty(
    case: CaseStudy,
    lifetime_months: float = 24.0,
    op_scales: Optional[np.ndarray] = None,
) -> Dict[str, object]:
    """The Fig. 6b isoline family: nominal plus the six perturbations
    (+/- 6 months, CI_use x3 / /3, M3D yield 10 % / 90 %)."""
    ys = op_scales if op_scales is not None else np.linspace(0.05, 2.0, 40)
    per_month_m3d = case.m3d.total_carbon.operational.carbon_per_month_g(
        case.m3d.total_carbon.scenario.with_lifetime(1.0)
    )
    per_month_si = case.all_si.total_carbon.operational.carbon_per_month_g(
        case.all_si.total_carbon.scenario.with_lifetime(1.0)
    )
    params = ScenarioParameters(
        candidate_wafer_g=case.m3d.embodied.per_wafer_g,
        candidate_dies_per_wafer=case.m3d.dies_per_wafer,
        candidate_yield=case.m3d.yield_fraction,
        candidate_op_per_month_g=per_month_m3d,
        baseline_wafer_g=case.all_si.embodied.per_wafer_g,
        baseline_dies_per_wafer=case.all_si.dies_per_wafer,
        baseline_yield=case.all_si.yield_fraction,
        baseline_op_per_month_g=per_month_si,
        lifetime_months=lifetime_months,
        execution_time_ratio=(
            case.m3d.execution_time_s / case.all_si.execution_time_s
        ),
    )
    analysis = IsolineUncertaintyAnalysis(params)
    xs = np.linspace(0.05, 3.0, 30)
    return {
        "op_scales": ys,
        "isolines": analysis.isolines(ys),
        "robust_regions": analysis.robust_regions(xs, ys),
        "emb_scales": xs,
        "parameters": params,
    }
