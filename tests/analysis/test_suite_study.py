"""Tests for the per-workload suite study."""

import pytest

from repro.analysis.suite_study import (
    render_suite_study,
    run_suite_study,
)
from repro.workloads import crc32, matmul_int


@pytest.fixture(scope="module")
def rows():
    return run_suite_study()


class TestSuiteStudy:
    def test_covers_all_eight_workloads(self, rows):
        names = {row.name for row in rows}
        assert names == {
            "matmul-int", "crc32", "edn", "primecount", "fib", "ud",
            "st", "sort",
        }

    def test_m3d_memory_energy_always_lower(self, rows):
        """The density-driven wire saving applies to every workload."""
        for row in rows:
            assert row.m3d_memory_energy_pj < row.si_memory_energy_pj

    def test_m3d_wins_at_24_months_for_all(self, rows):
        for row in rows:
            assert row.m3d_wins, row.name

    def test_crossovers_are_finite_and_before_24mo(self, rows):
        for row in rows:
            assert row.crossover_months is not None
            assert 5.0 < row.crossover_months < 24.0

    def test_memory_intensity_correlates_with_saving(self, rows):
        """More accesses per cycle -> larger absolute power saving."""
        by_intensity = sorted(rows, key=lambda r: r.accesses_per_cycle)
        savings = [
            r.si_power_mw - r.m3d_power_mw for r in by_intensity
        ]
        assert savings[-1] > savings[0]

    def test_matmul_row_matches_case_study_scale(self, rows):
        matmul = next(r for r in rows if r.name == "matmul-int")
        # The reduced run's profile matches the paper-length run's, so
        # the energies land on the Table II values.
        assert matmul.si_memory_energy_pj == pytest.approx(18.0, rel=0.02)
        assert matmul.m3d_memory_energy_pj == pytest.approx(15.5, rel=0.02)
        assert matmul.tcdp_ratio_m3d_over_si == pytest.approx(
            1 / 1.02, abs=0.01
        )

    def test_custom_config_subset(self):
        rows = run_suite_study(
            configs=[crc32.workload(length=128, repeats=1)]
        )
        assert len(rows) == 1
        assert rows[0].name == "crc32"

    def test_short_lifetime_flips_winner(self):
        rows = run_suite_study(
            lifetime_months=3.0,
            configs=[matmul_int.workload(repeats=1, tune=1, pads=0)],
        )
        assert not rows[0].m3d_wins

    def test_render(self, rows):
        text = render_suite_study(rows)
        assert "matmul-int" in text
        assert "M3D" in text
        assert "tCDP ratio" in text
