"""Concurrency analysis layer shared by rules RPL009-RPL012.

PRs 6-7 made the repro genuinely concurrent: an asyncio HTTP server
with a window batcher, thread-locked observability, and process-pool
fan-out.  The unit lattice (:mod:`repro.quality.flow`) cannot see the
hazards that concurrency introduces, so this module provides the
static machinery the concurrency rules build on:

- **Blocking-call classification.**  :func:`classify_blocking_call`
  recognizes event-loop-blocking operations by shape: ``time.sleep``,
  sync disk I/O (``open``, ``Path.read_text``/``write_text``),
  socket/subprocess calls, and ``.get``/``.put`` round-trips on
  :class:`~repro.runtime.cache.SweepCache` /
  :class:`~repro.runtime.cache.ResultCache`-shaped receivers (any
  receiver whose final component names a cache).

- **Transitive reach.**  :class:`BlockingIndex` reuses the flow
  engine's cross-module machinery (:class:`~repro.quality.flow.Program`
  / :class:`~repro.quality.flow.ModuleInfo`, same ``MAX_CALL_DEPTH``
  recursion budget) to follow a call from an ``async def`` through
  module-level and imported sync helpers: if anything reachable within
  the budget blocks — or the call lands in the heavy ``repro.core`` /
  ``repro.cpu`` compute packages — the chain of call sites comes back
  as a witness (:class:`BlockingWitness`), most-shallow step first.

- **Lock-discipline inference.**  :func:`analyze_lock_discipline`
  builds, per class owning a lock attribute (``self._lock =
  threading.Lock()`` and friends), the map of instance attributes
  written under ``with self._lock:`` versus outside it — the raw
  material for RPL011's both-ways findings.

- **Scope walking.**  :func:`walk_scope` yields a function body's nodes
  without descending into nested ``def``/``lambda`` scopes (the same
  discipline RPL008 uses), so every rule anchors findings to the scope
  that owns them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.quality.flow import (
    MAX_CALL_DEPTH,
    ImportedSymbol,
    ModuleInfo,
    Program,
    context_info,
)
from repro.quality.rules.base import dotted_name

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Dotted call names that block the calling thread outright.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep() parks the whole event loop",
    "os.system": "os.system() blocks on a subprocess",
    "subprocess.run": "subprocess.run() blocks on a subprocess",
    "subprocess.check_output": (
        "subprocess.check_output() blocks on a subprocess"
    ),
    "subprocess.check_call": "subprocess.check_call() blocks on a subprocess",
    "socket.create_connection": (
        "socket.create_connection() is a blocking socket call"
    ),
    "socket.getaddrinfo": "socket.getaddrinfo() is a blocking DNS lookup",
    "urllib.request.urlopen": "urlopen() is a blocking network call",
}

#: Method names that are synchronous disk I/O on any receiver.
BLOCKING_IO_METHODS: Dict[str, str] = {
    "read_text": "sync disk read (.read_text())",
    "write_text": "sync disk write (.write_text())",
    "read_bytes": "sync disk read (.read_bytes())",
    "write_bytes": "sync disk write (.write_bytes())",
}

#: Socket-object methods that block (flagged only on *sync* call sites;
#: the asyncio stream twins are coroutines and arrive awaited).
BLOCKING_SOCKET_METHODS = frozenset(
    {"recv", "recvfrom", "sendall", "connect", "accept"}
)

#: ``.get`` / ``.put`` on one of these receivers is a disk round-trip.
CACHE_METHODS = frozenset({"get", "put"})

#: Top-level repro packages whose functions are heavy compute: reaching
#: one synchronously from an ``async def`` stalls the event loop for a
#: model-evaluation's worth of time.
HEAVY_PACKAGES = frozenset({"core", "cpu"})


@dataclass(frozen=True)
class BlockingWitness:
    """Why a call (transitively) blocks, with the call-site chain."""

    reason: str
    #: Call-site steps, outermost first: ``"calls evaluate_grid() [line 7]"``.
    chain: Tuple[str, ...] = ()

    def describe(self) -> str:
        if not self.chain:
            return self.reason
        return f"{self.reason} via " + " -> ".join(self.chain)


def _receiver_is_cache(node: ast.expr) -> bool:
    """True when the method receiver names a Sweep/Result cache.

    Matches by the receiver's final component: ``self.sweep_cache``,
    ``context.sweep_cache``, ``result_cache``, ``self._cache``.  A bare
    ``.get`` on ``payload``/``mapping`` receivers stays invisible, so
    dict lookups never trip this.
    """
    name = dotted_name(node)
    if name is None:
        return False
    last = name.split(".")[-1].lower()
    return "cache" in last


def _receiver_is_socket(node: ast.expr) -> bool:
    name = dotted_name(node)
    if name is None:
        return False
    last = name.split(".")[-1].lower()
    return last in ("sock", "socket", "conn") or last.endswith("_sock")


def classify_blocking_call(call: ast.Call) -> Optional[str]:
    """A human-readable reason if this call blocks the calling thread.

    Only *directly* blocking shapes are recognized here; transitive
    reach through callees is :class:`BlockingIndex`'s job.
    """
    name = dotted_name(call.func)
    if name is not None:
        if name in BLOCKING_CALLS:
            return BLOCKING_CALLS[name]
        last = name.split(".")[-1]
        if name == "open" or last == "open" and name.startswith("io."):
            return "sync file open()"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in BLOCKING_IO_METHODS:
            return BLOCKING_IO_METHODS[attr]
        if attr in CACHE_METHODS and _receiver_is_cache(call.func.value):
            receiver = dotted_name(call.func.value) or "<cache>"
            return (
                f"{receiver}.{attr}() is a SweepCache/ResultCache disk "
                f"round-trip"
            )
        if attr in BLOCKING_SOCKET_METHODS and _receiver_is_socket(
            call.func.value
        ):
            receiver = dotted_name(call.func.value) or "<socket>"
            return f"{receiver}.{attr}() is a blocking socket call"
    return None


def _module_heavy_reason(info: ModuleInfo) -> Optional[str]:
    """Heavy-compute classification for a resolved module."""
    if info.path is None:
        return None
    parts = set(info.path.parts)
    heavy = HEAVY_PACKAGES.intersection(parts)
    if heavy and "repro" in info.path.parts:
        package = sorted(heavy)[0]
        return (
            f"heavy repro.{package} compute (a full model evaluation "
            f"on the event loop)"
        )
    return None


class BlockingIndex:
    """Memoized transitive blocking summaries over one lint run.

    Shares the flow engine's :class:`~repro.quality.flow.Program` so
    module parsing and import resolution are paid once per run; the
    per-function blocking witness is memoized on ``(module key, name)``
    with a cycle guard, exactly like return-unit inference.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._memo: Dict[
            Tuple[str, str], Optional[BlockingWitness]
        ] = {}

    # ------------------------------------------------------------------
    def witness_for_call(
        self, call: ast.Call, info: ModuleInfo, depth: int = 0
    ) -> Optional[BlockingWitness]:
        """Why this call site (transitively) blocks, if it does."""
        direct = classify_blocking_call(call)
        if direct is not None:
            return BlockingWitness(reason=direct)
        target = self._resolve_callee(call, info)
        if target is None:
            return None
        callee_info, callee_name, func = target
        if isinstance(func, ast.AsyncFunctionDef):
            return None  # calling an async def yields a coroutine; the
            # missing-await case is RPL010's, not a blocking hazard.
        heavy = _module_heavy_reason(callee_info)
        if heavy is not None and callee_info.key != info.key:
            return BlockingWitness(
                reason=heavy,
                chain=(f"calls {callee_name}() [line {call.lineno}]",),
            )
        if depth >= MAX_CALL_DEPTH:
            return None
        inner = self._witness_for_function(callee_info, callee_name, depth + 1)
        if inner is None:
            return None
        return BlockingWitness(
            reason=inner.reason,
            chain=(f"calls {callee_name}() [line {call.lineno}]",)
            + inner.chain,
        )

    # ------------------------------------------------------------------
    def _witness_for_function(
        self, info: ModuleInfo, func_name: str, depth: int
    ) -> Optional[BlockingWitness]:
        memo_key = (info.key, func_name)
        if memo_key in self._memo:
            return self._memo[memo_key]
        self._memo[memo_key] = None  # cycle guard
        func = info.functions.get(func_name)
        witness: Optional[BlockingWitness] = None
        if func is not None and not isinstance(func, ast.AsyncFunctionDef):
            for node in walk_scope(func.body):
                if not isinstance(node, ast.Call):
                    continue
                witness = self.witness_for_call(node, info, depth)
                if witness is not None:
                    break
        self._memo[memo_key] = witness
        return witness

    # ------------------------------------------------------------------
    def _resolve_callee(
        self, call: ast.Call, info: ModuleInfo
    ) -> Optional[Tuple[ModuleInfo, str, Optional[_FuncDef]]]:
        """``(owning module, function name, def)`` for a resolvable call."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in info.functions:
                return info, func.id, info.functions[func.id]
            symbol = info.imports.get(func.id)
            if symbol is not None:
                return self._resolve_import(info, symbol)
            return None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            dotted = info.module_aliases.get(func.value.id)
            if dotted is not None:
                target = self.program.load_module(info, dotted, 0)
                if target is not None:
                    return target, func.attr, target.functions.get(func.attr)
        return None

    def _resolve_import(
        self, info: ModuleInfo, symbol: ImportedSymbol
    ) -> Optional[Tuple[ModuleInfo, str, Optional[_FuncDef]]]:
        target = self.program.load_module(info, symbol.module, symbol.level)
        if target is None:
            return None
        return target, symbol.original, target.functions.get(symbol.original)


def get_blocking_index(ctx) -> Tuple[BlockingIndex, ModuleInfo]:
    """The per-run :class:`BlockingIndex` plus this file's module info.

    Parked on the engine's shared module-cache ``extras`` (alongside the
    flow program) so repo-wide runs build each summary once.
    """
    from repro.quality.flow import get_program

    program = get_program(ctx)
    info = context_info(ctx, program)
    extras = getattr(ctx.modules, "extras", None)
    if extras is None:
        return BlockingIndex(program), info
    index = extras.get("concurrency.blocking_index")
    if index is None or index.program is not program:
        index = BlockingIndex(program)
        extras["concurrency.blocking_index"] = index
    return index, info


# ---------------------------------------------------------------------------
# Scope walking
# ---------------------------------------------------------------------------
def walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of a scope without entering nested def/lambda bodies."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Lock-discipline inference
# ---------------------------------------------------------------------------
#: Constructors recognized as lock objects.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore"})

#: Method names that mutate their receiver in place (shared with
#: RPL008's module-global analysis, restated here for ``self.X`` use).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
    }
)


@dataclass(frozen=True)
class AttributeWrite:
    """One write to ``self.<attr>`` inside a method body."""

    attr: str
    method: str
    node: ast.AST
    guarded: bool
    kind: str  # "assign" | "augassign" | "mutate" | "subscript"


@dataclass
class LockDiscipline:
    """Guarded-vs-unguarded write map for one lock-owning class."""

    class_name: str
    lock_attrs: Set[str] = field(default_factory=set)
    writes: List[AttributeWrite] = field(default_factory=list)

    def guarded_attrs(self) -> Set[str]:
        return {w.attr for w in self.writes if w.guarded}

    def unguarded(self, attr: str) -> List[AttributeWrite]:
        return [w for w in self.writes if w.attr == attr and not w.guarded]

    def guarded_example(self, attr: str) -> Optional[AttributeWrite]:
        for write in self.writes:
            if write.attr == attr and write.guarded:
                return write
        return None


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return name.split(".")[-1] in LOCK_FACTORIES


def _self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``<self>.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _method_self_name(func: _FuncDef) -> Optional[str]:
    args = func.args
    ordered = list(args.posonlyargs) + list(args.args)
    if not ordered:
        return None
    if any(
        isinstance(d, ast.Name) and d.id == "staticmethod"
        for d in func.decorator_list
    ):
        return None
    return ordered[0].arg


def _with_guards(
    stmt: Union[ast.With, ast.AsyncWith], self_name: str, lock_attrs: Set[str]
) -> bool:
    """Does this ``with`` acquire one of the class's locks?"""
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func  # e.g. ``with self._lock.acquire_timeout()``
        attr = _self_attr(expr, self_name)
        if attr is not None and attr in lock_attrs:
            return True
    return False


def analyze_lock_discipline(tree: ast.Module) -> List[LockDiscipline]:
    """Per-class guarded/unguarded write maps for lock-owning classes.

    ``__init__``/``__new__`` bodies are excluded — the instance is not
    shared yet while it is being constructed — as are lock attributes
    themselves and ``threading.local`` style multi-level targets.
    """
    out: List[LockDiscipline] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs: Set[str] = set()
        for method in methods:
            self_name = _method_self_name(method)
            if self_name is None:
                continue
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.Assign) and _is_lock_ctor(stmt.value):
                    for target in stmt.targets:
                        attr = _self_attr(target, self_name)
                        if attr is not None:
                            lock_attrs.add(attr)
        if not lock_attrs:
            continue
        discipline = LockDiscipline(
            class_name=node.name, lock_attrs=lock_attrs
        )
        for method in methods:
            if method.name in ("__init__", "__new__"):
                continue
            self_name = _method_self_name(method)
            if self_name is None:
                continue
            _collect_writes(
                discipline,
                method,
                method.body,
                self_name,
                guarded=False,
            )
        out.append(discipline)
    return out


def _collect_writes(
    discipline: LockDiscipline,
    method: _FuncDef,
    body: Sequence[ast.stmt],
    self_name: str,
    guarded: bool,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_guarded = guarded or _with_guards(
                stmt, self_name, discipline.lock_attrs
            )
            _collect_writes(
                discipline, method, stmt.body, self_name, inner_guarded
            )
            continue
        _record_stmt_writes(discipline, method, stmt, self_name, guarded)
        for child_body in _child_bodies(stmt):
            _collect_writes(
                discipline, method, child_body, self_name, guarded
            )


def _child_bodies(stmt: ast.stmt) -> List[Sequence[ast.stmt]]:
    bodies: List[Sequence[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(stmt, attr, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _record_stmt_writes(
    discipline: LockDiscipline,
    method: _FuncDef,
    stmt: ast.stmt,
    self_name: str,
    guarded: bool,
) -> None:
    def record(attr: Optional[str], node: ast.AST, kind: str) -> None:
        if attr is None or attr in discipline.lock_attrs:
            return
        discipline.writes.append(
            AttributeWrite(
                attr=attr,
                method=method.name,
                node=node,
                guarded=guarded,
                kind=kind,
            )
        )

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            record(_self_attr(target, self_name), stmt, "assign")
            if isinstance(target, ast.Subscript):
                record(
                    _self_attr(target.value, self_name), stmt, "subscript"
                )
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        record(_self_attr(stmt.target, self_name), stmt, "assign")
    elif isinstance(stmt, ast.AugAssign):
        record(_self_attr(stmt.target, self_name), stmt, "augassign")
        if isinstance(stmt.target, ast.Subscript):
            record(
                _self_attr(stmt.target.value, self_name), stmt, "subscript"
            )
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in MUTATING_METHODS
        ):
            record(_self_attr(call.func.value, self_name), stmt, "mutate")
