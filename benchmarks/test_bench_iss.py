"""ISS performance benchmark: writes the ``BENCH_iss.json`` artifact.

Tracks the fast-engine speedup, the full-length matmul throughput, the
superblock and N-lane vector engines, the suite wall times
(serial/parallel/warm-cache), and the cache hit cost, so the ISS
performance trajectory is visible across PRs.
"""

import json


def test_bench_iss(output_dir):
    from repro.runtime.bench import run_bench

    path = output_dir / "BENCH_iss.json"
    report = run_bench(output_path=path, measure_legacy_full=True)

    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["schema"] == "bench-iss/2"

    medium = data["engine_comparison_medium"]
    assert medium["bit_identical"]
    assert medium["speedup_fast_over_legacy"] > 3.0

    full = data["matmul_full_fast"]
    assert full["cycles_match_paper"]
    assert full["checksum_correct"]
    assert full["mips"] > 0

    # The seed acceptance gate: the paper-length matmul-int run is
    # >= 5x faster on the fast engine than the legacy (seed)
    # interpreter, with bit-identical results.
    legacy_full = data["matmul_full_legacy"]
    assert legacy_full["bit_identical"]
    assert legacy_full["speedup_fast_over_legacy"] >= 5.0

    # Superblock gate: >= 2x over the fast engine on the full-length
    # run, bit-identical to the paper goldens.
    superblock = data["superblock"]
    assert superblock["bit_identical"]
    assert superblock["speedup_superblock_over_fast"] >= 2.0

    # Vector gates: N=1 degenerates to one lane and must match the
    # paper goldens on the full-length run; aggregate throughput on
    # seed-variant groups reaches the 10x band by N=32 (N=16 sits on
    # the line on the reference host, so the hard gate anchors at 32
    # where there is ~2x margin).  Every lane must self-check.
    vector = data["vector_lanes"]
    assert vector["n1_bit_identical"]
    for n_lanes in (8, 16, 32, 64):
        row = vector[f"n{n_lanes}"]
        assert row["vectorized"]
        assert row["all_correct"]
    assert vector["n32"]["speedup_vs_fast"] >= 10.0
    suite_vec = vector["suite_8_variants"]
    assert suite_vec["vector_groups"] == 1
    assert suite_vec["vector_lanes"] == 8
    assert suite_vec["all_correct"]

    suite = data["suite_study"]
    assert suite["warm_under_5s"]
    assert suite["warm_cache_hits"] >= 8
    # Parallel must not lose to serial beyond noise.  On a single-CPU
    # host the pool would collapse to one worker and the "comparison"
    # would be a serial rerun measured twice, so the bench skips it
    # and flags the skip instead.
    if suite["parallel_comparison_valid"]:
        assert suite["parallel_jobs"] > 1
        assert (
            suite["parallel_cold_wall_seconds"]
            < suite["serial_cold_wall_seconds"]
        )
    else:
        assert suite["parallel_jobs"] == 1
        assert suite["parallel_cold_wall_seconds"] is None

    cache = data["cache_entry"]
    assert cache["hit_was_hit"]
    assert cache["hit_wall_seconds"] < cache["miss_wall_seconds"]

    print(json.dumps(report["matmul_full_fast"], indent=2))
    print(json.dumps(report["superblock"], indent=2))
