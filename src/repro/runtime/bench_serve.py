"""The ``BENCH_serve.json`` harness: the query-server throughput gate.

Boots the real server twice as subprocesses (``python -m repro serve``)
— once in batched mode, once with ``--serial`` (the per-request
scalar-stack control) — and drives both with the deterministic load
generator at 32 concurrent clients over the same seeded corpus:

- **closed loop** (both modes): every client replays its corpus share
  back-to-back; measures throughput and collects a SHA-256 digest over
  all response bodies.  ``bit_equal_responses`` asserts the two modes'
  digests match — request coalescing must be invisible byte-for-byte.
- **open loop** (batched only): Poisson arrivals at a fixed offered
  rate; p50/p99 include queueing delay, the honest tail-latency number
  the ``bench-serve/1`` regression specs gate.

``speedup_at_least_3x`` encodes the ISSUE-7 acceptance criterion as a
machine-independent boolean; ``clean_shutdown`` asserts the SIGTERM
drain path exits 0.  Run via ``python -m repro bench-serve``.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve.loadgen import (
    LoadPhaseResult,
    build_corpus,
    fetch_json,
    run_closed_loop,
    run_open_loop,
)

#: The acceptance floor for batched-over-serial closed-loop throughput.
SPEEDUP_FLOOR = 3.0

_BOOT_TIMEOUT_S = 60.0
_SHUTDOWN_TIMEOUT_S = 15.0


class _ServerProcess:
    """One ``repro serve`` subprocess with parsed bound port."""

    def __init__(self, serial: bool, batch_window_ms: float) -> None:
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--batch-window-ms",
            str(batch_window_ms),
            "--no-sweep-cache",
        ]
        if serial:
            argv.append("--serial")
        self.process = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        self.port = self._await_announce()

    def _await_announce(self) -> int:
        assert self.process.stdout is not None
        deadline = time.perf_counter() + _BOOT_TIMEOUT_S
        line = self.process.stdout.readline()
        if time.perf_counter() > deadline or "listening on" not in line:
            self.process.kill()
            raise ReproError(
                f"server did not announce within {_BOOT_TIMEOUT_S}s "
                f"(got {line!r})"
            )
        return int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])

    def shutdown(self) -> bool:
        """SIGTERM and wait; True when the drain path exited cleanly."""
        if self.process.poll() is not None:
            return False
        self.process.send_signal(signal.SIGTERM)
        try:
            code = self.process.wait(timeout=_SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
            return False
        finally:
            if self.process.stdout is not None:
                self.process.stdout.close()
        return code == 0


def _phase_stats(result: LoadPhaseResult) -> Dict[str, Any]:
    return {
        "requests": result.requests,
        "errors": result.errors,
        "elapsed_s": round(result.elapsed_s, 4),
        "qps": round(result.qps, 1),
        "p50_ms": round(result.percentile(0.50) * 1e3, 3),
        "p99_ms": round(result.percentile(0.99) * 1e3, 3),
    }


async def _drive_batched(
    port: int,
    corpus: List[bytes],
    warmup: List[bytes],
    clients: int,
    open_rate_qps: float,
    open_corpus: List[bytes],
    seed: int,
) -> Dict[str, Any]:
    await run_closed_loop("127.0.0.1", port, warmup, connections=clients)
    closed = await run_closed_loop(
        "127.0.0.1", port, corpus, connections=clients
    )
    open_result = await run_open_loop(
        "127.0.0.1",
        port,
        open_corpus,
        rate_qps=open_rate_qps,
        seed=seed,
        connections=clients,
    )
    metrics = await fetch_json("127.0.0.1", port, "/metricz")
    health = await fetch_json("127.0.0.1", port, "/healthz")
    return {
        "closed": closed,
        "open": open_result,
        "metrics": metrics,
        "health": health,
    }


async def _drive_serial(
    port: int, corpus: List[bytes], warmup: List[bytes], clients: int
) -> LoadPhaseResult:
    await run_closed_loop("127.0.0.1", port, warmup, connections=clients)
    return await run_closed_loop(
        "127.0.0.1", port, corpus, connections=clients
    )


def run_serve_bench(
    output_path: Optional[Path] = None,
    clients: int = 32,
    requests: int = 512,
    open_rate_qps: float = 200.0,
    open_requests: int = 400,
    seed: int = 11,
    batch_window_ms: float = 2.0,
) -> Dict[str, Any]:
    """Measure batched-vs-serial serving and write ``BENCH_serve.json``."""
    corpus = build_corpus(seed=seed, n=requests)
    warmup = build_corpus(seed=seed + 1, n=min(64, requests))
    open_corpus = build_corpus(seed=seed + 2, n=open_requests)

    batched_server = _ServerProcess(
        serial=False, batch_window_ms=batch_window_ms
    )
    try:
        batched = asyncio.run(
            _drive_batched(
                batched_server.port,
                corpus,
                warmup,
                clients,
                open_rate_qps,
                open_corpus,
                seed,
            )
        )
    except BaseException:
        batched_server.process.kill()
        raise
    batched_clean = batched_server.shutdown()

    serial_server = _ServerProcess(
        serial=True, batch_window_ms=batch_window_ms
    )
    try:
        serial = asyncio.run(
            _drive_serial(serial_server.port, corpus, warmup, clients)
        )
    except BaseException:
        serial_server.process.kill()
        raise
    serial_clean = serial_server.shutdown()

    closed: LoadPhaseResult = batched["closed"]
    open_result: LoadPhaseResult = batched["open"]
    speedup = closed.qps / serial.qps if serial.qps > 0 else 0.0
    occupancy = (
        batched["metrics"]
        .get("histograms", {})
        .get("serve.batch.occupancy", {})
    )
    batch_count = (
        batched["metrics"].get("counters", {}).get("serve.batch.count", 0)
    )
    report: Dict[str, Any] = {
        "schema": "bench-serve/1",
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "config": {
            "clients": clients,
            "requests": requests,
            "open_rate_qps": open_rate_qps,
            "open_requests": open_requests,
            "seed": seed,
            "batch_window_ms": batch_window_ms,
        },
        "batched": _phase_stats(closed),
        "serial": _phase_stats(serial),
        "open_loop": {
            **_phase_stats(open_result),
            "all_ok": bool(
                open_result.errors == 0
                and open_result.requests == open_requests
            ),
        },
        "batch_occupancy": {
            "bounds": occupancy.get("bounds", []),
            "counts": occupancy.get("counts", []),
            "mean": round(occupancy.get("mean", 0.0), 2),
            "batches": batch_count,
        },
        "speedup_batched_over_serial": round(speedup, 3),
        "speedup_at_least_3x": bool(
            speedup >= SPEEDUP_FLOOR
            and closed.errors == 0
            and serial.errors == 0
        ),
        "bit_equal_responses": bool(
            closed.requests == serial.requests
            and closed.digest() == serial.digest()
        ),
        "clean_shutdown": bool(batched_clean and serial_clean),
    }
    if output_path is not None:
        output_path = Path(output_path)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report
