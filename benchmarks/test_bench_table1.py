"""Table I: FET benefits and challenges, quantified.

The paper's Table I is qualitative; this benchmark quantifies every (+)
and (-) entry from the compact models: I_EFF, I_OFF, and BEOL
compatibility per technology.
"""


from repro.analysis.figures import table1_fet_figures
from repro.analysis.report import render_table1
from repro.devices import CnfetQuality, cnfet_nfet
from repro.devices.silicon import (
    BEOL_TEMPERATURE_LIMIT_C,
    SI_PROCESS_TEMPERATURE_C,
)


def test_bench_table1(benchmark, artifact_writer):
    rows = benchmark(table1_fet_figures)
    artifact_writer("table1_fet_figures_of_merit", render_table1(rows))

    # CNFET: (+) high I_EFF, (-) metallic-CNT-limited I_OFF.
    assert rows["cnfet"]["ieff_ua_per_um"] > rows["si"]["ieff_ua_per_um"]
    assert rows["cnfet"]["ioff_a_per_um"] > rows["si"]["ioff_a_per_um"]
    # IGZO: (-) low I_EFF, (+) ultra-low I_OFF.
    assert rows["igzo"]["ieff_ua_per_um"] < 0.01 * rows["si"]["ieff_ua_per_um"]
    # ~3 decades below Si at V_GS = 0 (and another 6+ decades in the
    # negative-wordline hold state, see the retention benchmarks).
    assert rows["igzo"]["ioff_a_per_um"] < 0.01 * rows["si"]["ioff_a_per_um"]
    # Si: (+) high I_EFF and low I_OFF, (-) bottom layer only.
    assert SI_PROCESS_TEMPERATURE_C > BEOL_TEMPERATURE_LIMIT_C
    # Metallic-CNT removal is what keeps CNFET I_OFF in check.
    unremoved = cnfet_nfet("bad", 1.0, CnfetQuality(0.0))
    assert unremoved.off_current_a() > 100 * rows["cnfet"]["ioff_a_per_um"]
