"""Rule base class, registry, and shared AST helpers.

Rules are small classes with a ``check(ctx)`` generator; the registry
maps rule ids to classes so the CLI can select subsets by id and the
engine can instantiate the default set in a deterministic order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Type

from repro.quality.findings import Finding, Severity

#: rule id -> rule class, in registration order.
RULE_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = cls.rule_id
    if rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    RULE_REGISTRY[rule_id] = cls
    return cls


class Rule:
    """One lint rule.  Subclasses set the class attributes and ``check``."""

    rule_id: str = "RPL000"
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx) -> Iterator[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # makes every subclass's check a generator by contract

    # ------------------------------------------------------------------
    def finding(
        self, ctx, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        """Build a finding anchored at an AST node within ``ctx``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(ctx.lines):
            snippet = ctx.lines[line - 1].strip()
        return Finding(
            rule=self.rule_id,
            message=message,
            path=ctx.rel_path,
            line=line,
            col=col,
            severity=self.severity,
            snippet=snippet,
            symbol=symbol,
        )


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_NP_RNG_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
}


def classify_nondeterministic_call(call: ast.Call) -> Optional[str]:
    """A human-readable reason if the call is a determinism hazard.

    Recognized hazards: unseeded ``default_rng()``, any legacy
    ``np.random.*`` global-state function, any ``random.*`` module
    function (shared global state; ``random.Random(seed)`` is fine),
    wall-clock reads (``time.time`` and friends, ``datetime.now``/
    ``utcnow``/``today``), and ``uuid.uuid4``.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    last = parts[-1]
    if last == "default_rng" and not call.args and not call.keywords:
        return f"unseeded RNG: {name}() without a seed"
    if len(parts) >= 2:
        head, owner = parts[0], parts[-2]
        if owner == "random" and head in ("np", "numpy") and (
            last not in _NP_RNG_OK
        ):
            return f"legacy numpy global RNG: {name}()"
        if parts[:-1] == ["random"]:
            if last == "Random" and (call.args or call.keywords):
                return None
            return f"shared global RNG state: {name}()"
    if name in _WALL_CLOCK:
        return f"wall-clock read: {name}()"
    if last in ("now", "utcnow", "today") and (
        "datetime" in parts[:-1] or "date" in parts[:-1]
    ):
        return f"wall-clock read: {name}()"
    if last == "uuid4":
        return f"nondeterministic id: {name}()"
    return None


def function_local_names(func: ast.AST) -> set:
    """Names bound inside a function: params plus every Store target."""
    bound = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound
