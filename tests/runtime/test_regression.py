"""Tests for the benchmark-regression comparator and its CLI script."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.regression import (
    METRIC_SPECS,
    compare_metric,
    compare_reports,
    lookup,
    render_comparisons,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"


def sweep_report(speedup=7.0, samples_per_s=150e3, wall=0.1, **flags):
    return {
        "schema": "bench-sweep/1",
        "monte_carlo": {
            "speedup_batched_over_legacy": speedup,
            "batched_samples_per_second": samples_per_s,
            "bit_identical": flags.get("bit_identical", True),
            "parallel_bit_identical": flags.get(
                "parallel_bit_identical", True
            ),
        },
        "sweep_cache": {"hit_bit_identical": True},
        "artifact_pipeline": {"total_wall_seconds": wall},
    }


class TestLookup:
    def test_nested_path(self):
        assert lookup({"a": {"b": {"c": 3}}}, "a.b.c") == 3

    def test_missing_returns_none(self):
        assert lookup({"a": {}}, "a.b.c") is None
        assert lookup({}, "a") is None

    def test_non_dict_intermediate(self):
        assert lookup({"a": 5}, "a.b") is None


class TestCompareMetric:
    def test_higher_better_within_tolerance(self):
        c = compare_metric("m", "higher_better", 10.0, 6.0, 0.5)
        assert not c.regressed

    def test_higher_better_regression(self):
        c = compare_metric("m", "higher_better", 10.0, 4.0, 0.5)
        assert c.regressed

    def test_lower_better_within_tolerance(self):
        c = compare_metric("m", "lower_better", 1.0, 1.4, 0.5)
        assert not c.regressed

    def test_lower_better_regression(self):
        c = compare_metric("m", "lower_better", 1.0, 1.6, 0.5)
        assert c.regressed

    def test_exact_true_passes_and_fails(self):
        assert not compare_metric("m", "exact_true", True, True, 0.5).regressed
        assert compare_metric("m", "exact_true", True, False, 0.5).regressed

    def test_exact_true_ignores_tolerance(self):
        assert compare_metric("m", "exact_true", True, False, 99.0).regressed

    def test_missing_fresh_is_regression(self):
        c = compare_metric("m", "higher_better", 10.0, None, 0.5)
        assert c.regressed

    def test_missing_baseline_is_skipped(self):
        c = compare_metric("m", "higher_better", None, 10.0, 0.5)
        assert not c.regressed
        assert "new metric" in c.detail

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            compare_metric("m", "sideways_better", 1.0, 1.0, 0.5)


@pytest.mark.smoke
class TestCompareReports:
    def test_identical_reports_pass(self):
        report = sweep_report()
        comparisons = compare_reports(report, report, tolerance=0.0)
        assert comparisons
        assert not any(c.regressed for c in comparisons)

    def test_speedup_collapse_is_caught(self):
        comparisons = compare_reports(
            sweep_report(speedup=7.0), sweep_report(speedup=2.0),
            tolerance=0.5,
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "monte_carlo.speedup_batched_over_legacy" in regressed

    def test_bit_identity_break_is_caught_at_any_tolerance(self):
        comparisons = compare_reports(
            sweep_report(), sweep_report(bit_identical=False),
            tolerance=10.0,
        )
        assert any(
            c.regressed and c.metric == "monte_carlo.bit_identical"
            for c in comparisons
        )

    def test_schema_mismatch_raises(self):
        iss = {"schema": "bench-iss/1"}
        with pytest.raises(ValueError):
            compare_reports(iss, sweep_report())

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError):
            compare_reports({"schema": "x/9"}, {"schema": "x/9"})

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            compare_reports(sweep_report(), sweep_report(), tolerance=-0.1)

    def test_every_schema_has_specs(self):
        assert set(METRIC_SPECS) == {
            "bench-iss/1", "bench-iss/2", "bench-sweep/1", "bench-obs/1",
            "bench-obs/2", "bench-serve/1", "bench-lint/1",
            "bench-lint/2",
        }

    def test_iss_v2_extends_v1(self):
        """Every v1 gate survives in v2: the bench grew, never shrank."""
        assert set(METRIC_SPECS["bench-iss/1"]) <= set(
            METRIC_SPECS["bench-iss/2"]
        )

    def test_obs_v2_extends_v1(self):
        assert set(METRIC_SPECS["bench-obs/1"]) <= set(
            METRIC_SPECS["bench-obs/2"]
        )

    def test_render_lists_every_metric(self):
        comparisons = compare_reports(sweep_report(), sweep_report())
        text = render_comparisons(comparisons, label="x")
        for c in comparisons:
            assert c.metric in text


def obs_report(under_budget=True, bit_identical=True, off_frac=0.01):
    return {
        "schema": "bench-obs/1",
        "workload": "matmul-int",
        "tracing_off_overhead_fraction": off_frac,
        "tracing_on_overhead_fraction": 0.05,
        "tracing_off_overhead_under_2pct": under_budget,
        "bit_identical": bit_identical,
    }


def obs_v2_report(
    under_budget=True,
    bit_identical=True,
    profiler_under_budget=True,
    profiler_sampled=True,
):
    return {
        "schema": "bench-obs/2",
        "workload": "matmul-int",
        "tracing_off_overhead_fraction": 0.01,
        "tracing_on_overhead_fraction": 0.05,
        "profiler_on_overhead_fraction": 0.02,
        "profiler_samples": 9 if profiler_sampled else 0,
        "tracing_off_overhead_under_2pct": under_budget,
        "profiler_overhead_under_5pct": profiler_under_budget,
        "profiler_sampled": profiler_sampled,
        "bit_identical": bit_identical,
    }


class TestBenchObsSpecs:
    """The bench-obs schema gates only on its boolean invariants."""

    def test_identical_reports_pass(self):
        report = obs_report()
        assert not any(
            c.regressed
            for c in compare_reports(report, report, tolerance=0.0)
        )

    def test_overhead_budget_break_is_caught(self):
        comparisons = compare_reports(
            obs_report(), obs_report(under_budget=False, off_frac=0.08),
            tolerance=10.0,
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "tracing_off_overhead_under_2pct" in regressed

    def test_bit_identity_break_is_caught(self):
        comparisons = compare_reports(
            obs_report(), obs_report(bit_identical=False)
        )
        assert any(
            c.regressed and c.metric == "bit_identical"
            for c in comparisons
        )

    def test_overhead_fraction_is_not_gated(self):
        # Noise-scale numbers: a worse fraction alone must not fail as
        # long as the budget boolean holds.
        comparisons = compare_reports(
            obs_report(off_frac=0.001), obs_report(off_frac=0.019),
            tolerance=0.0,
        )
        assert not any(c.regressed for c in comparisons)


class TestBenchObsV2Specs:
    """The profiler arm's gates ride the same boolean machinery."""

    def test_identical_reports_pass(self):
        report = obs_v2_report()
        assert not any(
            c.regressed
            for c in compare_reports(report, report, tolerance=0.0)
        )

    def test_profiler_budget_break_is_caught(self):
        comparisons = compare_reports(
            obs_v2_report(), obs_v2_report(profiler_under_budget=False),
            tolerance=10.0,
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "profiler_overhead_under_5pct" in regressed

    def test_silent_sampler_is_caught(self):
        comparisons = compare_reports(
            obs_v2_report(), obs_v2_report(profiler_sampled=False),
        )
        assert any(
            c.regressed and c.metric == "profiler_sampled"
            for c in comparisons
        )

    def test_v1_vs_v2_schema_mismatch_raises(self):
        with pytest.raises(ValueError):
            compare_reports(obs_report(), obs_v2_report())


def serve_report(speedup=5.0, gate=True, bit_equal=True, p99=8.0):
    return {
        "schema": "bench-serve/1",
        "speedup_batched_over_serial": speedup,
        "batched": {"qps": 2500.0 * speedup / 5.0},
        "open_loop": {"p99_ms": p99, "all_ok": True},
        "speedup_at_least_3x": gate,
        "bit_equal_responses": bit_equal,
        "clean_shutdown": True,
    }


class TestBenchServeSpecs:
    """bench-serve gates throughput, tail latency, and its booleans."""

    def test_identical_reports_pass(self):
        report = serve_report()
        assert not any(
            c.regressed
            for c in compare_reports(report, report, tolerance=0.0)
        )

    def test_speedup_collapse_is_caught(self):
        comparisons = compare_reports(
            serve_report(speedup=5.0), serve_report(speedup=1.5)
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "speedup_batched_over_serial" in regressed

    def test_gate_booleans_are_exact(self):
        # Even at huge tolerance, losing the 3x gate or bit-equality
        # regresses.
        comparisons = compare_reports(
            serve_report(),
            serve_report(speedup=2.0, gate=False, bit_equal=False),
            tolerance=10.0,
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "speedup_at_least_3x" in regressed
        assert "bit_equal_responses" in regressed

    def test_tail_latency_blowup_is_caught(self):
        comparisons = compare_reports(
            serve_report(p99=5.0), serve_report(p99=50.0), tolerance=0.75
        )
        regressed = {c.metric for c in comparisons if c.regressed}
        assert "open_loop.p99_ms" in regressed


class TestScript:
    def run_script(self, tmp_path, baseline, fresh, tolerance="0.5"):
        b = tmp_path / "baseline.json"
        f = tmp_path / "fresh.json"
        b.write_text(json.dumps(baseline))
        f.write_text(json.dumps(fresh))
        return subprocess.run(
            [
                sys.executable, str(SCRIPT),
                "--baseline", str(b), "--fresh", str(f),
                "--tolerance", tolerance,
            ],
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_pass(self, tmp_path):
        proc = self.run_script(tmp_path, sweep_report(), sweep_report())
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

    def test_exit_one_on_regression(self, tmp_path):
        proc = self.run_script(
            tmp_path, sweep_report(speedup=7.0), sweep_report(speedup=1.0)
        )
        assert proc.returncode == 1
        assert "REGRESSED" in proc.stdout

    def test_exit_two_on_missing_file(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable, str(SCRIPT),
                "--baseline", str(tmp_path / "nope.json"),
                "--fresh", str(tmp_path / "nope.json"),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2

    def test_exit_zero_against_committed_baselines(self, tmp_path):
        """The committed baselines must pass against themselves."""
        for name in (
            "BENCH_iss.json", "BENCH_sweep.json", "BENCH_obs.json",
        ):
            committed = REPO_ROOT / "benchmarks" / "output" / name
            baseline = json.loads(committed.read_text())
            proc = self.run_script(tmp_path, baseline, baseline)
            assert proc.returncode == 0, proc.stdout + proc.stderr
