"""The continuous sampling profiler: aggregation, exports, lifecycle."""

import json
import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    ProfileReport,
    SamplingProfiler,
    profile_call,
)


def spin(seconds: float) -> int:
    """A recognizable CPU-bound leaf for the sampler to catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += 1
    return total


def sample_report(**overrides) -> ProfileReport:
    """A hand-built two-thread report with a known timeline."""
    base = dict(
        hz=100.0,
        duration_s=0.05,
        ticks=5,
        folded={
            (1, "MainThread"): {"main.run;main.leaf": 3, "main.run": 2},
            (2, "worker"): {"worker.loop": 5},
        },
        timeline=[
            (0, 1, "main.run;main.leaf"),
            (0, 2, "worker.loop"),
            (10_000_000, 1, "main.run;main.leaf"),
            (10_000_000, 2, "worker.loop"),
            (20_000_000, 1, "main.run"),
        ],
        pid=4242,
        self_seconds=0.001,
    )
    base.update(overrides)
    return ProfileReport(**base)


class TestLiveSampling:
    def test_profile_call_captures_the_busy_leaf(self):
        _, report = profile_call(spin, 0.15, hz=200.0)
        assert report.samples > 0
        assert report.ticks > 0
        assert "spin" in report.to_collapsed()

    def test_sampler_thread_excludes_itself(self):
        _, report = profile_call(spin, 0.1, hz=200.0)
        for (_tid, name) in report.folded:
            assert name != "repro-profiler"

    def test_snapshot_while_running(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        try:
            spin(0.1)
            report = profiler.snapshot()
            assert report.ticks > 0
            assert profiler.running
        finally:
            profiler.stop()

    def test_self_overhead_is_accounted_and_small(self):
        _, report = profile_call(spin, 0.1, hz=100.0)
        assert report.self_seconds > 0.0
        assert report.self_fraction < 0.05

    def test_start_twice_raises(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            SamplingProfiler().stop()

    def test_restart_clears_previous_session(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        spin(0.05)
        first = profiler.stop()
        profiler.start()
        second = profiler.stop()
        assert second.ticks <= first.ticks
        assert second.samples <= first.samples

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0.0)

    def test_registry_gauges_published_on_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        profiler = SamplingProfiler(hz=500.0, registry=registry)
        profiler.start()
        spin(0.05)
        profiler.stop()
        assert registry.gauge("profiler.ticks").value > 0

    def test_multiple_threads_attributed_separately(self):
        done = threading.Event()

        def worker():
            while not done.is_set():
                spin(0.01)

        thread = threading.Thread(target=worker, name="busy-worker")
        thread.start()
        try:
            _, report = profile_call(spin, 0.15, hz=200.0)
        finally:
            done.set()
            thread.join()
        names = {name for _tid, name in report.folded}
        assert "busy-worker" in names
        assert len(names) >= 2


class TestCollapsedExport:
    def test_lines_sorted_by_count_then_stack(self):
        text = sample_report().to_collapsed()
        lines = text.strip().split("\n")
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)
        assert lines[0] == "worker;worker.loop 5"

    def test_thread_names_root_each_stack(self):
        text = sample_report().to_collapsed()
        assert "MainThread;main.run;main.leaf 3" in text

    def test_merging_without_thread_names(self):
        report = sample_report(
            folded={
                (1, "a"): {"f;g": 2},
                (2, "b"): {"f;g": 3},
            }
        )
        assert report.to_collapsed(thread_names=False).strip() == "f;g 5"

    def test_write_collapsed_roundtrip(self, tmp_path):
        path = tmp_path / "profile.collapsed"
        n_lines = sample_report().write_collapsed(path)
        on_disk = path.read_text(encoding="utf-8")
        assert n_lines == len(on_disk.strip().split("\n"))
        for line in on_disk.strip().split("\n"):
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_deterministic_for_equal_inputs(self):
        assert sample_report().to_collapsed() == sample_report().to_collapsed()

    def test_empty_report(self):
        report = sample_report(folded={}, timeline=[], ticks=0)
        assert report.to_collapsed() == ""
        assert report.samples == 0


class TestChromeTraceExport:
    def test_json_roundtrip_and_event_shape(self):
        trace = sample_report().to_chrome_trace()
        decoded = json.loads(json.dumps(trace))
        assert decoded["traceEvents"]
        for event in decoded["traceEvents"]:
            assert event["ph"] == "X"
            assert event["pid"] == 4242
            assert event["tid"] in (1, 2)
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_field_order_is_deterministic(self):
        first = json.dumps(sample_report().to_chrome_trace(), sort_keys=True)
        second = json.dumps(sample_report().to_chrome_trace(), sort_keys=True)
        assert first == second

    def test_consecutive_identical_samples_merge(self):
        # main.run spans all three ticks (one event); main.leaf spans
        # the first two; worker.loop spans its two ticks.
        events = sample_report().to_chrome_trace()["traceEvents"]
        names = [e["name"] for e in events]
        assert names.count("main.run") == 1
        assert names.count("main.leaf") == 1
        assert names.count("worker.loop") == 1

    def test_merged_event_duration_covers_the_run(self):
        events = sample_report().to_chrome_trace()["traceEvents"]
        run = next(e for e in events if e["name"] == "main.run")
        # 3 ticks at 10 ms apart + one trailing period = 30 ms in us.
        assert run["dur"] == pytest.approx(30_000.0)

    def test_stack_nesting_preserved(self):
        events = sample_report().to_chrome_trace()["traceEvents"]
        run = next(e for e in events if e["name"] == "main.run")
        leaf = next(e for e in events if e["name"] == "main.leaf")
        assert run["ts"] <= leaf["ts"]
        assert leaf["ts"] + leaf["dur"] <= run["ts"] + run["dur"]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "profile.trace.json"
        n_events = sample_report().write_chrome_trace(path)
        decoded = json.loads(path.read_text(encoding="utf-8"))
        assert len(decoded["traceEvents"]) == n_events
        assert decoded["metadata"]["profiler_hz"] == 100.0

    def test_live_trace_has_pid_and_tid(self):
        _, report = profile_call(spin, 0.1, hz=200.0)
        events = report.to_chrome_trace()["traceEvents"]
        assert events
        import os

        assert all(e["pid"] == os.getpid() for e in events)


class TestJsonReport:
    def test_to_json_is_jsonable_and_complete(self):
        payload = sample_report().to_json()
        decoded = json.loads(json.dumps(payload))
        assert decoded["schema"] == "repro-profile/1"
        assert decoded["samples"] == 10
        assert decoded["hz"] == 100.0
        assert "MainThread (tid=1)" in decoded["threads"]

    def test_render_text_mentions_hot_stack(self):
        text = sample_report().render_text(top=2)
        assert "worker.loop" in text
        assert "10 samples" in text

    def test_render_text_empty(self):
        report = sample_report(folded={}, timeline=[], ticks=0)
        assert "no profile samples" in report.render_text()
