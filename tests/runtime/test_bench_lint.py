"""The BENCH_lint harness: parity, artifact shape, gate booleans."""

import json
from pathlib import Path

from repro.runtime.bench_lint import run_lint_bench


def seed_tree(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "b.py").write_text("y = 2\n", encoding="utf-8")


class TestBenchLint:
    def test_report_shape_and_parity(self, tmp_path, monkeypatch):
        seed_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        report = run_lint_bench(target=Path("."), repeats=1)
        assert report["schema"] == "bench-lint/2"
        assert report["files_checked"] == 2
        assert report["parity"] is True
        assert report["lint_clean"] is True
        assert report["serial_wall_seconds"] > 0
        assert report["parallel_wall_seconds"] > 0

    def test_artifact_written(self, tmp_path, monkeypatch):
        seed_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "out" / "BENCH_lint.json"
        report = run_lint_bench(
            output_path=out, target=Path("."), repeats=1
        )
        on_disk = json.loads(out.read_text(encoding="utf-8"))
        assert on_disk == report

    def test_findings_counted_not_hidden(self, tmp_path, monkeypatch):
        (tmp_path / "bad.py").write_text(
            "total = static_j + dynamic_kwh\n", encoding="utf-8"
        )
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        report = run_lint_bench(target=Path("."), repeats=1)
        assert report["findings"] >= 1
        assert report["lint_clean"] is False
        assert report["parity"] is True
