"""RPL002 — determinism of model code.

Every figure and artifact must be bit-reproducible under a fixed seed:
PR 2's content-addressed manifest hashes artifact bytes, so a single
unseeded RNG draw or wall-clock read inside model code silently breaks
the reproducibility contract without failing any test.

This rule flags, in model code:

- ``np.random.default_rng()`` with no seed;
- legacy ``np.random.*`` global-state functions;
- ``random.*`` module functions (shared global state; a seeded
  ``random.Random(seed)`` instance is fine);
- wall-clock reads (``time.time``/``perf_counter``/``monotonic`` and
  ``datetime.now``/``utcnow``/``today``) and ``uuid.uuid4``.

The ``runtime`` and ``obs`` packages are exempt: perf counters,
benchmark harnesses, and the tracing layer measure wall time on
purpose.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import (
    Rule,
    classify_nondeterministic_call,
    register,
)

#: Path components whose files may legitimately read clocks / entropy.
EXEMPT_COMPONENTS: FrozenSet[str] = frozenset({"runtime", "obs"})


@register
class DeterminismRule(Rule):
    """Flag nondeterminism sources (RNG, clocks) outside ``runtime/``."""

    rule_id = "RPL002"
    severity = Severity.ERROR
    summary = "no unseeded RNG or wall-clock reads in model code"

    def check(self, ctx) -> Iterator[Finding]:
        if EXEMPT_COMPONENTS.intersection(ctx.parts[:-1]):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = classify_nondeterministic_call(node)
            if reason is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{reason} in model code breaks seeded "
                    f"reproducibility; thread a seeded generator / "
                    f"timestamp in from the caller",
                )
