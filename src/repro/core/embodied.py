"""C_embodied: embodied carbon per wafer, per die, and per good die.

Implements Equation 2 of the paper,

    C_embodied = (MPA + GPA + CI_fab * EPA_f) * Area,

with the 2015-ITRS facility overhead EPA_f = 1.4 * EPA, and Equation 5,

    C_embodied(good die) = C_embodied(wafer) / (N_diePerWafer * Yield).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import units
from repro.core.carbon_intensity import ConstantCarbonIntensity
from repro.core.gas import GasEmissionsModel
from repro.core.materials import MaterialsModel
from repro.errors import CarbonModelError
from repro.fab import energy_data
from repro.fab.flow import ProcessFlow


@dataclass(frozen=True)
class EmbodiedCarbonResult:
    """Embodied-carbon breakdown for one process on one grid.

    All carbon values in gCO2e; per-area values in gCO2e/cm^2.
    """

    process_name: str
    grid_name: str
    ci_fab_g_per_kwh: float
    epa_kwh_per_wafer: float
    epa_facility_kwh_per_wafer: float
    mpa_g_per_cm2: float
    gpa_g_per_cm2: float
    energy_carbon_g_per_cm2: float
    wafer_area_cm2: float

    @property
    def total_g_per_cm2(self) -> float:
        """(MPA + GPA + CI_fab * EPA_f) per cm^2."""
        return self.mpa_g_per_cm2 + self.gpa_g_per_cm2 + self.energy_carbon_g_per_cm2

    @property
    def per_wafer_g(self) -> float:
        """C_embodied per wafer in gCO2e."""
        return self.total_g_per_cm2 * self.wafer_area_cm2

    @property
    def per_wafer_kg(self) -> float:
        return self.per_wafer_g / 1000.0

    def for_area(self, area_cm2: float) -> float:
        """Equation 2 for an arbitrary silicon area (gCO2e)."""
        if area_cm2 < 0:
            raise CarbonModelError(f"area must be >= 0, got {area_cm2}")
        return self.total_g_per_cm2 * area_cm2

    def per_die_g(self, dies_per_wafer: float) -> float:
        """C_embodied per (not-necessarily-good) die."""
        if dies_per_wafer <= 0:
            raise CarbonModelError(
                f"dies per wafer must be > 0, got {dies_per_wafer}"
            )
        return self.per_wafer_g / dies_per_wafer

    def per_good_die_g(self, dies_per_wafer: float, yield_fraction: float) -> float:
        """Equation 5: C_embodied per good die, amortizing yield loss."""
        if not (0.0 < yield_fraction <= 1.0):
            raise CarbonModelError(
                f"yield must be in (0, 1], got {yield_fraction}"
            )
        return self.per_die_g(dies_per_wafer) / yield_fraction

    def breakdown_per_wafer_g(self) -> Dict[str, float]:
        """MPA / GPA / fab-energy contributions per wafer (gCO2e)."""
        return {
            "materials (MPA)": self.mpa_g_per_cm2 * self.wafer_area_cm2,
            "gases (GPA)": self.gpa_g_per_cm2 * self.wafer_area_cm2,
            "fab energy (CI_fab * EPA_f)": (
                self.energy_carbon_g_per_cm2 * self.wafer_area_cm2
            ),
        }


class EmbodiedCarbonModel:
    """Combines a process flow with MPA/GPA models to evaluate Eq. 2.

    Args:
        flow: The fabrication :class:`ProcessFlow` (provides EPA and wafer
            geometry).
        materials: MPA model; defaults to the bare-wafer model.
        gas: GPA model; defaults to the Eq. 3 iN7-anchored model.
        facility_overhead: EPA_f multiplier (ITRS 2015: 1.4).
    """

    def __init__(
        self,
        flow: ProcessFlow,
        materials: Optional[MaterialsModel] = None,
        gas: Optional[GasEmissionsModel] = None,
        facility_overhead: float = energy_data.FACILITY_ENERGY_OVERHEAD,
    ) -> None:
        if facility_overhead < 1.0:
            raise CarbonModelError(
                f"facility overhead must be >= 1, got {facility_overhead}"
            )
        self.flow = flow
        self.materials = materials if materials is not None else MaterialsModel()
        self.gas = gas if gas is not None else GasEmissionsModel()
        self.facility_overhead = facility_overhead

    @property
    def epa_kwh(self) -> float:
        """EPA of the flow, kWh per wafer (before facility overhead)."""
        return self.flow.total_energy_kwh()

    @property
    def epa_facility_kwh(self) -> float:
        """EPA_f = facility_overhead * EPA (kWh per wafer)."""
        return self.epa_kwh * self.facility_overhead

    def evaluate(
        self, ci_fab: "ConstantCarbonIntensity | float | str"
    ) -> EmbodiedCarbonResult:
        """Evaluate Equation 2 for a fabrication grid.

        Args:
            ci_fab: A grid name (``"us"``), a gCO2e/kWh value, or a
                :class:`ConstantCarbonIntensity`.
        """
        if isinstance(ci_fab, str):
            ci = ConstantCarbonIntensity.from_grid(ci_fab)
        elif isinstance(ci_fab, (int, float)):
            ci = ConstantCarbonIntensity(float(ci_fab))  # repro-lint: disable=RPL013 - isinstance-guarded normalization of a scalar grid value
        else:
            ci = ci_fab
        wafer_area = units.wafer_area_cm2(self.flow.wafer_diameter_mm)
        epa_f_kwh_per_cm2 = self.epa_facility_kwh / wafer_area
        return EmbodiedCarbonResult(
            process_name=self.flow.name,
            grid_name=ci.name or f"{ci.value_g_per_kwh:g} gCO2e/kWh",
            ci_fab_g_per_kwh=ci.value_g_per_kwh,
            epa_kwh_per_wafer=self.epa_kwh,
            epa_facility_kwh_per_wafer=self.epa_facility_kwh,
            mpa_g_per_cm2=self.materials.mpa_g_per_cm2(),
            gpa_g_per_cm2=self.gas.gpa_for_flow_g_per_cm2(self.flow),
            energy_carbon_g_per_cm2=ci.value_g_per_kwh * epa_f_kwh_per_cm2,
            wafer_area_cm2=wafer_area,
        )

    def per_wafer_by_grid(
        self, grids: "Optional[Dict[str, float]]" = None
    ) -> Dict[str, EmbodiedCarbonResult]:
        """Evaluate across several grids (Fig. 2c's x-axis)."""
        from repro.core.carbon_intensity import GRIDS

        grid_map = grids if grids is not None else GRIDS
        return {name: self.evaluate(ci) for name, ci in grid_map.items()}
