"""Global-wire delay and repeater insertion.

Supports the eDRAM energy model's repeatered-bus factor with a physical
model: long on-chip wires are driven through periodically inserted
repeaters; the optimum spacing/sizing (classic Bakoglu analysis) fixes
both the achievable delay per millimeter and the energy overhead of the
repeaters relative to the bare wire — the
:data:`repro.edram.energy.BUS_REPEATER_FACTOR`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PhysicalDesignError

#: Wire parasitics for intermediate-level routing (48-64 nm pitch).
GLOBAL_WIRE_RES_OHM_PER_UM = 8.0
GLOBAL_WIRE_CAP_F_PER_UM = 0.20e-15

#: Driver characteristics of a unit repeater (inverter) in the library.
REPEATER_OUT_RES_OHM = 8_000.0  # unit-inverter output resistance
REPEATER_IN_CAP_F = 1.0e-15  # unit-inverter input capacitance


@dataclass(frozen=True)
class RepeaterDesign:
    """An optimally repeatered wire of a given length."""

    length_um: float
    n_repeaters: int
    repeater_size: float
    delay_s: float
    wire_energy_j: float
    repeater_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.wire_energy_j + self.repeater_energy_j

    @property
    def energy_overhead_factor(self) -> float:
        """Total switched energy relative to the bare wire: the physical
        origin of the bus repeater factor."""
        if self.wire_energy_j == 0:
            return 1.0
        return self.total_energy_j / self.wire_energy_j


def optimal_repeaters(
    length_um: float,
    vdd_v: float = 0.7,
    res_per_um: float = GLOBAL_WIRE_RES_OHM_PER_UM,
    cap_per_um: float = GLOBAL_WIRE_CAP_F_PER_UM,
) -> RepeaterDesign:
    """Bakoglu-style optimal repeater insertion for a wire.

    Optimal count  k = L * sqrt(0.4 r c / (0.7 R0 C0)),
    optimal sizing h = sqrt(R0 c / (r C0)),
    giving delay ~ 2 L sqrt(0.7 * 0.4 * r c R0 C0) — linear in length
    instead of quadratic.
    """
    if length_um <= 0:
        raise PhysicalDesignError(f"length must be > 0, got {length_um}")
    r, c = res_per_um, cap_per_um
    r0, c0 = REPEATER_OUT_RES_OHM, REPEATER_IN_CAP_F
    k = max(1, round(length_um * math.sqrt(0.4 * r * c / (0.7 * r0 * c0))))
    h = max(1.0, math.sqrt(r0 * c / (r * c0)))
    segment = length_um / k
    # Per segment: driver resistance R0/h into (wire + next repeater cap).
    seg_res = r * segment
    seg_cap = c * segment
    seg_delay = 0.7 * (r0 / h) * (seg_cap + h * c0) + seg_res * (
        0.4 * seg_cap + 0.7 * h * c0
    )
    wire_energy = c * length_um * vdd_v * vdd_v
    repeater_energy = k * h * c0 * vdd_v * vdd_v
    return RepeaterDesign(
        length_um=length_um,
        n_repeaters=k,
        repeater_size=h,
        delay_s=k * seg_delay,
        wire_energy_j=wire_energy,
        repeater_energy_j=repeater_energy,
    )


def unrepeated_delay_s(
    length_um: float,
    res_per_um: float = GLOBAL_WIRE_RES_OHM_PER_UM,
    cap_per_um: float = GLOBAL_WIRE_CAP_F_PER_UM,
) -> float:
    """Distributed-RC delay of a bare wire (0.4 R C, quadratic in L)."""
    if np.any(length_um <= 0):
        raise PhysicalDesignError(f"length must be > 0, got {length_um}")
    return 0.4 * (res_per_um * length_um) * (cap_per_um * length_um)
