"""One-at-a-time sensitivity (tornado) analysis of the tCDP verdict.

Fig. 6b shows how specific perturbations move the isoline; this module
generalizes it: perturb each model parameter by +/- a relative amount
and record the swing of the M3D-vs-all-Si tCDP ratio — identifying which
assumptions the paper's 1.02x conclusion is most sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List

from repro.core.uncertainty import ScenarioParameters
from repro.errors import CarbonModelError


@dataclass(frozen=True)
class SensitivityEntry:
    """The tCDP ratio swing from perturbing one parameter."""

    parameter: str
    ratio_low: float  # tCDP ratio with the parameter scaled down
    ratio_high: float  # ... scaled up
    ratio_nominal: float

    @property
    def swing(self) -> float:
        return abs(self.ratio_high - self.ratio_low)

    @property
    def flips_verdict(self) -> bool:
        """True when the perturbation range crosses the ratio-1 line."""
        lo = min(self.ratio_low, self.ratio_high)
        hi = max(self.ratio_low, self.ratio_high)
        return lo < 1.0 < hi


#: Parameter -> transformation applying a multiplicative factor.
_PERTURBERS: Dict[str, Callable[[ScenarioParameters, float], ScenarioParameters]] = {
    "m3d_embodied_wafer": lambda p, f: replace(
        p, candidate_wafer_g=p.candidate_wafer_g * f
    ),
    "m3d_yield": lambda p, f: replace(
        p, candidate_yield=min(1.0, max(1e-3, p.candidate_yield * f))
    ),
    "si_yield": lambda p, f: replace(
        p, baseline_yield=min(1.0, max(1e-3, p.baseline_yield * f))
    ),
    "m3d_operational_power": lambda p, f: replace(
        p, candidate_op_per_month_g=p.candidate_op_per_month_g * f
    ),
    "si_operational_power": lambda p, f: replace(
        p, baseline_op_per_month_g=p.baseline_op_per_month_g * f
    ),
    "lifetime": lambda p, f: replace(
        p, lifetime_months=p.lifetime_months * f
    ),
    "ci_use": lambda p, f: replace(p, ci_use_scale=p.ci_use_scale * f),
    "m3d_dies_per_wafer": lambda p, f: replace(
        p, candidate_dies_per_wafer=p.candidate_dies_per_wafer * f
    ),
}


def _ratio(params: ScenarioParameters) -> float:
    # tradeoff_map() is memoized on the parameter set, so a clamped
    # perturbation that lands back on an already-seen scenario (or the
    # nominal one) reuses the existing map instead of rebuilding it.
    return params.tradeoff_map().ratio(1.0, 1.0)


def tornado_analysis(
    nominal: ScenarioParameters,
    relative_change: float = 0.25,
) -> List[SensitivityEntry]:
    """Perturb each parameter by +/- ``relative_change``; sort by swing.

    The nominal trade-off map is computed exactly once and shared by
    every entry; only genuinely perturbed scenarios build new maps.
    Returns entries sorted most-sensitive first (the tornado ordering).
    """
    if not (0.0 < relative_change < 1.0):
        raise CarbonModelError(
            f"relative change must be in (0, 1), got {relative_change}"
        )
    nominal_ratio = _ratio(nominal)
    entries: List[SensitivityEntry] = []
    for name, perturb in _PERTURBERS.items():
        low = _ratio(perturb(nominal, 1.0 - relative_change))
        high = _ratio(perturb(nominal, 1.0 + relative_change))
        entries.append(
            SensitivityEntry(
                parameter=name,
                ratio_low=low,
                ratio_high=high,
                ratio_nominal=nominal_ratio,
            )
        )
    return sorted(entries, key=lambda e: e.swing, reverse=True)


def render_tornado(entries: List[SensitivityEntry]) -> str:
    """Text tornado chart."""
    lines = [
        "SENSITIVITY - tCDP(M3D)/tCDP(all-Si) TORNADO (+/- 25% per parameter)",
        "-" * 76,
        f"{'parameter':24s} {'low':>8s} {'nominal':>8s} {'high':>8s} "
        f"{'swing':>8s}  {'flips?':>6s}",
    ]
    for e in entries:
        lines.append(
            f"{e.parameter:24s} {e.ratio_low:>8.4f} {e.ratio_nominal:>8.4f} "
            f"{e.ratio_high:>8.4f} {e.swing:>8.4f}  "
            f"{'YES' if e.flips_verdict else 'no':>6s}"
        )
    return "\n".join(lines)


def case_study_parameters(case, lifetime_months: float = 24.0) -> ScenarioParameters:
    """Extract :class:`ScenarioParameters` from a built case study."""
    per_month_m3d = case.m3d.total_carbon.operational.carbon_per_month_g(
        case.m3d.total_carbon.scenario.with_lifetime(1.0)
    )
    per_month_si = case.all_si.total_carbon.operational.carbon_per_month_g(
        case.all_si.total_carbon.scenario.with_lifetime(1.0)
    )
    return ScenarioParameters(
        candidate_wafer_g=case.m3d.embodied.per_wafer_g,
        candidate_dies_per_wafer=case.m3d.dies_per_wafer,
        candidate_yield=case.m3d.yield_fraction,
        candidate_op_per_month_g=per_month_m3d,
        baseline_wafer_g=case.all_si.embodied.per_wafer_g,
        baseline_dies_per_wafer=case.all_si.dies_per_wafer,
        baseline_yield=case.all_si.yield_fraction,
        baseline_op_per_month_g=per_month_si,
        lifetime_months=lifetime_months,
        execution_time_ratio=(
            case.m3d.execution_time_s / case.all_si.execution_time_s
        ),
    )
