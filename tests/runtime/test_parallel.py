"""Parallel suite-runner tests: ordering, fallback, cache integration."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.parallel import (
    resolve_jobs,
    run_workloads,
    run_workloads_vector,
)
from repro.workloads import fib, matmul_int, sort


@pytest.fixture
def tiny_suite():
    return [
        matmul_int.workload(n=4, repeats=1, tune=1, pads=0),
        fib.workload(k=8, repeats=2),
        sort.workload(length=8, repeats=1),
    ]


class TestResolveJobs:
    def test_explicit_clamped_to_tasks(self):
        assert resolve_jobs(8, 3) == 3
        assert resolve_jobs(2, 3) == 2

    def test_auto_at_least_one(self):
        assert resolve_jobs(None, 0) == 1
        assert resolve_jobs(None, 100) >= 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_jobs(0, 3)


@pytest.mark.smoke
class TestSerial:
    def test_order_and_correctness(self, tiny_suite):
        report = run_workloads(tiny_suite, jobs=1, cache=False)
        assert [r.workload.name for r in report.results] == [
            w.name for w in tiny_suite
        ]
        assert all(r.correct for r in report.results)
        assert report.jobs == 1
        assert report.cache_hits == 0
        assert report.cache_misses == len(tiny_suite)

    def test_perf_entries_align_with_results(self, tiny_suite):
        report = run_workloads(tiny_suite, jobs=1, cache=False)
        assert len(report.perfs) == len(report.results)
        for perf, result in zip(report.perfs, report.results):
            assert perf.name == result.workload.name
            assert perf.cycles == result.cycles
            assert perf.instructions == result.instructions
            assert not perf.cached
            assert perf.wall_seconds > 0
        assert report.wall_seconds > 0
        assert report.mips > 0


class TestPool:
    def test_multi_worker_matches_serial(self, tiny_suite):
        """Pool execution (or its serial fallback) is order-identical."""
        serial = run_workloads(tiny_suite, jobs=1, cache=False)
        pooled = run_workloads(tiny_suite, jobs=2, cache=False)
        assert [r.workload.name for r in pooled.results] == [
            r.workload.name for r in serial.results
        ]
        for a, b in zip(pooled.results, serial.results):
            assert a.checksum == b.checksum
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions


class TestCacheIntegration:
    def test_second_run_all_hits(self, tiny_suite, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_workloads(tiny_suite, cache=cache)
        assert cold.cache_hits == 0
        warm = run_workloads(tiny_suite, cache=cache)
        assert warm.cache_hits == len(tiny_suite)
        assert warm.cache_misses == 0
        assert all(p.cached for p in warm.perfs)
        for a, b in zip(cold.results, warm.results):
            assert a.checksum == b.checksum
            assert a.cycles == b.cycles

    def test_partial_warm(self, tiny_suite, tmp_path):
        cache = ResultCache(tmp_path)
        run_workloads(tiny_suite[:1], cache=cache)
        report = run_workloads(tiny_suite, cache=cache)
        assert report.cache_hits == 1
        assert report.cache_misses == len(tiny_suite) - 1
        assert [r.workload.name for r in report.results] == [
            w.name for w in tiny_suite
        ]

    def test_cache_false_disables(self, tiny_suite, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        run_workloads(tiny_suite[:1], jobs=1, cache=False)
        assert not (tmp_path / "env-cache").exists()


class TestVectorRunner:
    @pytest.fixture
    def mixed_suite(self):
        """8 seed variants (one vector group) plus two singleton programs."""
        variants = [
            matmul_int.seed_variant(12345 + 7919 * i, n=8, repeats=2, tune=5)
            for i in range(8)
        ]
        return variants + [
            fib.workload(k=8, repeats=2),
            sort.workload(length=8, repeats=1),
        ]

    def test_bit_identical_to_scalar_runner(self, mixed_suite):
        scalar = run_workloads(mixed_suite, jobs=1, cache=False)
        vector = run_workloads_vector(mixed_suite, jobs=1, cache=False)
        assert vector.vector_groups == 1
        assert vector.vector_lanes == 8
        assert [r.workload.name for r in vector.results] == [
            w.name for w in mixed_suite
        ]
        for a, b in zip(vector.results, scalar.results):
            assert a.checksum == b.checksum
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.program_reads == b.program_reads
            assert a.data_reads == b.data_reads
            assert a.data_writes == b.data_writes
            assert abs(a.activity_factor - b.activity_factor) < 1e-15

    def test_cache_warm_rerun_all_hits(self, mixed_suite, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_workloads_vector(mixed_suite, cache=cache)
        assert cold.cache_hits == 0
        assert cold.vector_lanes == 8
        warm = run_workloads_vector(mixed_suite, cache=cache)
        assert warm.cache_hits == len(mixed_suite)
        assert warm.vector_groups == 0
        for a, b in zip(cold.results, warm.results):
            assert a.checksum == b.checksum
            assert a.cycles == b.cycles

    def test_seed_variants_have_distinct_cache_keys(self, tmp_path):
        """Same source, different data words: entries must not collide."""
        variants = [
            matmul_int.seed_variant(s, n=8, repeats=1, tune=1)
            for s in (1, 2)
        ]
        cache = ResultCache(tmp_path)
        run_workloads_vector(variants, cache=cache)
        report = run_workloads_vector(list(reversed(variants)), cache=cache)
        assert report.cache_hits == 2
        for workload, result in zip(reversed(variants), report.results):
            assert result.workload.name == workload.name
            assert result.checksum == workload.expected_checksum

    def test_all_singletons_degenerates_to_scalar_path(self, tiny_suite):
        report = run_workloads_vector(tiny_suite, jobs=1, cache=False)
        assert report.vector_groups == 0
        assert report.vector_lanes == 0
        assert all(r.correct for r in report.results)


class TestSuiteStudyIntegration:
    def test_suite_study_cached_rows_identical(self, tmp_path):
        from repro.analysis.suite_study import run_suite_study

        cache = ResultCache(tmp_path)
        cold = run_suite_study(cache=cache, jobs=1)
        warm = run_suite_study(cache=cache, jobs=1)
        assert cache.hits >= 8
        assert len(cold) == len(warm) == 8
        for a, b in zip(cold, warm):
            assert a.__dict__ == b.__dict__

    def test_suite_study_vector_rows_identical(self, tmp_path):
        from repro.analysis.suite_study import (
            run_suite_study,
            seed_variant_configs,
        )

        configs = seed_variant_configs(4)
        scalar = run_suite_study(configs=configs, jobs=1, cache=False)
        vector = run_suite_study(
            configs=configs, jobs=1, cache=False, vector=True
        )
        assert len(scalar) == len(vector) == 4
        for a, b in zip(scalar, vector):
            assert a.__dict__ == b.__dict__
