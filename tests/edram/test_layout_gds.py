"""Tests for the GDS writer/reader and the M3D cell layout."""

import pytest

from repro.edram.bitcell import m3d_bitcell
from repro.edram.layout import (
    M3D_LAYER_MAP,
    build_m3d_cell_layout,
    cross_section_ascii,
    layer_by_name,
    layer_map_table,
)
from repro.fab.gds import GdsError, GdsLibrary, GdsRect, _parse_real8, _real8


class TestGdsPrimitives:
    def test_rect_validation(self):
        with pytest.raises(GdsError, match="degenerate"):
            GdsRect(1, 10, 10, 10, 20)
        with pytest.raises(GdsError, match="layer"):
            GdsRect(300, 0, 0, 1, 1)

    def test_rect_dims(self):
        r = GdsRect(1, 0, 0, 30, 40)
        assert r.width == 30
        assert r.height == 40

    @pytest.mark.parametrize(
        "value", [1.0, 1e-3, 1e-9, 0.5, 123.456, 0.0]
    )
    def test_real8_roundtrip(self, value):
        assert _parse_real8(_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_duplicate_structure(self):
        lib = GdsLibrary()
        lib.new_structure("a")
        with pytest.raises(GdsError, match="duplicate"):
            lib.new_structure("a")

    def test_empty_structure_bbox(self):
        lib = GdsLibrary()
        s = lib.new_structure("a")
        with pytest.raises(GdsError, match="empty"):
            s.bounding_box()


class TestGdsRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        lib = GdsLibrary("TESTLIB")
        s = lib.new_structure("cell")
        s.add(GdsRect(5, 0, 0, 100, 200))
        s.add(GdsRect(7, -50, -60, 10, 20, datatype=3))
        path = tmp_path / "out.gds"
        lib.write(path)

        loaded = GdsLibrary.read(path)
        assert loaded.name == "TESTLIB"
        assert set(loaded.structures) == {"cell"}
        rects = loaded.structures["cell"].rects
        assert len(rects) == 2
        assert rects[0] == GdsRect(5, 0, 0, 100, 200)
        assert rects[1] == GdsRect(7, -50, -60, 10, 20, datatype=3)

    def test_bytes_start_with_header(self):
        raw = GdsLibrary().to_bytes()
        # HEADER record: length 6, type 0x00, datatype INT16.
        assert raw[:4] == b"\x00\x06\x00\x02"

    def test_records_even_length(self):
        raw = GdsLibrary("ODD").to_bytes()
        assert len(raw) % 2 == 0


class TestLayerMap:
    def test_monotone_z(self):
        zs = [info.z_nm for info in M3D_LAYER_MAP]
        assert zs == sorted(zs)

    def test_unique_gds_layers(self):
        layers = [info.gds_layer for info in M3D_LAYER_MAP]
        assert len(layers) == len(set(layers))

    def test_fifteen_metals(self):
        metals = [i for i in M3D_LAYER_MAP if i.name.startswith("M")]
        assert len(metals) == 15

    def test_tier_ordering_matches_fig2b(self):
        tiers = []
        for info in M3D_LAYER_MAP:
            if info.tier not in tiers:
                tiers.append(info.tier)
        assert tiers == ["si", "cnfet1", "cnfet2", "igzo", "top-metal"]

    def test_layer_lookup(self):
        assert layer_by_name("igzo_active").thickness_nm == 10.0  # 10 nm film
        assert layer_by_name("cnt1_active").thickness_nm == 2.0  # ~2 nm CNTs
        with pytest.raises(KeyError):
            layer_by_name("unobtainium")

    def test_layer_map_table(self):
        table = layer_map_table()
        assert len(table) == len(M3D_LAYER_MAP)
        assert all("z_nm" in row for row in table)


class TestCellLayout:
    def test_layout_fits_cell_footprint(self):
        cell = m3d_bitcell()
        library = build_m3d_cell_layout(cell)
        x0, y0, x1, y1 = library.structures["bitcell_3t"].bounding_box()
        assert x1 - x0 <= cell.cell_width_um * 1000
        assert y1 - y0 <= cell.cell_height_um * 1000

    def test_layout_uses_all_tiers(self):
        library = build_m3d_cell_layout()
        layers = library.structures["bitcell_3t"].layers()
        tiers_used = {
            info.tier for info in M3D_LAYER_MAP if info.gds_layer in layers
        }
        assert {"si", "cnfet1", "igzo"} <= tiers_used

    def test_layout_roundtrips_through_gds(self, tmp_path):
        library = build_m3d_cell_layout()
        path = tmp_path / "cell.gds"
        library.write(path)
        loaded = GdsLibrary.read(path)
        original = library.structures["bitcell_3t"].rects
        recovered = loaded.structures["bitcell_3t"].rects
        assert recovered == original

    def test_cross_section_render(self):
        library = build_m3d_cell_layout()
        text = cross_section_ascii(library)
        assert "CNFET tier 1" in text
        assert "IGZO tier" in text
        assert "*" in text  # drawn layers marked
        # The IGZO film sits above the CNT tiers, below top metal.
        assert text.index("cnt1_active") < text.index("igzo_active")
        assert text.index("igzo_active") < text.index("M15")
