"""64 kB memory macro: sub-array tiling and floorplan (Fig. 3c).

The macro tiles 32 sub-arrays as 8 rows x 4 columns.  In the M3D design
the Si periphery sits *under* the BEOL cell array, so the macro footprint
is just the tiled arrays; in the all-Si design each sub-array footprint
already includes its periphery strips.

With the calibrated cell geometries this reproduces Table II:
0.068 mm^2 (Si) and 0.025 mm^2 (M3D) per 64 kB macro.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edram.bitcell import BitcellDesign
from repro.edram.periphery import PeripheryDesign, standard_periphery
from repro.edram.subarray import SubArrayDesign
from repro.errors import PhysicalDesignError


@dataclass(frozen=True)
class MemoryMacro:
    """A 64 kB eDRAM macro in one technology."""

    subarray: SubArrayDesign
    periphery: PeripheryDesign
    tile_rows: int = 8
    tile_cols: int = 4

    def __post_init__(self) -> None:
        if self.tile_rows <= 0 or self.tile_cols <= 0:
            raise PhysicalDesignError("tile dimensions must be positive")
        if self.n_subarrays != self.periphery.n_subarrays:
            raise PhysicalDesignError(
                f"periphery sized for {self.periphery.n_subarrays} "
                f"sub-arrays, macro has {self.n_subarrays}"
            )

    @classmethod
    def for_cell(cls, cell: BitcellDesign) -> "MemoryMacro":
        """The paper's 64 kB organization for a given bit cell."""
        return cls(
            subarray=SubArrayDesign(cell),
            periphery=standard_periphery(32),
        )

    # -- capacity ----------------------------------------------------------
    @property
    def n_subarrays(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def capacity_bytes(self) -> int:
        return self.n_subarrays * self.subarray.bytes

    @property
    def capacity_kib(self) -> float:
        return self.capacity_bytes / 1024.0

    # -- geometry ------------------------------------------------------------
    @property
    def height_um(self) -> float:
        return self.tile_rows * self.subarray.footprint_height_um

    @property
    def width_um(self) -> float:
        return self.tile_cols * self.subarray.footprint_width_um

    @property
    def area_um2(self) -> float:
        return self.height_um * self.width_um

    @property
    def area_mm2(self) -> float:
        return self.area_um2 * 1e-6

    def periphery_fits_under_array(self) -> bool:
        """M3D sanity check: the Si periphery must fit below the array."""
        if not self.subarray.cell.stacked:
            return True
        return self.periphery.area_um2() <= self.area_um2

    # -- electrical ------------------------------------------------------------
    def standby_leakage_w(self) -> float:
        """Macro static power: peripheral gates only (3T cells have no
        static path; cell hold leakage drains the storage nodes, not the
        supply, and is orders of magnitude smaller anyway)."""
        return self.periphery.leakage_power_w()
