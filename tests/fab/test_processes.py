"""Tests for the complete all-Si and M3D process flows (Sec. II-C)."""

import pytest

from repro.fab import build_all_si_process, build_m3d_process
from repro.fab import energy_data
from repro.fab.steps import ProcessArea


class TestAllSiProcess:
    def setup_method(self):
        self.flow = build_all_si_process()

    def test_epa_matches_published_ratio(self):
        """EPA(all-Si) = 0.79 x EPA(iN7-EUV) = 699.15 kWh/wafer."""
        assert self.flow.total_energy_kwh() == pytest.approx(699.15, rel=1e-9)

    def test_has_feol_and_nine_metal_pairs(self):
        names = [seg.name for seg in self.flow.segments]
        assert any("FEOL" in n for n in names)
        pairs = [n for n in names if "pair" in n]
        assert len(pairs) == 9

    def test_pitch_assignment_follows_asap7(self):
        """M1-M3 @36, M4-M5 @48, M6-M7 @64, M8-M9 @80 (paper Sec. II-C)."""
        names = [seg.name for seg in self.flow.segments if "pair" in seg.name]
        assert sum("36 nm" in n for n in names) == 3
        assert sum("48 nm" in n for n in names) == 2
        assert sum("64 nm" in n for n in names) == 2
        assert sum("80 nm" in n for n in names) == 2

    def test_beol_energy(self):
        beol = self.flow.total_energy_kwh() - energy_data.FEOL_MOL_ENERGY_KWH
        assert beol == pytest.approx(263.15, rel=1e-9)


class TestM3dProcess:
    def setup_method(self):
        self.flow = build_m3d_process()

    def test_epa_matches_published_ratio(self):
        """EPA(M3D) = 1.22 x EPA(iN7-EUV) = 1079.7 kWh/wafer."""
        assert self.flow.total_energy_kwh() == pytest.approx(1079.7, rel=1e-9)

    def test_epa_higher_than_all_si(self):
        """The M3D C_embodied drawback: more steps -> more energy."""
        assert (
            self.flow.total_energy_kwh()
            > build_all_si_process().total_energy_kwh()
        )

    def test_tier_structure(self):
        names = [seg.name for seg in self.flow.segments]
        assert sum("CNFET tier" in n and "device steps" in n for n in names) == 2
        assert sum("IGZO tier" in n for n in names) == 1

    def test_fifteen_metal_pairs_plus_three_sd_pairs(self):
        """M1-M15 plus one S/D pair per device tier = 18 pairs total."""
        pairs = [seg for seg in self.flow.segments if "pair" in seg.name]
        assert len(pairs) == 18

    def test_twelve_36nm_pairs(self):
        """M1-M3, M5-M10, and 3 S/D pairs are all at 36 nm pitch."""
        names = [seg.name for seg in self.flow.segments if "pair" in seg.name]
        assert sum("36 nm" in n for n in names) == 12

    def test_top_stack_matches_all_si_m5_to_m9(self):
        names = [seg.name for seg in self.flow.segments if "pair" in seg.name]
        assert sum("48 nm" in n for n in names) == 2  # M4 and M11
        assert sum("64 nm" in n for n in names) == 2  # M12, M13
        assert sum("80 nm" in n for n in names) == 2  # M14, M15

    def test_metal_numbering_reaches_m15(self):
        names = [seg.name for seg in self.flow.segments]
        assert any(n.startswith("M15/") for n in names)
        assert not any(n.startswith("M16/") for n in names)

    def test_shared_base_through_m4(self):
        """M3D is identical to all-Si from M1 to M4."""
        si = build_all_si_process()
        si_names = [seg.name for seg in si.segments][:5]
        m3d_names = [seg.name for seg in self.flow.segments][:5]
        assert si_names == m3d_names


class TestParameterizedM3d:
    def test_zero_tiers_is_cheaper(self):
        base = build_m3d_process(n_cnfet_tiers=0, include_igzo_tier=False)
        full = build_m3d_process()
        assert base.total_energy_kwh() < full.total_energy_kwh()

    def test_energy_monotone_in_tier_count(self):
        energies = [
            build_m3d_process(n_cnfet_tiers=n).total_energy_kwh()
            for n in range(4)
        ]
        assert energies == sorted(energies)

    def test_each_cnfet_tier_adds_fixed_energy(self):
        """Each CNFET tier adds tier steps + 1 S/D pair + 2 metal pairs."""
        e1 = build_m3d_process(n_cnfet_tiers=1).total_energy_kwh()
        e2 = build_m3d_process(n_cnfet_tiers=2).total_energy_kwh()
        e3 = build_m3d_process(n_cnfet_tiers=3).total_energy_kwh()
        assert e2 - e1 == pytest.approx(e3 - e2)
        per_tier = 25.5625 + 3 * energy_data.pair_energy_kwh(36)
        assert e2 - e1 == pytest.approx(per_tier)

    def test_negative_tiers_rejected(self):
        with pytest.raises(ValueError):
            build_m3d_process(n_cnfet_tiers=-1)

    def test_igzo_tier_energy(self):
        with_igzo = build_m3d_process(n_cnfet_tiers=0, include_igzo_tier=True)
        without = build_m3d_process(n_cnfet_tiers=0, include_igzo_tier=False)
        delta = with_igzo.total_energy_kwh() - without.total_energy_kwh()
        assert delta == pytest.approx(
            24.6625 + 3 * energy_data.pair_energy_kwh(36)
        )


class TestStepAccounting:
    def test_m3d_has_more_litho_steps(self):
        si = build_all_si_process().step_counts()
        m3d = build_m3d_process().step_counts()
        assert m3d.count(ProcessArea.LITHOGRAPHY) > si.count(
            ProcessArea.LITHOGRAPHY
        )

    def test_igzo_tier_has_no_dry_etch(self):
        """IGZO active region is wet-etched (Sec. II-C)."""
        flow = build_m3d_process()
        igzo = flow.segment("IGZO tier (device steps)")
        areas = [s.area for s in igzo.steps]
        assert ProcessArea.DRY_ETCH not in areas
        assert areas.count(ProcessArea.WET_ETCH) == 2

    def test_cnfet_tier_has_o2_dry_etch(self):
        flow = build_m3d_process()
        tier = flow.segment("CNFET tier 1 (device steps)")
        assert any(s.area == ProcessArea.DRY_ETCH for s in tier.steps)
