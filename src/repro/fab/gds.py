"""Minimal GDSII stream writer/reader.

The paper's repository ships a circuit layout (GDS) of the M3D process
for 3D rendering.  This module implements the subset of the GDSII stream
format needed to export such layouts: one library, named structures,
BOUNDARY (rectangle/polygon) elements with layer/datatype, and the
matching reader for round-trip tests.

Format reference: the Calma GDSII Stream Format, release 6.0.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError

# GDSII record types (subset).
_HEADER = 0x00
_BGNLIB = 0x01
_LIBNAME = 0x02
_UNITS = 0x03
_ENDLIB = 0x04
_BGNSTR = 0x05
_STRNAME = 0x06
_ENDSTR = 0x07
_BOUNDARY = 0x08
_LAYER = 0x0D
_DATATYPE = 0x0E
_XY = 0x10
_ENDEL = 0x11

# Data type codes.
_NO_DATA = 0x00
_INT16 = 0x02
_INT32 = 0x03
_REAL8 = 0x05
_ASCII = 0x06


class GdsError(ReproError):
    """Malformed GDS content or unsupported records."""


def _real8(value: float) -> bytes:
    """Encode an 8-byte GDSII excess-64 real."""
    # GDSII reserves the all-zero word for exactly 0.0: the exact
    # comparison is the spec, not a tolerance bug.
    if value == 0.0:  # repro-lint: disable=RPL004 - spec-exact zero
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return bytes([sign | exponent]) + mantissa.to_bytes(7, "big")


def _parse_real8(raw: bytes) -> float:
    sign = -1.0 if raw[0] & 0x80 else 1.0
    exponent = (raw[0] & 0x7F) - 64
    mantissa = int.from_bytes(raw[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


def _record(rtype: int, dtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        payload += b"\x00"
        length += 1
    return struct.pack(">HBB", length, rtype, dtype) + payload


def _ascii(text: str) -> bytes:
    raw = text.encode("ascii")
    if len(raw) % 2:
        raw += b"\x00"
    return raw


@dataclass(frozen=True)
class GdsRect:
    """An axis-aligned rectangle on a layer (coordinates in nanometers)."""

    layer: int
    x0: int
    y0: int
    x1: int
    y1: int
    datatype: int = 0

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise GdsError(
                f"degenerate rectangle ({self.x0},{self.y0})-"
                f"({self.x1},{self.y1})"
            )
        if not (0 <= self.layer <= 255):
            raise GdsError(f"layer {self.layer} out of GDSII range")

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0


@dataclass
class GdsStructure:
    """A named cell containing boundary elements."""

    name: str
    rects: List[GdsRect] = field(default_factory=list)

    def add(self, rect: GdsRect) -> None:
        self.rects.append(rect)

    def bounding_box(self) -> Tuple[int, int, int, int]:
        if not self.rects:
            raise GdsError(f"structure {self.name!r} is empty")
        return (
            min(r.x0 for r in self.rects),
            min(r.y0 for r in self.rects),
            max(r.x1 for r in self.rects),
            max(r.y1 for r in self.rects),
        )

    def layers(self) -> "set[int]":
        return {r.layer for r in self.rects}


class GdsLibrary:
    """A GDSII library: user unit = 1 nm, database unit = 1e-9 m."""

    def __init__(self, name: str = "REPRO") -> None:
        self.name = name
        self.structures: Dict[str, GdsStructure] = {}

    def new_structure(self, name: str) -> GdsStructure:
        if name in self.structures:
            raise GdsError(f"duplicate structure {name!r}")
        structure = GdsStructure(name)
        self.structures[name] = structure
        return structure

    # -- serialization ----------------------------------------------------
    def to_bytes(self) -> bytes:
        timestamp = struct.pack(">12h", 2025, 1, 1, 0, 0, 0, 2025, 1, 1, 0, 0, 0)
        out = bytearray()
        out += _record(_HEADER, _INT16, struct.pack(">h", 600))
        out += _record(_BGNLIB, _INT16, timestamp)
        out += _record(_LIBNAME, _ASCII, _ascii(self.name))
        # user unit 1e-3 (nm relative to um), database unit 1e-9 m.
        out += _record(_UNITS, _REAL8, _real8(1e-3) + _real8(1e-9))
        for structure in self.structures.values():
            out += _record(_BGNSTR, _INT16, timestamp)
            out += _record(_STRNAME, _ASCII, _ascii(structure.name))
            for rect in structure.rects:
                out += _record(_BOUNDARY, _NO_DATA)
                out += _record(_LAYER, _INT16, struct.pack(">h", rect.layer))
                out += _record(
                    _DATATYPE, _INT16, struct.pack(">h", rect.datatype)
                )
                points = [
                    (rect.x0, rect.y0),
                    (rect.x1, rect.y0),
                    (rect.x1, rect.y1),
                    (rect.x0, rect.y1),
                    (rect.x0, rect.y0),
                ]
                payload = b"".join(
                    struct.pack(">ii", x, y) for x, y in points
                )
                out += _record(_XY, _INT32, payload)
                out += _record(_ENDEL, _NO_DATA)
            out += _record(_ENDSTR, _NO_DATA)
        out += _record(_ENDLIB, _NO_DATA)
        return bytes(out)

    def write(self, path) -> None:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())

    # -- parsing -------------------------------------------------------------
    @classmethod
    def from_bytes(cls, raw: bytes) -> "GdsLibrary":
        library = cls(name="")
        offset = 0
        current: "GdsStructure | None" = None
        pending_layer = pending_datatype = None
        in_boundary = False
        while offset + 4 <= len(raw):
            length, rtype, _dtype = struct.unpack_from(">HBB", raw, offset)
            if length < 4:
                raise GdsError(f"corrupt record length at offset {offset}")
            payload = raw[offset + 4 : offset + length]
            offset += length
            if rtype == _LIBNAME:
                library.name = payload.rstrip(b"\x00").decode("ascii")
            elif rtype == _BGNSTR:
                current = None  # name arrives in STRNAME
            elif rtype == _STRNAME:
                name = payload.rstrip(b"\x00").decode("ascii")
                current = library.new_structure(name)
            elif rtype == _BOUNDARY:
                in_boundary = True
                pending_layer = pending_datatype = None
            elif rtype == _LAYER and in_boundary:
                pending_layer = struct.unpack(">h", payload[:2])[0]
            elif rtype == _DATATYPE and in_boundary:
                pending_datatype = struct.unpack(">h", payload[:2])[0]
            elif rtype == _XY and in_boundary:
                count = len(payload) // 8
                points = [
                    struct.unpack_from(">ii", payload, 8 * i)
                    for i in range(count)
                ]
                xs = [p[0] for p in points]
                ys = [p[1] for p in points]
                if current is None or pending_layer is None:
                    raise GdsError("XY record outside structure/boundary")
                current.add(
                    GdsRect(
                        layer=pending_layer,
                        x0=min(xs),
                        y0=min(ys),
                        x1=max(xs),
                        y1=max(ys),
                        datatype=pending_datatype or 0,
                    )
                )
            elif rtype == _ENDEL:
                in_boundary = False
            elif rtype == _ENDLIB:
                break
        return library

    @classmethod
    def read(cls, path) -> "GdsLibrary":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())
