"""Thumb disassembler.

Decodes the 16-bit encodings of :mod:`repro.cpu.isa` back to assembly
text.  Used for debugging ISS traces and for round-trip testing of the
assembler (assemble(disassemble(word)) == word).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CpuError

_ALU_NAMES = [
    "ands", "eors", "lsls", "lsrs", "asrs", "adcs", "sbcs", "rors",
    "tst", "rsbs", "cmp", "cmn", "orrs", "muls", "bics", "mvns",
]

_COND_NAMES = [
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le",
]

_MEM_REG_NAMES = [
    "str", "strh", "strb", "ldrsb", "ldr", "ldrh", "ldrb", "ldrsh",
]


def _reg(index: int) -> str:
    return {13: "sp", 14: "lr", 15: "pc"}.get(index, f"r{index}")


def _reglist(bits: int, special: Optional[str] = None) -> str:
    regs = [f"r{i}" for i in range(8) if bits & (1 << i)]
    if special:
        regs.append(special)
    return "{" + ", ".join(regs) + "}"


def disassemble_one(
    insn: int, address: int = 0, suffix: Optional[int] = None
) -> Tuple[str, int]:
    """Disassemble one instruction.

    Args:
        insn: The 16-bit instruction word.
        address: Instruction address (for branch targets).
        suffix: The following halfword, needed for 32-bit BL.

    Returns:
        (text, size_bytes) — size is 2, or 4 for BL.
    """
    if (insn & 0xF800) == 0xF000:
        if suffix is None or (suffix & 0xF800) != 0xF800:
            raise CpuError(f"BL prefix {insn:#06x} without suffix")
        offset = ((insn & 0x7FF) << 11) | (suffix & 0x7FF)
        if offset & (1 << 21):
            offset -= 1 << 22
        target = address + 4 + (offset << 1)
        return f"bl {target:#x}", 4

    top5 = insn >> 11
    if top5 in (0, 1, 2):
        op = ["lsls", "lsrs", "asrs"][top5]
        imm5 = (insn >> 6) & 0x1F
        rm, rd = (insn >> 3) & 7, insn & 7
        if top5 == 0 and imm5 == 0:
            return f"movs r{rd}, r{rm}", 2
        return f"{op} r{rd}, r{rm}, #{imm5}", 2
    if top5 == 3:
        imm = bool(insn & (1 << 10))
        op = "subs" if insn & (1 << 9) else "adds"
        operand = (insn >> 6) & 7
        rn, rd = (insn >> 3) & 7, insn & 7
        src = f"#{operand}" if imm else f"r{operand}"
        return f"{op} r{rd}, r{rn}, {src}", 2
    if (insn >> 13) == 1:
        op = ["movs", "cmp", "adds", "subs"][(insn >> 11) & 3]
        rd, imm8 = (insn >> 8) & 7, insn & 0xFF
        return f"{op} r{rd}, #{imm8}", 2
    if (insn & 0xFC00) == 0x4000:
        op = _ALU_NAMES[(insn >> 6) & 0xF]
        rm, rdn = (insn >> 3) & 7, insn & 7
        return f"{op} r{rdn}, r{rm}", 2
    if (insn & 0xFC00) == 0x4400:
        op = (insn >> 8) & 3
        rm = (insn >> 3) & 0xF
        rd = ((insn >> 4) & 8) | (insn & 7)
        if op == 3:
            name = "blx" if insn & 0x80 else "bx"
            return f"{name} {_reg(rm)}", 2
        return f"{['add', 'cmp', 'mov'][op]} {_reg(rd)}, {_reg(rm)}", 2
    if (insn & 0xF800) == 0x4800:
        rd, imm8 = (insn >> 8) & 7, insn & 0xFF
        target = ((address + 4) & ~3) + imm8 * 4
        return f"ldr r{rd}, [pc, #{imm8 * 4}]  @ {target:#x}", 2
    if (insn & 0xF000) == 0x5000:
        op = _MEM_REG_NAMES[(insn >> 9) & 7]
        rm, rn, rd = (insn >> 6) & 7, (insn >> 3) & 7, insn & 7
        return f"{op} r{rd}, [r{rn}, r{rm}]", 2
    if (insn & 0xE000) == 0x6000:
        byte = bool(insn & (1 << 12))
        load = bool(insn & (1 << 11))
        imm5 = (insn >> 6) & 0x1F
        rn, rd = (insn >> 3) & 7, insn & 7
        op = ("ldr" if load else "str") + ("b" if byte else "")
        offset = imm5 * (1 if byte else 4)
        return f"{op} r{rd}, [r{rn}, #{offset}]", 2
    if (insn & 0xF000) == 0x8000:
        load = bool(insn & (1 << 11))
        imm5 = (insn >> 6) & 0x1F
        rn, rd = (insn >> 3) & 7, insn & 7
        return f"{'ldrh' if load else 'strh'} r{rd}, [r{rn}, #{imm5 * 2}]", 2
    if (insn & 0xF000) == 0x9000:
        load = bool(insn & (1 << 11))
        rd, imm8 = (insn >> 8) & 7, insn & 0xFF
        return f"{'ldr' if load else 'str'} r{rd}, [sp, #{imm8 * 4}]", 2
    if (insn & 0xF000) == 0xA000:
        base = "sp" if insn & (1 << 11) else "pc"
        rd, imm8 = (insn >> 8) & 7, insn & 0xFF
        return f"add r{rd}, {base}, #{imm8 * 4}", 2
    if (insn & 0xFF00) == 0xB000:
        magnitude = (insn & 0x7F) * 4
        op = "sub" if insn & 0x80 else "add"
        return f"{op} sp, #{magnitude}", 2
    if (insn & 0xFF00) == 0xB200:
        op = ["sxth", "sxtb", "uxth", "uxtb"][(insn >> 6) & 3]
        rm, rd = (insn >> 3) & 7, insn & 7
        return f"{op} r{rd}, r{rm}", 2
    if (insn & 0xFF00) == 0xBA00:
        variant = (insn >> 6) & 3
        names = {0: "rev", 1: "rev16", 3: "revsh"}
        if variant not in names:
            raise CpuError(f"undefined REV variant {insn:#06x}")
        rm, rd = (insn >> 3) & 7, insn & 7
        return f"{names[variant]} r{rd}, r{rm}", 2
    if (insn & 0xF600) == 0xB400:
        pop = bool(insn & (1 << 11))
        special = bool(insn & (1 << 8))
        bits = insn & 0xFF
        extra = ("pc" if pop else "lr") if special else None
        return f"{'pop' if pop else 'push'} {_reglist(bits, extra)}", 2
    if (insn & 0xFF00) == 0xBE00:
        return f"bkpt #{insn & 0xFF}", 2
    if insn == 0xBF00:
        return "nop", 2
    if (insn & 0xF000) == 0xC000:
        load = bool(insn & (1 << 11))
        rn = (insn >> 8) & 7
        return (
            f"{'ldmia' if load else 'stmia'} r{rn}!, {_reglist(insn & 0xFF)}",
            2,
        )
    if (insn & 0xFF00) == 0xDF00:
        return f"svc #{insn & 0xFF}", 2
    if (insn & 0xF000) == 0xD000:
        cond = (insn >> 8) & 0xF
        if cond > 0xD:
            raise CpuError(f"undefined conditional branch {insn:#06x}")
        offset = insn & 0xFF
        if offset & 0x80:
            offset -= 0x100
        target = address + 4 + (offset << 1)
        return f"b{_COND_NAMES[cond]} {target:#x}", 2
    if (insn & 0xF800) == 0xE000:
        offset = insn & 0x7FF
        if offset & 0x400:
            offset -= 0x800
        target = address + 4 + (offset << 1)
        return f"b {target:#x}", 2
    raise CpuError(f"cannot disassemble {insn:#06x}")


def disassemble(code: bytes, base_address: int = 0) -> List[Tuple[int, str]]:
    """Disassemble a code buffer into (address, text) pairs.

    Stops cleanly at data it cannot decode (literal pools) by emitting
    ``.word`` lines for undecodable 32-bit chunks.
    """
    out: List[Tuple[int, str]] = []
    offset = 0
    while offset + 2 <= len(code):
        address = base_address + offset
        insn = int.from_bytes(code[offset : offset + 2], "little")
        suffix = None
        if offset + 4 <= len(code):
            suffix = int.from_bytes(code[offset + 2 : offset + 4], "little")
        try:
            text, size = disassemble_one(insn, address, suffix)
        except CpuError:
            if offset + 4 <= len(code):
                word = int.from_bytes(code[offset : offset + 4], "little")
                out.append((address, f".word {word:#010x}"))
                offset += 4
                continue
            out.append((address, f".word {insn:#06x} (truncated)"))
            offset += 2
            continue
        out.append((address, text))
        offset += size
    return out
