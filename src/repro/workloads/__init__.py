"""Embench-style workload suite for the Cortex-M0 (reference [17]).

The paper runs applications from the Embench IoT suite; this package
provides hand-written Thumb-assembly kernels in the same spirit — small,
self-checking embedded benchmarks:

- ``matmul-int``: 20x20 integer matrix multiplication (the headline
  workload of Table II and Fig. 4/5);
- ``crc32``: bitwise CRC-32 over a 1 kB buffer;
- ``edn``: FIR/dot-product DSP kernel;
- ``primecount``: sieve of Eratosthenes;
- ``fib``: iterative Fibonacci stress of the branch unit;
- ``ud``: software-division stress (the M0 has no divide instruction).

Each workload is self-checking: it leaves a checksum in r0 that the
suite compares against a pure-Python golden model.
"""

from repro.workloads.suite import (
    Workload,
    WorkloadResult,
    all_workloads,
    get_workload,
    run_workload,
)

__all__ = [
    "Workload",
    "WorkloadResult",
    "all_workloads",
    "get_workload",
    "run_workload",
]
