"""The repro-lint engine: file walking, contexts, and reporting.

The engine parses each target file once, builds a :class:`FileContext`
(AST, raw lines, pragmas, package-relative path parts), and runs every
enabled rule over it.  Pragma suppression happens here — rules never
see the pragma filter — and baseline matching happens once over the
whole run so per-fingerprint counts are consumed globally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.quality.baseline import Baseline
from repro.quality.findings import Finding, Severity
from repro.quality.pragmas import PragmaMap, parse_pragmas
from repro.quality.rules import Rule, default_rules

#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE = "RPL000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


class _ModuleCache:
    """Shared parse cache for cross-file rules (RPL005, RPL006).

    ``extras`` is a scratch dict for per-run cross-file state keyed by
    rule subsystem (the flow engine parks its :class:`~repro.quality.
    flow.Program` of memoized function summaries there).
    """

    def __init__(self) -> None:
        self._trees: Dict[Path, Optional[ast.Module]] = {}
        self.extras: Dict[str, object] = {}

    def parse(self, path: Path) -> Optional[ast.Module]:
        path = path.resolve()
        if path not in self._trees:
            try:
                source = path.read_text(encoding="utf-8")
                self._trees[path] = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError):
                self._trees[path] = None
        return self._trees[path]


@dataclass
class FileContext:
    """Everything a rule may need about one source file."""

    path: Path
    rel_path: str
    parts: Tuple[str, ...]
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaMap
    package_root: Optional[Path] = None
    modules: _ModuleCache = field(default_factory=_ModuleCache)

    def load_module(
        self, module: Optional[str], level: int = 0
    ) -> Optional[ast.Module]:
        """Parse the AST of an imported module, if it lives on disk.

        Supports absolute dotted imports rooted at ``package_root`` and
        relative imports (``level`` leading dots) rooted at this file's
        package directory.  Returns ``None`` for anything unresolvable
        (third-party packages, namespace magic).
        """
        if level > 0:
            base = self.path.parent
            for _ in range(level - 1):
                base = base.parent
        elif self.package_root is not None:
            base = self.package_root
        else:
            return None
        if module:
            base = base.joinpath(*module.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                return self.modules.parse(candidate)
        return None


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    baselined: List[Finding]
    suppressed: int
    files_checked: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> Dict:
        return {
            "schema": "repro-lint-report/1",
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in self.findings],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "counts_by_rule": self.counts_by_rule(),
            "exit_code": self.exit_code,
        }

    def render_text(self) -> str:
        out = [f.render() for f in self.findings]
        counts = ", ".join(
            f"{rule}: {n}" for rule, n in self.counts_by_rule().items()
        )
        out.append(
            f"repro-lint: {len(self.findings)} finding(s) "
            f"({counts or 'none'}) in {self.files_checked} file(s); "
            f"{len(self.baselined)} baselined, "
            f"{self.suppressed} pragma-suppressed"
        )
        return "\n".join(out)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given paths, in sorted order."""
    for path in paths:
        path = Path(path)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            continue
        for sub in sorted(path.rglob("*.py")):
            if not _SKIP_DIR_NAMES.intersection(sub.parts):
                yield sub


def find_package_root(path: Path) -> Optional[Path]:
    """The directory containing the top-level package of ``path``.

    Walks up while ``__init__.py`` markers continue; e.g. for
    ``src/repro/core/isoline.py`` this is ``src``.
    """
    current = path.resolve().parent
    if not (current / "__init__.py").is_file():
        return None
    while (current.parent / "__init__.py").is_file():
        current = current.parent
    return current.parent


class LintEngine:
    """Run a rule set over files and apply pragma + baseline filtering."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Baseline] = None,
    ) -> None:
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )
        self.baseline = baseline if baseline is not None else Baseline()

    # ------------------------------------------------------------------
    def lint_file(
        self,
        path: Path,
        root: Optional[Path] = None,
        modules: Optional[_ModuleCache] = None,
    ) -> Tuple[List[Finding], int]:
        """All (pragma-filtered) findings for one file.

        Returns ``(findings, pragma_suppressed_count)``.  Baseline
        filtering is *not* applied here — see :meth:`lint_paths`.
        """
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            finding = Finding(
                rule=PARSE_ERROR_RULE,
                message=f"cannot read file: {exc}",
                path=_rel(path, root),
                line=1,
                severity=Severity.ERROR,
            )
            return [finding], 0
        return self.lint_source(
            source,
            path=path,
            rel_path=_rel(path, root),
            modules=modules,
        )

    # ------------------------------------------------------------------
    def lint_source(
        self,
        source: str,
        path: Path = Path("<memory>.py"),
        rel_path: Optional[str] = None,
        modules: Optional[_ModuleCache] = None,
    ) -> Tuple[List[Finding], int]:
        """Lint source text directly (testing / editor integration)."""
        path = Path(path)
        rel = rel_path if rel_path is not None else path.name
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            finding = Finding(
                rule=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
                path=rel,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
                snippet=(exc.text or "").strip(),
            )
            return [finding], 0
        ctx = FileContext(
            path=path,
            rel_path=rel,
            parts=tuple(Path(rel).parts),
            source=source,
            lines=lines,
            tree=tree,
            pragmas=parse_pragmas(lines),
            package_root=find_package_root(path) if path.is_file() else None,
            modules=modules if modules is not None else _ModuleCache(),
        )
        findings: List[Finding] = []
        suppressed = 0
        for rule in self.rules:
            for finding in rule.check(ctx):
                if ctx.pragmas.is_disabled(finding.rule, finding.line):
                    suppressed += 1
                else:
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings, suppressed

    # ------------------------------------------------------------------
    def lint_paths(
        self,
        paths: Sequence[Path],
        root: Optional[Path] = None,
        jobs: Optional[int] = None,
    ) -> LintReport:
        """Lint a path set and fold in the baseline.

        ``jobs=None`` auto-sizes worker processes to the CPU count via
        :func:`repro.runtime.parallel.map_parallel` (file chunks fan
        out; per-file analysis is independent, so the merged result is
        byte-identical to a serial run); ``jobs=1`` forces serial.
        Custom rule *instances* that are not registry classes cannot be
        reconstructed worker-side and also force serial.
        """
        files = list(iter_python_files(paths))
        all_findings: List[Finding] = []
        suppressed = 0
        chunks = self._parallel_chunks(files, jobs)
        if chunks is not None:
            from repro.runtime.parallel import map_parallel

            rule_ids = tuple(rule.rule_id for rule in self.rules)
            root_str = str(root) if root is not None else None
            payloads = [
                ([str(f) for f in chunk], root_str, rule_ids)
                for chunk in chunks
            ]
            for findings, skipped, _count in map_parallel(
                _lint_chunk, payloads, jobs=len(payloads), label="lint"
            ):
                all_findings.extend(findings)
                suppressed += skipped
        else:
            modules = _ModuleCache()
            for file_path in files:
                findings, skipped = self.lint_file(
                    file_path, root=root, modules=modules
                )
                all_findings.extend(findings)
                suppressed += skipped
        all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        fresh, grandfathered = self.baseline.partition(all_findings)
        return LintReport(
            findings=fresh,
            baselined=grandfathered,
            suppressed=suppressed,
            files_checked=len(files),
        )

    # ------------------------------------------------------------------
    def _parallel_chunks(
        self, files: List[Path], jobs: Optional[int]
    ) -> Optional[List[List[Path]]]:
        """Contiguous file chunks for the process pool, or ``None``.

        ``None`` means "lint serially": one job requested, too few
        files to amortize a pool, or a rule set that cannot be rebuilt
        from the registry in a worker.
        """
        from repro.quality.rules import RULE_REGISTRY
        from repro.runtime.parallel import resolve_jobs

        if jobs == 1 or len(files) < 2:
            return None
        if not all(
            RULE_REGISTRY.get(rule.rule_id) is type(rule)
            for rule in self.rules
        ):
            return None
        workers = resolve_jobs(jobs, len(files))
        if workers < 2:
            return None
        # Contiguous chunks keep sibling modules in one worker, so the
        # shared parse cache still serves the cross-file rules.
        size = (len(files) + workers - 1) // workers
        return [files[i : i + size] for i in range(0, len(files), size)]


def _lint_chunk(
    payload: Tuple[List[str], Optional[str], Tuple[str, ...]],
) -> Tuple[List[Finding], int, int]:
    """Worker-side entry point (module-level for pickling).

    Rebuilds the rule set from registry ids and lints one contiguous
    file chunk with its own shared module cache; the parent merges,
    sorts, and applies the baseline once globally.
    """
    from repro.quality.rules import RULE_REGISTRY

    file_paths, root_str, rule_ids = payload
    root = Path(root_str) if root_str is not None else None
    engine = LintEngine(
        rules=[RULE_REGISTRY[rule_id]() for rule_id in rule_ids]
    )
    modules = _ModuleCache()
    findings: List[Finding] = []
    suppressed = 0
    for file_path in file_paths:
        found, skipped = engine.lint_file(
            Path(file_path), root=root, modules=modules
        )
        findings.extend(found)
        suppressed += skipped
    return findings, suppressed, len(file_paths)


def _rel(path: Path, root: Optional[Path]) -> str:
    path = Path(path).resolve()
    base = Path(root).resolve() if root is not None else Path.cwd()
    try:
        return path.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return LintEngine(rules=rules, baseline=baseline).lint_paths(
        paths, root=root
    )
