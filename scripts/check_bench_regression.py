#!/usr/bin/env python
"""Compare fresh BENCH_*.json reports against the committed baselines.

Exit status 0 when every metric is within tolerance, 1 on any
regression, 2 on usage errors (missing/invalid files).  Used by CI after
regenerating the benchmark artifacts::

    python scripts/check_bench_regression.py \\
        --baseline benchmarks/output/BENCH_iss.json --fresh /tmp/BENCH_iss.json \\
        --baseline benchmarks/output/BENCH_sweep.json --fresh /tmp/BENCH_sweep.json \\
        --baseline benchmarks/output/BENCH_obs.json --fresh /tmp/BENCH_obs.json \\
        --tolerance 0.5

With a single --baseline/--fresh pair it checks one report; pairs are
matched positionally.  The numeric tolerance is relative drift in the
bad direction; boolean correctness gates (bit-identity, paper cycle
match, the bench-obs <2% tracing-off overhead budget) must hold
exactly regardless of tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.regression import (  # noqa: E402
    compare_reports,
    render_comparisons,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        action="append",
        required=True,
        metavar="FILE",
        help="committed baseline JSON (repeatable)",
    )
    parser.add_argument(
        "--fresh",
        action="append",
        required=True,
        metavar="FILE",
        help="freshly generated JSON, matched positionally to --baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed relative drift in the bad direction (default 0.5)",
    )
    args = parser.parse_args(argv)

    if len(args.baseline) != len(args.fresh):
        print(
            f"error: {len(args.baseline)} --baseline vs "
            f"{len(args.fresh)} --fresh",
            file=sys.stderr,
        )
        return 2

    any_regression = False
    for baseline_path, fresh_path in zip(args.baseline, args.fresh):
        try:
            baseline = json.loads(Path(baseline_path).read_text())
            fresh = json.loads(Path(fresh_path).read_text())
        except (OSError, ValueError) as exc:
            print(f"error reading reports: {exc}", file=sys.stderr)
            return 2
        try:
            comparisons = compare_reports(
                baseline, fresh, tolerance=args.tolerance
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_comparisons(comparisons, label=str(baseline_path)))
        any_regression |= any(c.regressed for c in comparisons)

    if any_regression:
        print("FAIL: benchmark regression detected")
        return 1
    print("OK: all benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
