"""Yield models (Sec. III-B step 5).

The paper demonstrates with fixed yields (90 % for the Si eDRAM process,
50 % for the M3D process) but notes "designers can choose arbitrary yield
models".  Besides :class:`FixedYield` we provide the two classic
defect-density models:

- :class:`PoissonYield` — Y = exp(-A * D0);
- :class:`MurphyYield` — Y = ((1 - exp(-A*D0)) / (A*D0))^2,

with A the die area and D0 the defect density.  For M3D flows, per-tier
defect densities compound multiplicatively (each tier must yield).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import PhysicalDesignError


class YieldModel(abc.ABC):
    """Maps a die area (cm^2) to a yield fraction in (0, 1]."""

    @abc.abstractmethod
    def yield_fraction(self, die_area_cm2: float) -> float:
        """Expected fraction of good dies for the given die area."""

    def _check_area(self, die_area_cm2: float) -> None:
        if die_area_cm2 < 0:
            raise PhysicalDesignError(
                f"die area must be >= 0, got {die_area_cm2}"
            )


@dataclass(frozen=True)
class FixedYield(YieldModel):
    """Area-independent yield (the paper's demonstration model)."""

    value: float

    def __post_init__(self) -> None:
        if not (0.0 < self.value <= 1.0):
            raise PhysicalDesignError(f"yield must be in (0, 1], got {self.value}")

    def yield_fraction(self, die_area_cm2: float) -> float:
        self._check_area(die_area_cm2)
        return self.value


@dataclass(frozen=True)
class PoissonYield(YieldModel):
    """Poisson defect model: Y = exp(-A * D0).

    Args:
        defect_density_per_cm2: D0, defects per cm^2.
    """

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise PhysicalDesignError("defect density must be >= 0")

    def yield_fraction(self, die_area_cm2: float) -> float:
        self._check_area(die_area_cm2)
        return math.exp(-die_area_cm2 * self.defect_density_per_cm2)


@dataclass(frozen=True)
class MurphyYield(YieldModel):
    """Murphy's yield model: Y = ((1 - e^(-A D0)) / (A D0))^2."""

    defect_density_per_cm2: float

    def __post_init__(self) -> None:
        if self.defect_density_per_cm2 < 0:
            raise PhysicalDesignError("defect density must be >= 0")

    def yield_fraction(self, die_area_cm2: float) -> float:
        self._check_area(die_area_cm2)
        ad0 = die_area_cm2 * self.defect_density_per_cm2
        # Exact-zero guard for the A*D0 -> 0 limit (yield -> 1); any
        # nonzero product takes the closed form below.
        if ad0 == 0.0:  # repro-lint: disable=RPL004 - exact limit guard
            return 1.0
        # expm1 avoids the catastrophic cancellation of 1 - e^-x at
        # small x (where the naive form underflows toward 0).
        return (-math.expm1(-ad0) / ad0) ** 2


@dataclass(frozen=True)
class CompoundTierYield(YieldModel):
    """M3D yield: the product of per-tier yield models.

    Every tier of a monolithic-3D stack must be defect-free for the die to
    work, so tier yields multiply.  This captures the paper's qualitative
    point that the M3D process's relative immaturity/complexity lowers
    yield.
    """

    tiers: Sequence[YieldModel]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise PhysicalDesignError("need at least one tier")

    def yield_fraction(self, die_area_cm2: float) -> float:
        self._check_area(die_area_cm2)
        result = 1.0
        for tier in self.tiers:
            result *= tier.yield_fraction(die_area_cm2)
        return result
