"""DC operating-point analysis with source stepping."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.elements import VoltageSource
from repro.spice.mna import DEFAULT_GMIN, newton_solve, solution_dict
from repro.spice.netlist import Circuit
from repro.spice.waveform import Dc


class _ScaledDrive:
    """Wraps a drive, scaling its value — used for source stepping."""

    def __init__(self, drive, scale: float) -> None:
        self._drive = drive
        self.scale = scale

    def at(self, t: float) -> float:
        return self._drive.at(t) * self.scale


def dc_operating_point(
    circuit: Circuit,
    initial_guess: Optional[Dict[str, float]] = None,
    gmin: float = DEFAULT_GMIN,
) -> Dict[str, float]:
    """Solve for the DC operating point (capacitors open).

    Strategy: plain Newton from the initial guess (zeros by default); on
    failure, source stepping — ramp all independent voltage sources from
    0 to 100 % in increments, reusing each converged solution as the next
    starting point.

    Returns:
        Node name -> voltage.  Time-varying sources are evaluated at t=0.
    """
    circuit.validate()
    n = circuit.n_unknowns()
    v0 = np.zeros(n)
    if initial_guess:
        index = circuit.unknown_index()
        for node, value in initial_guess.items():
            idx = index.get(node, -1)
            if idx >= 0:
                v0[idx] = value
    try:
        v = newton_solve(circuit, v0, t=0.0, dt=None, v_prev=None, gmin=gmin)
        return solution_dict(circuit, v)
    except ConvergenceError:
        pass

    # Source stepping fallback.
    sources = [e for e in circuit.elements if isinstance(e, VoltageSource)]
    originals = [s.drive for s in sources]
    scaled = [_ScaledDrive(d, 0.0) for d in originals]
    for s, wrapped in zip(sources, scaled):
        s.drive = wrapped
    try:
        v = np.zeros(n)
        for scale in np.linspace(0.1, 1.0, 10):
            for wrapped in scaled:
                wrapped.scale = float(scale)
            v = newton_solve(
                circuit, v, t=0.0, dt=None, v_prev=None, gmin=gmin
            )
        return solution_dict(circuit, v)
    finally:
        for s, original in zip(sources, originals):
            s.drive = original


def dc_sweep(
    circuit: Circuit,
    source_name: str,
    values: "list[float]",
) -> "list[Dict[str, float]]":
    """Sweep a voltage source through ``values``; returns one operating
    point per value.  The source's drive is restored afterwards."""
    source = circuit.element(source_name)
    if not isinstance(source, VoltageSource):
        raise ConvergenceError(f"{source_name!r} is not a voltage source")
    original = source.drive
    results = []
    guess: Optional[Dict[str, float]] = None
    try:
        for value in values:
            source.drive = Dc(value)
            guess = dc_operating_point(circuit, initial_guess=guess)
            results.append(guess)
    finally:
        source.drive = original
    return results
