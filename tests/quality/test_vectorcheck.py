"""The scalar-vs-array differential gate (``repro vectorcheck``)."""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.quality.vectorcheck import (
    DEFAULT_PACKAGES,
    DIVERGENT,
    SCALAR_ONLY,
    UNSUPPORTED,
    VECTOR_OK,
    CapabilityEntry,
    VectorCheckReport,
    check_against,
    classify_function,
    derive_inputs,
    run_vectorcheck,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACT = REPO_ROOT / "benchmarks" / "output" / "VECTOR_capability.json"


class TestDeriveInputs:
    def test_required_floats_get_deterministic_values(self):
        def f(a: float, b: float) -> float:
            return a + b

        kwargs, tiled = derive_inputs(f)
        assert set(kwargs) == {"a", "b"}
        assert sorted(tiled) == ["a", "b"]
        assert all(0 < v <= 1 for v in kwargs.values())

    def test_defaults_kept_and_float_defaults_tiled(self):
        def f(x: float, scale: float = 2.0, name: str = "n") -> float:
            return x * scale

        kwargs, tiled = derive_inputs(f)
        assert kwargs["scale"] == 2.0
        assert "scale" in tiled and "name" not in kwargs

    def test_int_params_never_tiled(self):
        def f(x: float, n: int) -> float:
            return x * n

        kwargs, tiled = derive_inputs(f)
        assert isinstance(kwargs["n"], int)
        assert tiled == ["x"]

    def test_required_object_param_unsupported(self):
        def f(model, x: float) -> float:
            return x

        assert derive_inputs(f) is None

    def test_no_tileable_floats_unsupported(self):
        def f(n: int) -> int:
            return n

        assert derive_inputs(f) is None

    def test_string_annotations_resolve(self):
        # ``from __future__ import annotations`` leaves strings behind.
        def f(x: "float", n: "int") -> "float":
            return x * n

        kwargs, tiled = derive_inputs(f)
        assert tiled == ["x"]


class TestClassifyFunction:
    def test_broadcasting_function_is_vector_ok(self):
        def f(x: float, y: float) -> float:
            return x * 2.0 + y

        entry = classify_function("m", "f", f)
        assert entry.status == VECTOR_OK

    def test_ambiguous_truth_guard_is_scalar_only(self):
        def f(x: float) -> float:
            if x < 0:
                raise ValueError("negative")
            return x * 2.0

        entry = classify_function("m", "f", f)
        assert entry.status == SCALAR_ONLY
        assert "ambiguous" in entry.detail

    def test_silent_shape_collapse_is_divergent(self):
        def f(x: float) -> float:
            return float(np.mean(x))

        entry = classify_function("m", "f", f)
        assert entry.status == DIVERGENT
        assert "shape collapsed" in entry.detail

    def test_lane_contamination_is_divergent(self):
        # A scalar fold leaking the perturbed lane into lane 0: the
        # silent-corruption class the gate exists to catch.
        def f(x: float) -> float:
            return x * 0 + np.sum(x) / np.size(x)

        entry = classify_function("m", "f", f)
        assert entry.status == DIVERGENT
        assert "lane 0" in entry.detail

    def test_math_call_is_loud_scalar_only_not_divergent(self):
        def f(x: float) -> float:
            return math.sqrt(x)

        entry = classify_function("m", "f", f)
        assert entry.status == SCALAR_ONLY

    def test_non_scalar_return_unsupported(self):
        def f(x: float) -> dict:
            return {"x": x}

        entry = classify_function("m", "f", f)
        assert entry.status == UNSUPPORTED
        assert "non-scalar return" in entry.detail


class TestReport:
    def _report(self, status=VECTOR_OK):
        return VectorCheckReport(
            entries=[
                CapabilityEntry("m.b", "g", status),
                CapabilityEntry("m.a", "f", VECTOR_OK),
            ],
            packages=("m",),
            lanes=4,
        )

    def test_exit_code_zero_without_divergent(self):
        assert self._report().exit_code == 0

    def test_divergent_fails(self):
        report = self._report(DIVERGENT)
        assert report.exit_code == 1
        assert "DIVERGENT" in report.render_text()

    def test_to_json_sorts_entries(self):
        payload = self._report().to_json()
        assert payload.index('"m.a"') < payload.index('"m.b"')
        assert payload.endswith("\n")

    def test_check_against_reports_status_flips(self):
        fresh = self._report(SCALAR_ONLY)
        committed = self._report(VECTOR_OK).to_json()
        problems = check_against(fresh, committed)
        assert len(problems) == 1
        assert "m.b.g" in problems[0]
        assert "'vector-ok'" in problems[0]
        assert "'scalar-only'" in problems[0]

    def test_check_against_clean_when_identical(self):
        fresh = self._report()
        assert check_against(fresh, fresh.to_json()) == []


class TestLiveTree:
    @pytest.fixture(scope="class")
    def report(self):
        return run_vectorcheck()

    def test_every_public_function_classified(self, report):
        from repro.quality.vectorcheck import discover_functions

        assert len(report.entries) == len(
            discover_functions(DEFAULT_PACKAGES)
        )
        assert len(report.entries) > 40

    def test_no_divergent_functions(self, report):
        assert report.divergent() == []
        assert report.exit_code == 0

    def test_model_kernels_are_vector_ok(self, report):
        status = {
            f"{e.module}.{e.function}": e.status for e in report.entries
        }
        for name in (
            "repro.core.tcdp.tcdp",
            "repro.core.tcdp.edp",
            "repro.core.operational.operational_carbon_g",
            "repro.physical.wires.unrepeated_delay_s",
            "repro.fab.steps.per_step_energy",
        ):
            assert status[name] == VECTOR_OK, (name, status[name])

    def test_run_is_deterministic(self, report):
        assert report.to_json() == run_vectorcheck().to_json()

    def test_committed_artifact_is_current(self, report):
        """CI's ``repro vectorcheck --check`` gate, as a test."""
        assert ARTIFACT.is_file(), (
            "regenerate with `python -m repro vectorcheck "
            "--output benchmarks/output/VECTOR_capability.json`"
        )
        problems = check_against(report, ARTIFACT.read_text())
        assert problems == [], "\n".join(problems)
