"""Tests for the tCDP trade-off map and isoline (Fig. 6a)."""

import numpy as np
import pytest

from repro.core.isoline import TcdpOperatingPoint, TcdpTradeoffMap
from repro.errors import CarbonModelError


@pytest.fixture
def tradeoff_map():
    """Paper-scale operating points at 24 months (US grid)."""
    m3d = TcdpOperatingPoint(embodied_g=3.63, operational_g=4.70)
    si = TcdpOperatingPoint(embodied_g=3.11, operational_g=5.39)
    return TcdpTradeoffMap(candidate=m3d, baseline=si)


class TestOperatingPoint:
    def test_totals(self):
        p = TcdpOperatingPoint(3.0, 4.0, execution_time_s=2.0)
        assert p.total_g == 7.0
        assert p.tcdp == 14.0

    def test_validation(self):
        with pytest.raises(CarbonModelError):
            TcdpOperatingPoint(-1.0, 0.0)
        with pytest.raises(CarbonModelError):
            TcdpOperatingPoint(1.0, 1.0, execution_time_s=0.0)


class TestRatio:
    def test_nominal_point_matches_paper(self, tradeoff_map):
        x, y, ratio = tradeoff_map.nominal_point()
        assert (x, y) == (1.0, 1.0)
        assert ratio == pytest.approx(8.33 / 8.50, abs=0.005)
        assert ratio < 1.0  # M3D wins at 24 months

    def test_ratio_linear_in_scales(self, tradeoff_map):
        r1 = tradeoff_map.ratio(1.0, 1.0)
        r2 = tradeoff_map.ratio(2.0, 2.0)
        assert r2 == pytest.approx(2 * r1)

    def test_higher_embodied_hurts(self, tradeoff_map):
        assert tradeoff_map.ratio(2.0, 1.0) > tradeoff_map.ratio(1.0, 1.0)

    def test_lower_operational_helps(self, tradeoff_map):
        assert tradeoff_map.ratio(1.0, 0.5) < tradeoff_map.ratio(1.0, 1.0)

    def test_negative_scales_rejected(self, tradeoff_map):
        with pytest.raises(CarbonModelError):
            tradeoff_map.ratio(-0.1, 1.0)


class TestRatioGrid:
    def test_grid_matches_pointwise(self, tradeoff_map):
        xs = np.linspace(0.0, 2.0, 5)
        ys = np.linspace(0.0, 2.0, 7)
        grid = tradeoff_map.ratio_grid(xs, ys)
        assert grid.shape == (7, 5)
        for i, y in enumerate(ys):
            for j, x in enumerate(xs):
                assert grid[i, j] == pytest.approx(tradeoff_map.ratio(x, y))

    def test_grid_monotone(self, tradeoff_map):
        xs = np.linspace(0.1, 3.0, 10)
        ys = np.linspace(0.1, 3.0, 10)
        grid = tradeoff_map.ratio_grid(xs, ys)
        assert np.all(np.diff(grid, axis=1) > 0)  # worse with embodied
        assert np.all(np.diff(grid, axis=0) > 0)  # worse with operational


class TestIsoline:
    def test_isoline_points_have_ratio_one(self, tradeoff_map):
        ys = np.linspace(0.1, 1.5, 7)
        xs = tradeoff_map.isoline_emb_scale(ys)
        for x, y in zip(xs, ys):
            if not np.isnan(x):
                assert tradeoff_map.ratio(float(x), float(y)) == pytest.approx(1.0)

    def test_isoline_slopes_down(self, tradeoff_map):
        """More operational carbon leaves less embodied budget."""
        ys = np.linspace(0.1, 1.5, 7)
        xs = tradeoff_map.isoline_emb_scale(ys)
        valid = xs[~np.isnan(xs)]
        assert np.all(np.diff(valid) < 0)

    def test_isoline_nan_when_unreachable(self, tradeoff_map):
        # Operational term alone exceeds baseline tCDP at huge y.
        assert np.isnan(tradeoff_map.isoline_emb_scale(100.0))

    def test_inverse_isoline_consistent(self, tradeoff_map):
        y = 0.8
        x = tradeoff_map.isoline_emb_scale(y)
        y_back = tradeoff_map.isoline_op_scale(x)
        assert y_back == pytest.approx(y)

    def test_nominal_point_inside_win_region(self, tradeoff_map):
        """At 24 months the (1,1) point sits in the M3D-wins region."""
        assert tradeoff_map.candidate_wins(1.0, 1.0)
        # The isoline at y=1 lies slightly right of x=1.
        x_iso = tradeoff_map.isoline_emb_scale(1.0)
        assert x_iso > 1.0

    def test_zero_operational_candidate(self):
        m = TcdpTradeoffMap(
            TcdpOperatingPoint(2.0, 0.0), TcdpOperatingPoint(1.0, 1.0)
        )
        with pytest.raises(CarbonModelError):
            m.isoline_op_scale(1.0)
        assert m.isoline_emb_scale(5.0) == pytest.approx(1.0)
