"""Builders for metal/via-pair flow segments.

EUV-patterned (36 nm pitch) pairs are expanded into their full step list
(matching :data:`repro.fab.energy_data.EUV_METAL_VIA_PAIR_RECIPE`), so the
Equation 4 step-count matrix is populated.  Coarser-pitch pairs, whose
energies are taken directly from the per-pair dataset (as the paper does),
are carried as lumped segments.
"""

from __future__ import annotations

from typing import List

from repro.fab import energy_data
from repro.fab.flow import FlowSegment
from repro.fab.steps import LithographyMethod, ProcessArea, ProcessStep


def _euv_pair_steps(label: str) -> List[ProcessStep]:
    """Expand an EUV metal/via pair into its step sequence.

    The sequence mirrors dual-damascene fabrication: via patterning/etch,
    metal-trench patterning/etch, barrier/liner deposition, fill
    metallization, CMP-adjacent cleans, and inline metrology.  Step counts
    per area match :data:`EUV_METAL_VIA_PAIR_RECIPE`.
    """
    e = energy_data.STEP_ENERGY_KWH
    litho = e[ProcessArea.LITHOGRAPHY]
    dry = e[ProcessArea.DRY_ETCH]
    wet = e[ProcessArea.WET_ETCH]
    metal = e[ProcessArea.METALLIZATION]
    dep = e[ProcessArea.DEPOSITION]
    metro = e[ProcessArea.METROLOGY]

    def step(name: str, area: ProcessArea, energy: float, **kw) -> ProcessStep:
        return ProcessStep(name=f"{label}: {name}", area=area, energy_kwh=energy, **kw)

    return [
        step("ILD deposition", ProcessArea.DEPOSITION, dep),
        step(
            "via lithography (EUV)",
            ProcessArea.LITHOGRAPHY,
            litho,
            lithography=LithographyMethod.EUV,
        ),
        step("via etch", ProcessArea.DRY_ETCH, dry),
        step("via etch (breakthrough)", ProcessArea.DRY_ETCH, dry),
        step("post-via clean", ProcessArea.WET_ETCH, wet),
        step("via metrology", ProcessArea.METROLOGY, metro),
        step(
            "metal trench lithography (EUV)",
            ProcessArea.LITHOGRAPHY,
            litho,
            lithography=LithographyMethod.EUV,
        ),
        step("trench etch", ProcessArea.DRY_ETCH, dry),
        step("trench etch (breakthrough)", ProcessArea.DRY_ETCH, dry),
        step("post-trench clean", ProcessArea.WET_ETCH, wet),
        step("trench metrology", ProcessArea.METROLOGY, metro),
        step("barrier/liner deposition", ProcessArea.DEPOSITION, dep),
        step("seed deposition", ProcessArea.DEPOSITION, dep),
        step("Cu fill (ECD)", ProcessArea.METALLIZATION, metal),
        step("CMP / overburden removal", ProcessArea.METALLIZATION, metal),
        step("post-CMP clean", ProcessArea.WET_ETCH, wet),
        step("thickness metrology", ProcessArea.METROLOGY, metro),
        step("overlay metrology", ProcessArea.METROLOGY, metro),
    ]


def metal_via_pair_segment(
    label: str, pitch_nm: int
) -> FlowSegment:
    """One metal/via pair at the given pitch as a flow segment.

    Args:
        label: e.g. ``"M1/V0"``.
        pitch_nm: Metal pitch; determines lithography and energy
            (48 nm uses the 42 nm-pitch dataset, as in the paper).
    """
    litho = energy_data.lithography_for_pitch(pitch_nm)
    name = f"{label} pair ({pitch_nm} nm, {litho.value})"
    if litho is LithographyMethod.EUV:
        segment = FlowSegment(name=name, steps=_euv_pair_steps(label))
        expected = energy_data.pair_energy_kwh(pitch_nm)
        # The expanded recipe and the per-pair dataset must agree exactly.
        assert abs(segment.energy_kwh - expected) < 1e-9
        return segment
    return FlowSegment(
        name=name,
        lumped_energy_kwh=energy_data.pair_energy_kwh(pitch_nm),
    )


def metal_stack_segments(
    pitches_nm: "list[tuple[str, int]]",
) -> List[FlowSegment]:
    """Segments for a whole metal stack given (label, pitch) entries."""
    return [metal_via_pair_segment(label, pitch) for label, pitch in pitches_nm]
