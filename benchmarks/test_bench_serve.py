"""Serving benchmark: writes ``BENCH_serve.json``.

The acceptance gate the serve layer was built around: at 32 concurrent
clients the batched server clears at least 3x the QPS of the
serial-dispatch control while returning bit-identical JSON payloads,
and both servers drain cleanly on SIGTERM.
"""

import json


def test_bench_serve(output_dir):
    from repro.runtime.bench_serve import SPEEDUP_FLOOR, run_serve_bench

    path = output_dir / "BENCH_serve.json"
    report = run_serve_bench(output_path=path)

    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["schema"] == "bench-serve/1"
    assert data["bit_equal_responses"]
    assert data["speedup_at_least_3x"]
    assert data["speedup_batched_over_serial"] >= SPEEDUP_FLOOR
    assert data["clean_shutdown"]
    assert data["open_loop"]["all_ok"]
    assert data["batched"]["errors"] == 0
    assert data["serial"]["errors"] == 0
    assert data["batch_occupancy"]["mean"] > 1.0

    print(json.dumps(report, indent=2))
