"""PPAtC-as-a-service: the async query front door (`repro serve`).

A zero-dependency asyncio HTTP server exposing the paper's trade-off
model as an API — ``POST /v1/tcdp`` for single design points,
``POST /v1/grid`` for trade-off-map tiles, plus ``/healthz`` and
``/metricz``.  Concurrent point queries are coalesced by a request
batcher into single tensor evaluations that are bit-identical to the
scalar model stack, which is what `repro bench-serve` verifies and the
``bench-serve/1`` CI gate enforces.

Modules:

- :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio streams;
- :mod:`repro.serve.model` — query validation + the two bit-equal
  evaluators (scalar control, batched tensor path);
- :mod:`repro.serve.batcher` — window-based coalescing, 429 shedding;
- :mod:`repro.serve.flight` — tail-sampled flight recorder (``/debugz``);
- :mod:`repro.serve.server` — routes, obs integration, graceful drain;
- :mod:`repro.serve.loadgen` — deterministic closed/open-loop load.
"""

from repro.serve.batcher import QueueFullError, RequestBatcher
from repro.serve.flight import FlightRecorder
from repro.serve.model import (
    GridQuery,
    ModelContext,
    PointQuery,
    QueryError,
    evaluate_grid,
    evaluate_point_scalar,
    evaluate_points_batched,
)
from repro.serve.server import PpatcServer, ServerConfig, run_server

__all__ = [
    "FlightRecorder",
    "GridQuery",
    "ModelContext",
    "PointQuery",
    "PpatcServer",
    "QueryError",
    "QueueFullError",
    "RequestBatcher",
    "ServerConfig",
    "evaluate_grid",
    "evaluate_point_scalar",
    "evaluate_points_batched",
    "run_server",
]
