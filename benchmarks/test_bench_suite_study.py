"""Extension benchmark: per-workload PPAtC across the whole suite."""


from repro.analysis.suite_study import render_suite_study, run_suite_study


def test_bench_suite_study(benchmark, artifact_writer):
    rows = benchmark.pedantic(run_suite_study, rounds=1, iterations=1)
    artifact_writer("extension_suite_study", render_suite_study(rows))

    assert len(rows) == 8
    # The paper's conclusion generalizes: at a 24-month lifetime the M3D
    # design wins on every workload class, with crossovers clustered in
    # the second year.
    for row in rows:
        assert row.m3d_wins
        assert row.crossover_months is not None
        assert 5.0 < row.crossover_months < 24.0
