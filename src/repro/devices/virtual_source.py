"""The virtual-source (VS) compact FET model (Khakifirooz et al. [37]).

The VS model expresses drain current as charge times carrier velocity at
the virtual source point:

    I_D / W = Q_ix0 * v_x0 * F_sat

with

    Q_ix0 = C_inv * n * phi_t * ln(1 + exp((V_GS - V_T_eff) / (n phi_t)))
    V_T_eff = V_T0 - delta * V_DS                       (DIBL)
    F_sat = (V_DS / V_dsat) / (1 + (V_DS / V_dsat)^beta)^(1/beta)
    V_dsat = v_x0 * L_eff / mu   (velocity/mobility-limited saturation)

It is continuous across weak and strong inversion and across linear and
saturation regions — exactly the property that makes it suitable for the
eDRAM transient simulations in Sec. III-B step 2, and the model family the
paper uses for CNFETs [27] and IGZO FETs [37], [38].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.fet import FET, Polarity
from repro.units import THERMAL_VOLTAGE_300K


@dataclass(frozen=True)
class VSParameters:
    """Width-normalized virtual-source model parameters.

    Attributes:
        vt0_v: Threshold voltage at V_DS = 0.
        n_ss: Subthreshold ideality factor; SS = n_ss * phi_t * ln(10).
        dibl_v_per_v: DIBL coefficient delta (V_T shift per volt of V_DS).
        c_inv_f_per_um2: Inversion capacitance per gate area (F/um^2).
        l_gate_um: Gate length (um).
        v_x0_cm_per_s: Virtual-source carrier velocity (cm/s).
        mobility_cm2_per_vs: Low-field carrier mobility (cm^2/V.s).
        c_gate_f_per_um: Total gate capacitance per um width (F/um),
            including parasitics; used for transient simulation.
        i_leak_floor_a_per_um: Bias-independent leakage floor (A/um),
            e.g. metallic-CNT or gate leakage contributions.
        vdd_v: Nominal supply of the technology.
    """

    vt0_v: float
    n_ss: float
    dibl_v_per_v: float
    c_inv_f_per_um2: float
    l_gate_um: float
    v_x0_cm_per_s: float
    mobility_cm2_per_vs: float
    c_gate_f_per_um: float
    i_leak_floor_a_per_um: float = 0.0
    vdd_v: float = 0.7
    beta_sat: float = 1.8

    def __post_init__(self) -> None:
        checks = {
            "n_ss": self.n_ss,
            "c_inv_f_per_um2": self.c_inv_f_per_um2,
            "l_gate_um": self.l_gate_um,
            "v_x0_cm_per_s": self.v_x0_cm_per_s,
            "mobility_cm2_per_vs": self.mobility_cm2_per_vs,
            "c_gate_f_per_um": self.c_gate_f_per_um,
            "vdd_v": self.vdd_v,
            "beta_sat": self.beta_sat,
        }
        for name, value in checks.items():
            if value <= 0:
                raise ValueError(f"VS parameter {name} must be > 0, got {value}")
        if self.dibl_v_per_v < 0:
            raise ValueError("DIBL must be >= 0")
        if self.i_leak_floor_a_per_um < 0:
            raise ValueError("leakage floor must be >= 0")

    @property
    def phi_t(self) -> float:
        return THERMAL_VOLTAGE_300K

    @property
    def subthreshold_slope_mv_per_dec(self) -> float:
        """SS = n * phi_t * ln(10), in mV/decade."""
        return self.n_ss * self.phi_t * math.log(10.0) * 1000.0

    @property
    def v_dsat_v(self) -> float:
        """Saturation voltage: v_x0 * L / mu (velocity-saturation form).

        Units: v_x0 [cm/s] * L [um -> cm] / mu [cm^2/Vs] = volts.
        """
        l_cm = self.l_gate_um * 1e-4
        return self.v_x0_cm_per_s * l_cm / self.mobility_cm2_per_vs


class VirtualSourceFET(FET):
    """A FET instance: VS parameters + polarity + width."""

    def __init__(
        self,
        name: str,
        polarity: Polarity,
        width_um: float,
        params: VSParameters,
    ) -> None:
        super().__init__(name, polarity, width_um)
        self.params = params

    @property
    def vdd_v(self) -> float:
        return self.params.vdd_v

    def _charge_per_um(self, vgs: float, vds: float) -> float:
        """Virtual-source charge Q_ix0 (C/um) with DIBL."""
        p = self.params
        vt_eff = p.vt0_v - p.dibl_v_per_v * vds
        eta = (vgs - vt_eff) / (p.n_ss * p.phi_t)
        # Softplus, overflow-safe.
        if eta > 40.0:
            softplus = eta
        else:
            softplus = math.log1p(math.exp(eta))
        q_per_um2 = p.c_inv_f_per_um2 * p.n_ss * p.phi_t * softplus
        return q_per_um2 * p.l_gate_um

    def _ids_forward_per_um(self, vgs: float, vds: float) -> float:
        p = self.params
        if vds == 0.0:  # repro-lint: disable=RPL004 - exact singular point
            return 0.0
        vdsat = max(p.v_dsat_v, 1e-6)
        ratio = vds / vdsat
        f_sat = ratio / (1.0 + ratio**p.beta_sat) ** (1.0 / p.beta_sat)
        # Charge (C/um^2) * velocity (cm/s -> um/s) gives A/um.
        q_per_um2 = self._charge_per_um(vgs, vds) / p.l_gate_um
        v_um_per_s = p.v_x0_cm_per_s * 1e4
        intrinsic = q_per_um2 * v_um_per_s * f_sat
        # The leakage floor only matters in the off state; make it decay
        # smoothly so I(vds=0) remains 0.
        floor = p.i_leak_floor_a_per_um * (1.0 - math.exp(-vds / p.phi_t))
        return intrinsic + floor

    def gate_capacitance_f(self) -> float:
        return self.params.c_gate_f_per_um * self.width_um

    def transconductance(self, vgs: float, vds: float, dv: float = 1e-4):
        """(gm, gds) by central finite differences, for MNA stamping."""
        gm = (self.ids(vgs + dv, vds) - self.ids(vgs - dv, vds)) / (2 * dv)
        gds = (self.ids(vgs, vds + dv) - self.ids(vgs, vds - dv)) / (2 * dv)
        return gm, gds
