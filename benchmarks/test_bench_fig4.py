"""Fig. 4: Cortex-M0 energy/cycle vs clock frequency per V_T flavour."""

import pytest

from repro.analysis import figures, report


def test_bench_fig4(benchmark, artifact_writer):
    data = benchmark(figures.fig4_energy_vs_clock)
    artifact_writer("fig4_energy_vs_clock", report.render_fig4(data))

    # The selected point: RVT at 500 MHz = 1.42 pJ/cycle (Table II).
    rvt_500 = data["rvt"][4]
    assert rvt_500["clock_mhz"] == 500.0
    assert rvt_500["energy_per_cycle_pj"] == pytest.approx(1.42, abs=0.01)

    # Shape checks across the sweep:
    # (1) every flavour is feasible at 100 MHz;
    for flavor in data.values():
        assert flavor[0]["met_timing"] == 1.0
    # (2) feasibility frontier ordering HVT < RVT < LVT < SLVT;
    def max_met(name):
        return max(
            p["clock_mhz"] for p in data[name] if p["met_timing"]
        )

    assert max_met("hvt") < max_met("rvt") < max_met("lvt") <= max_met("slvt")
    # (3) only low-V_T flavours reach 1 GHz.
    assert data["slvt"][-1]["met_timing"] == 1.0
    assert data["hvt"][-1]["met_timing"] == 0.0
    # (4) at low clocks, leaky SLVT wastes energy vs RVT.
    assert (
        data["slvt"][0]["energy_per_cycle_pj"]
        > 2 * data["rvt"][0]["energy_per_cycle_pj"]
    )


def test_bench_fig4_critical_path(benchmark, artifact_writer):
    """The step-3 companion series: critical-path delay per design."""
    data = benchmark(figures.fig4_critical_path)
    lines = [
        "FIG. 4 (companion) - CRITICAL PATH DELAY vs CLOCK x V_T",
        "-" * 64,
        "f (MHz)   " + "".join(f"{fl.upper():>10s}" for fl in data),
    ]
    clocks = [p["clock_mhz"] for p in data["rvt"]]
    for i, clock in enumerate(clocks):
        cells = []
        for flavor in data:
            point = data[flavor][i]
            marker = "" if point["met_timing"] else "*"
            cells.append(f"{point['critical_path_ns']:>8.2f}{marker:1s} ")
        lines.append(f"{clock:>7.0f}   " + "".join(cells))
    lines.append("(* = timing not met at that clock)")
    artifact_writer("fig4_critical_path", "\n".join(lines))

    # At 500 MHz every met design's critical path fits in 2 ns.
    for flavor, series in data.items():
        point = series[4]
        if point["met_timing"]:
            assert point["critical_path_ns"] <= 2.0 + 1e-9
            assert point["slack_ns"] >= -1e-9
    # Delay shrinks (via upsizing) as the target clock rises, per flavour.
    for series in data.values():
        met = [p for p in series if p["met_timing"]]
        delays = [p["critical_path_ns"] for p in met]
        assert delays == sorted(delays, reverse=True)
