#!/usr/bin/env python3
"""Design-space exploration of the 3T M3D-eDRAM bit cell.

Scenario: a memory designer sweeps the IGZO write-transistor width to
trade write speed against retention (wider = faster writes but more hold
leakage), validating each point with transient circuit simulation —
step 2 of the paper's design flow.

Run:  python examples/edram_cell_designer.py
"""

from repro.edram.bitcell import m3d_bitcell, si_bitcell
from repro.edram.retention import retention_time_s, simulate_retention_decay
from repro.edram.subarray import SubArrayDesign
from repro.edram.timing import (
    characterize,
    simulate_read_zero_disturb,
    simulate_write,
)

CLOCK_HZ = 500e6


def main() -> None:
    print("3T M3D bit cell: IGZO write-FET width sweep")
    print("=" * 72)
    print(
        f"{'W (um)':>7s} {'write (ns)':>11s} {'read (ns)':>10s} "
        f"{'retention (s)':>14s} {'meets 2 ns?':>12s}"
    )
    for width in (0.05, 0.10, 0.15, 0.25):
        cell = m3d_bitcell(write_width_um=width)
        subarray = SubArrayDesign(cell)
        timing = characterize(subarray)
        retention = retention_time_s(cell)
        meets = timing.meets_clock(CLOCK_HZ)
        print(
            f"{width:>7.2f} {timing.write_delay_s*1e9:>11.3f} "
            f"{timing.read_delay_s*1e9:>10.3f} {retention:>14.0f} "
            f"{'yes' if meets else 'NO':>12s}"
        )
    print(
        "\nThe paper's design point (W = 0.15 um) writes within the "
        "2 ns clock period while retaining data for >1000 s."
    )

    print()
    print("Si vs M3D cell: why the all-Si macro needs refresh")
    print("-" * 72)
    for cell in (si_bitcell(), m3d_bitcell()):
        retention = retention_time_s(cell)
        leak = cell.hold_leakage_a()
        print(
            f"{cell.name:4s}: hold leakage {leak:.2e} A -> retention "
            f"{retention:.2e} s"
        )

    print()
    print("Write waveform (M3D cell): storage node charging at V_WWL = 1.3 V")
    print("-" * 72)
    delay, sn = simulate_write(SubArrayDesign(m3d_bitcell()))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = sn.times[0] + frac * (sn.times[-1] - sn.times[0])
        print(f"  t = {t*1e9:5.2f} ns   V(SN) = {sn.at(t):.3f} V")
    print(f"  measured write delay (to 90% of final): {delay*1e9:.3f} ns")

    print()
    print("Read-disturb check: reading a stored '0' must not flip the RBL")
    print("-" * 72)
    for make in (si_bitcell, m3d_bitcell):
        droop = simulate_read_zero_disturb(SubArrayDesign(make()))
        print(f"  {make().name:4s}: worst RBL droop {droop*1e3:.1f} mV")

    print()
    print("Retention decay of the Si cell (transient simulation):")
    print("-" * 72)
    si = si_bitcell()
    wave = simulate_retention_decay(si, t_stop=2e-3, n_steps=100)
    for ms in (0.0, 0.5, 1.0, 1.5, 2.0):
        print(f"  t = {ms:.1f} ms   V(SN) = {wave.at(ms*1e-3):.3f} V")


if __name__ == "__main__":
    main()
