"""Per-rule fixture snippets: positive, negative, and pragma-suppressed."""

import textwrap

import pytest

from repro.quality import LintEngine, Baseline


def lint(source, rel_path="core/snippet.py", rules=None):
    """Findings + suppressed count for one in-memory snippet."""
    from repro.quality import RULE_REGISTRY

    selected = None
    if rules is not None:
        selected = [RULE_REGISTRY[r]() for r in rules]
    engine = LintEngine(rules=selected, baseline=Baseline())
    return engine.lint_source(
        textwrap.dedent(source), rel_path=rel_path
    )


def rule_ids(findings):
    return sorted({f.rule for f in findings})


@pytest.mark.smoke
class TestRPL001Units:
    def test_add_mixing_scales_flagged(self):
        findings, _ = lint("total = static_j + dynamic_kwh\n")
        assert rule_ids(findings) == ["RPL001"]
        assert "scales" in findings[0].message

    def test_add_mixing_dimensions_flagged(self):
        findings, _ = lint("x = mass_kg + area_mm2\n")
        assert rule_ids(findings) == ["RPL001"]
        assert "dimensions" in findings[0].message

    def test_same_suffix_ok(self):
        findings, _ = lint("total_j = static_j + dynamic_j\n")
        assert findings == []

    def test_multiplication_is_conversion_not_flagged(self):
        findings, _ = lint("energy_j = power_w * duration_s\n")
        assert findings == []

    def test_comparison_mixing_flagged(self):
        findings, _ = lint("ok = die_area_mm2 < limit_cm2\n")
        assert rule_ids(findings) == ["RPL001"]

    def test_return_suffix_mismatch_flagged(self):
        findings, _ = lint(
            """
            def total_area_cm2(block):
                return block.area_mm2
            """
        )
        assert rule_ids(findings) == ["RPL001"]
        assert "total_area_cm2" in findings[0].message

    def test_return_matching_suffix_ok(self):
        findings, _ = lint(
            """
            def total_area_cm2(block):
                partial_cm2 = block.x_cm2 + block.y_cm2
                return partial_cm2
            """
        )
        assert findings == []

    def test_nested_function_return_not_misattributed(self):
        findings, _ = lint(
            """
            def outer_j():
                def helper_mm2():
                    return pad_mm2
                return base_j
            """
        )
        assert findings == []

    def test_rate_names_exempt(self):
        # RPL001's suffix check exempts `_per_` rate names; the mix is
        # RPL006's to catch via its composite-unit lattice.
        findings, _ = lint(
            "x = intensity_g_per_kwh + other_j\n", rules=["RPL001"]
        )
        assert findings == []
        findings, _ = lint(
            "x = intensity_g_per_kwh + other_j\n", rules=["RPL006"]
        )
        assert rule_ids(findings) == ["RPL006"]

    def test_subscript_and_call_inference(self):
        findings, _ = lint("y = clocks_hz[0] + lifetime_s\n")
        assert rule_ids(findings) == ["RPL001"]
        findings, _ = lint("y = total_energy_kwh() + extra_j\n")
        assert rule_ids(findings) == ["RPL001"]

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            "x = a_j + b_kwh  # repro-lint: disable=RPL001 - test\n"
        )
        assert findings == []
        assert suppressed == 1


@pytest.mark.smoke
class TestRPL002Determinism:
    def test_unseeded_default_rng_flagged(self):
        findings, _ = lint(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert rule_ids(findings) == ["RPL002"]

    def test_seeded_default_rng_ok(self):
        findings, _ = lint(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        )
        assert findings == []

    def test_module_random_flagged(self):
        findings, _ = lint("import random\nx = random.random()\n")
        assert rule_ids(findings) == ["RPL002"]

    def test_seeded_random_instance_ok(self):
        findings, _ = lint("import random\nr = random.Random(7)\n")
        assert findings == []

    def test_legacy_numpy_global_rng_flagged(self):
        findings, _ = lint("import numpy as np\nx = np.random.rand(3)\n")
        assert rule_ids(findings) == ["RPL002"]

    def test_wall_clock_flagged(self):
        findings, _ = lint("import time\nt = time.time()\n")
        assert rule_ids(findings) == ["RPL002"]
        findings, _ = lint(
            "import datetime\nnow = datetime.datetime.now()\n"
        )
        assert rule_ids(findings) == ["RPL002"]

    def test_runtime_package_exempt(self):
        findings, _ = lint(
            "import time\nt = time.time()\n",
            rel_path="runtime/perfcounters.py",
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            "import time\nt = time.time()  # repro-lint: disable=RPL002\n"
        )
        assert findings == []
        assert suppressed == 1


@pytest.mark.smoke
class TestRPL003CachePurity:
    def test_lru_cache_environ_read_flagged(self):
        findings, _ = lint(
            """
            import functools, os

            @functools.lru_cache(maxsize=8)
            def lookup(x):
                return os.environ.get("MODE", "fast") + x
            """,
            rules=["RPL003"],
        )
        assert rule_ids(findings) == ["RPL003"]
        assert "os.environ" in findings[0].message

    def test_module_mutable_read_flagged(self):
        findings, _ = lint(
            """
            from functools import lru_cache

            registry = {}

            @lru_cache()
            def resolve(name):
                return registry[name]
            """,
            rules=["RPL003"],
        )
        assert rule_ids(findings) == ["RPL003"]
        assert "registry" in findings[0].message

    def test_uppercase_module_table_not_flagged(self):
        findings, _ = lint(
            """
            from functools import lru_cache

            GRIDS = {"us": 380.0}

            @lru_cache()
            def intensity(name):
                return GRIDS[name]
            """,
            rules=["RPL003"],
        )
        assert findings == []

    def test_local_shadowing_not_flagged(self):
        findings, _ = lint(
            """
            from functools import lru_cache

            options = {}

            @lru_cache()
            def compute(x):
                options = {"alpha": x}
                return options["alpha"]
            """,
            rules=["RPL003"],
        )
        assert findings == []

    def test_uncached_function_free_to_read_state(self):
        findings, _ = lint(
            """
            import os

            def engine_choice():
                return os.environ.get("REPRO_ISS_ENGINE", "auto")
            """,
            rules=["RPL003"],
        )
        assert findings == []

    def test_sweep_cache_roundtrip_checked(self):
        findings, _ = lint(
            """
            import os
            from repro.runtime.cache import SweepCache

            def win_grid(payload):
                cache = SweepCache()
                hit = cache.get(payload)
                if hit is not None:
                    return hit
                grid = payload["x"] * float(os.environ["SCALE"])
                cache.put(payload, grid)
                return grid
            """,
            rules=["RPL003"],
        )
        assert rule_ids(findings) == ["RPL003"]

    def test_bench_driver_passing_cache_not_checked(self):
        findings, _ = lint(
            """
            import time
            from repro.runtime.cache import SweepCache

            def bench(run):
                cache = SweepCache()
                start = time.time()
                run(cache=cache)
                return time.time() - start
            """,
            rules=["RPL003"],
        )
        assert findings == []

    def test_cache_pure_pragma_opts_in(self):
        findings, _ = lint(
            """
            import os

            def callback(x):  # repro-lint: cache-pure
                return os.environ["MODE"] + x
            """,
            rules=["RPL003"],
        )
        assert rule_ids(findings) == ["RPL003"]

    def test_rng_in_cached_function_flagged(self):
        findings, _ = lint(
            """
            from functools import lru_cache
            import numpy as np

            @lru_cache()
            def noisy(x):
                return x + np.random.default_rng().normal()
            """,
            rules=["RPL003"],
        )
        assert rule_ids(findings) == ["RPL003"]


@pytest.mark.smoke
class TestRPL004FloatEquality:
    def test_float_literal_eq_flagged(self):
        findings, _ = lint("bad = x == 0.5\n", rules=["RPL004"])
        assert rule_ids(findings) == ["RPL004"]
        assert findings[0].severity.value == "warning"

    def test_negated_literal_and_float_cast_flagged(self):
        findings, _ = lint("bad = x != -1.5\n", rules=["RPL004"])
        assert rule_ids(findings) == ["RPL004"]
        findings, _ = lint("bad = float(x) == y\n", rules=["RPL004"])
        assert rule_ids(findings) == ["RPL004"]

    def test_integer_comparison_ok(self):
        findings, _ = lint("ok = n == 0\n", rules=["RPL004"])
        assert findings == []

    def test_ordering_comparison_ok(self):
        findings, _ = lint("ok = x <= 0.5\n", rules=["RPL004"])
        assert findings == []

    def test_runtime_exempt(self):
        findings, _ = lint(
            "bad = x == 0.5\n",
            rel_path="runtime/regression.py",
            rules=["RPL004"],
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            "ok = x == 0.0  # repro-lint: disable=RPL004 - sentinel\n",
            rules=["RPL004"],
        )
        assert findings == []
        assert suppressed == 1


@pytest.mark.smoke
class TestRPL005ApiHygiene:
    def _package(self, tmp_path, init_source, mod_source):
        pkg = tmp_path / "mypkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(
            textwrap.dedent(init_source), encoding="utf-8"
        )
        (pkg / "mod.py").write_text(
            textwrap.dedent(mod_source), encoding="utf-8"
        )
        return pkg

    def _lint_pkg(self, tmp_path, pkg):
        engine = LintEngine(baseline=Baseline())
        report = engine.lint_paths([pkg], root=tmp_path)
        return report.findings

    def test_unbound_export_flagged(self, tmp_path):
        pkg = self._package(
            tmp_path,
            '__all__ = ["missing"]\n',
            "",
        )
        findings = self._lint_pkg(tmp_path, pkg)
        assert [f.rule for f in findings] == ["RPL005"]
        assert "missing" in findings[0].message

    def test_reexport_of_nonexistent_name_flagged(self, tmp_path):
        pkg = self._package(
            tmp_path,
            """
            from mypkg.mod import gone
            __all__ = ["gone"]
            """,
            "value = 1\n",
        )
        findings = self._lint_pkg(tmp_path, pkg)
        assert any(
            f.rule == "RPL005" and "does not define" in f.message
            for f in findings
        )

    def test_reexported_function_without_docstring_flagged(self, tmp_path):
        pkg = self._package(
            tmp_path,
            """
            from mypkg.mod import helper
            __all__ = ["helper"]
            """,
            """
            def helper():
                return 1
            """,
        )
        findings = self._lint_pkg(tmp_path, pkg)
        assert [f.rule for f in findings] == ["RPL005"]
        assert "docstring" in findings[0].message

    def test_documented_exports_clean(self, tmp_path):
        pkg = self._package(
            tmp_path,
            """
            from mypkg.mod import helper, LIMIT
            __version__ = "1.0"
            __all__ = ["helper", "LIMIT", "__version__"]
            """,
            '''
            LIMIT = 10

            def helper():
                """Help."""
                return 1
            ''',
        )
        findings = self._lint_pkg(tmp_path, pkg)
        assert findings == []

    def test_relative_import_resolved(self, tmp_path):
        pkg = self._package(
            tmp_path,
            """
            from .mod import helper
            __all__ = ["helper"]
            """,
            """
            def helper():
                return 1
            """,
        )
        findings = self._lint_pkg(tmp_path, pkg)
        assert [f.rule for f in findings] == ["RPL005"]

    def test_non_init_files_ignored(self):
        findings, _ = lint('__all__ = ["missing"]\n', rules=["RPL005"])
        assert findings == []


class TestParseErrors:
    def test_syntax_error_reported_as_rpl000(self):
        findings, _ = lint("def broken(:\n")
        assert [f.rule for f in findings] == ["RPL000"]
