"""Deterministic load generation against a running PPAtC server.

Two phases, matching how serving systems are actually characterized:

- **closed loop** — ``connections`` concurrent clients, each issuing its
  share of a seeded request corpus back-to-back over one keep-alive
  connection.  Measures throughput (QPS) under full concurrency and
  returns a SHA-256 digest over every response body, keyed by request
  id — the bit-equality evidence ``repro bench-serve`` compares between
  the batched server and the serial-dispatch control.
- **open loop** — requests arrive on a seeded exponential (Poisson)
  schedule regardless of completions, the honest way to measure tail
  latency: a slow server cannot flow-control the arrival process, so
  queueing delay shows up in p99 instead of hiding in a lower offered
  rate.

The corpus is seeded (``random.Random(seed)``) and parameter-diverse on
purpose: distinct float parameters make every scalar-stack evaluation a
trade-off-map cache miss, so the serial control measures real model
work rather than ``lru_cache`` hits.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "LoadPhaseResult",
    "build_corpus",
    "fetch_json",
    "run_closed_loop",
    "run_open_loop",
]

_GRIDS = ("us", "coal", "solar", "taiwan")


def build_corpus(seed: int, n: int) -> List[bytes]:
    """``n`` deterministic point-query bodies (JSON bytes)."""
    rng = random.Random(seed)
    corpus: List[bytes] = []
    for _ in range(n):
        payload = {
            "grid": rng.choice(_GRIDS),
            "lifetime_months": round(rng.uniform(1.0, 48.0), 6),
            "ci_use_scale": round(rng.uniform(0.2, 4.0), 6),
            "emb_scale": round(rng.uniform(0.0, 3.0), 6),
            "op_scale": round(rng.uniform(0.0, 3.0), 6),
        }
        if rng.random() < 0.3:
            payload["candidate_yield"] = round(rng.uniform(0.05, 0.95), 6)
        corpus.append(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
        )
    return corpus


@dataclass
class LoadPhaseResult:
    """What one load phase observed."""

    requests: int
    errors: int
    elapsed_s: float
    latencies_s: List[float] = field(repr=False, default_factory=list)
    #: request index -> SHA-256 hex digest of the response body
    response_digests: Dict[int, str] = field(repr=False, default_factory=dict)

    @property
    def qps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Latency quantile in seconds (q in [0, 1])."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def digest(self) -> str:
        """One digest over all responses, in request-id order."""
        rollup = hashlib.sha256()
        for index in sorted(self.response_digests):
            rollup.update(self.response_digests[index].encode("ascii"))
        return rollup.hexdigest()


def _post_bytes(body: bytes, target: str = "/v1/tcdp") -> bytes:
    return (
        f"POST {target} HTTP/1.1\r\n"
        f"host: loadgen\r\n"
        f"content-type: application/json\r\n"
        f"content-length: {len(body)}\r\n"
        f"\r\n"
    ).encode("ascii") + body


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one response; returns (status, body)."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head[:-4].split(b"\r\n")
    status = int(lines[0].split(b" ")[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def fetch_json(host: str, port: int, target: str) -> dict:
    """One GET (healthz/metricz) returning the decoded JSON body."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {target} HTTP/1.1\r\nhost: loadgen\r\n"
            f"connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        status, body = await _read_response(reader)
        if status != 200:
            raise RuntimeError(f"GET {target} -> {status}")
        return json.loads(body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_closed_loop(
    host: str,
    port: int,
    corpus: Sequence[bytes],
    connections: int = 32,
) -> LoadPhaseResult:
    """All connections replay their corpus shares as fast as possible."""
    result = LoadPhaseResult(requests=0, errors=0, elapsed_s=0.0)
    shares: List[List[Tuple[int, bytes]]] = [
        [] for _ in range(connections)
    ]
    for index, body in enumerate(corpus):
        shares[index % connections].append((index, body))

    async def client(share: List[Tuple[int, bytes]]) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for index, body in share:
                t0 = time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
                writer.write(_post_bytes(body))
                await writer.drain()
                status, payload = await _read_response(reader)
                t1 = time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
                result.latencies_s.append(t1 - t0)
                result.requests += 1
                if status != 200:
                    result.errors += 1
                result.response_digests[index] = hashlib.sha256(
                    payload
                ).hexdigest()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    start = time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
    await asyncio.gather(*(client(share) for share in shares if share))
    result.elapsed_s = time.perf_counter() - start  # repro-lint: disable=RPL002 - load generator measures real latency by design
    return result


async def run_open_loop(
    host: str,
    port: int,
    corpus: Sequence[bytes],
    rate_qps: float,
    seed: int = 0,
    connections: int = 32,
    expect_shed: bool = False,
) -> LoadPhaseResult:
    """Poisson arrivals at ``rate_qps`` over a fixed connection pool.

    Each arrival takes the next free pooled connection; if the pool is
    empty the arrival *waits for one* and that wait counts toward its
    latency — open-loop semantics up to pool exhaustion.  HTTP 429s
    count as errors unless ``expect_shed`` (the shedding phase of the
    bench drives the server past ``max_pending`` on purpose).
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be > 0")
    rng = random.Random(seed)
    result = LoadPhaseResult(requests=0, errors=0, elapsed_s=0.0)
    pool: "asyncio.Queue[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]" = (
        asyncio.Queue()
    )
    for _ in range(connections):
        pool.put_nowait(await asyncio.open_connection(host, port))

    async def one_request(index: int, body: bytes, arrival: float) -> None:
        reader, writer = await pool.get()
        try:
            writer.write(_post_bytes(body))
            await writer.drain()
            status, payload = await _read_response(reader)
            done = time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
            result.latencies_s.append(done - arrival)
            result.requests += 1
            if status != 200 and not (expect_shed and status == 429):
                result.errors += 1
            result.response_digests[index] = hashlib.sha256(
                payload
            ).hexdigest()
        finally:
            pool.put_nowait((reader, writer))

    tasks: List["asyncio.Task[None]"] = []
    start = time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
    next_at = start
    for index, body in enumerate(corpus):
        next_at += rng.expovariate(rate_qps)
        delay = next_at - time.perf_counter()  # repro-lint: disable=RPL002 - load generator measures real latency by design
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.get_running_loop().create_task(
                one_request(index, body, next_at)
            )
        )
    await asyncio.gather(*tasks)
    result.elapsed_s = time.perf_counter() - start  # repro-lint: disable=RPL002 - load generator measures real latency by design
    while not pool.empty():
        _, writer = pool.get_nowait()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return result
