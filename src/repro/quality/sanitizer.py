"""tsan-lite: a runtime race harness for the serve/runtime stack.

RPL009-RPL012 are static; this module is the dynamic complement.
``repro sanitize <pytest args>`` runs a test expression under two
cooperating hooks and reports what static analysis cannot prove:

- **Unguarded shared writes** (``sys.settrace`` +
  ``threading.settrace``).  Watched source files are parsed once into a
  per-line map of attribute-write targets (``self.X = ...``,
  ``obj.X += ...``, ``self.X.append(...)``); at runtime each ``line``
  event resolves the receiver object from the frame and records a
  *write sample* — thread id, the set of locks currently held, the
  source location, and the innermost live ``repro.obs`` span.  Two
  writes to the same ``(object, attribute)`` from different threads
  with **disjoint lock sets** are a race (the Eraser lockset
  discipline): nothing orders them, so one update can be lost.

- **Lock-order inversions** (``sys.setprofile`` +
  ``threading.setprofile``).  ``c_call`` events on
  ``lock.acquire``/``__enter__`` maintain a per-thread held-lock stack
  and a global acquired-after graph; acquiring B while holding A when
  some thread previously acquired A while holding B is a latent
  deadlock, reported with both acquisition sites.

Like ThreadSanitizer, the harness observes *this run's* interleavings
only — a clean run is evidence, not proof.  Unlike tsan it has no
happens-before engine, so lifecycle fields that are toggled
single-threadedly from different threads over the process lifetime
(start from the loop thread, teardown from the test main thread) can
trip the lockset check; those carry entries in the **ignore list**
(``Class.attr``, see ``DEFAULT_IGNORES``) rather than locks they do
not need.

Span attribution hooks :class:`repro.obs.trace._Span` enter/exit, so
when tracing is enabled each write sample names the span it happened
under — ``serve.request`` vs ``batch.evaluate`` localizes a race to a
code path, which a bare thread id cannot.
"""

from __future__ import annotations

import ast
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DEFAULT_IGNORES",
    "LockOrderReport",
    "RaceReport",
    "Sanitizer",
    "SanitizerReport",
    "default_watch_paths",
    "run_pytest",
]

#: ``Class.attr`` pairs exempt from the lockset check: lifecycle flags
#: toggled single-threadedly (enable on the serving thread, disable in
#: test teardown) that the harness cannot order without happens-before.
DEFAULT_IGNORES: FrozenSet[str] = frozenset(
    {
        "Tracer.enabled",
        "MetricsRegistry.enabled",
    }
)

#: Lock-typed receivers recognized by the profile hook.
_LOCK_TYPE_NAMES = frozenset({"lock", "RLock"})

_ACQUIRE_NAMES = frozenset({"acquire", "__enter__", "acquire_lock"})
_RELEASE_NAMES = frozenset({"release", "__exit__", "release_lock"})

#: Acquisitions made from inside the stdlib threading module itself
#: (Condition/Event waiter-lock protocol) are excluded from order-edge
#: tracking — that protocol takes its locks in both orders by design.
_THREADING_FILE = threading.__file__

#: In-place mutations of ``self.X.<method>(...)`` counted as writes to X.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "appendleft",
    }
)


def default_watch_paths() -> List[Path]:
    """The packages the CI sanitize job watches: serve, obs, runtime."""
    import repro

    root = Path(repro.__file__).resolve().parent
    return [root / "serve", root / "obs", root / "runtime"]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WriteSample:
    """One observed attribute write."""

    tid: int
    locks: FrozenSet[int]
    location: str
    span: str


@dataclass(frozen=True)
class RaceReport:
    """Two unordered writes to the same field from different threads."""

    owner: str  # class name of the written object
    attr: str
    first: WriteSample
    second: WriteSample

    def describe(self) -> str:
        return (
            f"data race on {self.owner}.{self.attr}: "
            f"write at {self.first.location} "
            f"(tid={self.first.tid}, span={self.first.span}) and "
            f"write at {self.second.location} "
            f"(tid={self.second.tid}, span={self.second.span}) "
            f"hold no common lock"
        )


@dataclass(frozen=True)
class LockOrderReport:
    """Two locks acquired in both orders by different code paths."""

    forward: str  # "A then B at <loc>"
    backward: str

    def describe(self) -> str:
        return (
            f"lock-order inversion: {self.forward}, but {self.backward} "
            f"— a latent deadlock under the wrong interleaving"
        )


@dataclass
class SanitizerReport:
    """Everything one harness run observed."""

    races: List[RaceReport] = field(default_factory=list)
    inversions: List[LockOrderReport] = field(default_factory=list)
    writes_seen: int = 0
    files_watched: int = 0

    @property
    def clean(self) -> bool:
        return not self.races and not self.inversions

    def render(self) -> str:
        lines = [
            f"repro-sanitize: {len(self.races)} race(s), "
            f"{len(self.inversions)} lock-order inversion(s) "
            f"({self.writes_seen} write(s) across "
            f"{self.files_watched} watched file(s))"
        ]
        for race in self.races:
            lines.append(f"  RACE {race.describe()}")
        for inversion in self.inversions:
            lines.append(f"  ORDER {inversion.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Static write-site extraction
# ---------------------------------------------------------------------------
@dataclass
class _FileMap:
    """Per-file static facts the line tracer consults.

    ``writes``: lineno -> [(receiver local name, attribute)] write
    sites.  ``lock_headers``: lineno -> [(base name, attr chain)] for
    ``with <expr>:`` headers whose context expression is a plain
    name/attribute chain — resolved against frame locals at runtime and
    counted as an acquire if the object is lock-typed.  CPython emits
    no ``c_call`` profile event for a ``with`` block's ``__enter__``
    (only for ``__exit__``), so without this the profile hook would
    never see with-based guards at all.
    """

    writes: Dict[int, List[Tuple[str, str]]] = field(default_factory=dict)
    lock_headers: Dict[int, List[Tuple[str, Tuple[str, ...]]]] = field(
        default_factory=dict
    )

    def __bool__(self) -> bool:
        return bool(self.writes or self.lock_headers)


def _attr_chain(node: ast.expr) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """``a.b.c`` as ``("a", ("b", "c"))``; None for anything else."""
    attrs: List[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, tuple(reversed(attrs))
    return None


def _write_map(source: str) -> _FileMap:
    """Write sites and with-lock headers for one watched file.

    Only single-level receivers are tracked for writes (``self.X``,
    ``obj.X``); multi-level chains like ``self._local.depth`` are
    skipped — in this codebase those are ``threading.local`` slots,
    per-thread by construction.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return _FileMap()
    file_map = _FileMap()
    out = file_map.writes

    def record(node: ast.expr, lineno: int) -> None:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            out.setdefault(lineno, []).append((node.value.id, node.attr))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.lineno)
                if isinstance(target, ast.Subscript):
                    record(target.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node.lineno)
        elif isinstance(node, ast.AugAssign):
            record(node.target, node.lineno)
            if isinstance(node.target, ast.Subscript):
                record(node.target.value, node.lineno)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_METHODS:
                record(node.func.value, node.lineno)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                chain = _attr_chain(item.context_expr)
                if chain is not None:
                    file_map.lock_headers.setdefault(
                        node.lineno, []
                    ).append(chain)
    return file_map


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
class Sanitizer:
    """Install/uninstall the hooks and accumulate reports.

    Use as a context manager::

        sanitizer = Sanitizer()
        with sanitizer:
            run_the_workload()
        report = sanitizer.report
    """

    MAX_REPORTS = 50

    def __init__(
        self,
        watch: Optional[Sequence[Path]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        paths = list(watch) if watch is not None else default_watch_paths()
        self._prefixes = tuple(str(p.resolve()) for p in paths)
        self._ignore = frozenset(ignore) if ignore is not None else (
            DEFAULT_IGNORES
        )
        self.report = SanitizerReport()
        # filename -> file map (None = not watched), consulted per call.
        self._maps: Dict[str, Optional[_FileMap]] = {}
        # (id(obj), attr) -> {tid: last sample}; owner class kept aside.
        self._writes: Dict[Tuple[int, str], Dict[int, WriteSample]] = {}
        self._owners: Dict[Tuple[int, str], str] = {}
        self._race_keys: Set[Tuple[str, str, str, str]] = set()
        # Lock bookkeeping.
        self._held = threading.local()
        self._tid_local = threading.local()
        self._tid_counter = 0
        self._edges: Dict[Tuple[int, int], str] = {}
        self._inversion_keys: Set[Tuple[int, int]] = set()
        self._state_lock = threading.Lock()
        self._span_stack = threading.local()
        self._orig_span_enter = None
        self._orig_span_exit = None
        self._prev_trace = None
        self._prev_profile = None

    # -- install/uninstall ---------------------------------------------
    def __enter__(self) -> "Sanitizer":
        self._patch_spans()
        self._prev_trace = sys.gettrace()
        self._prev_profile = sys.getprofile()
        threading.settrace(self._trace)
        threading.setprofile(self._profile)
        sys.settrace(self._trace)
        sys.setprofile(self._profile)
        return self

    def __exit__(self, *exc: object) -> bool:
        sys.settrace(self._prev_trace)
        sys.setprofile(self._prev_profile)
        threading.settrace(None)  # type: ignore[arg-type]
        threading.setprofile(None)  # type: ignore[arg-type]
        self._unpatch_spans()
        self.report.files_watched = sum(
            1 for m in self._maps.values() if m
        )
        return False

    # -- span attribution ----------------------------------------------
    def _patch_spans(self) -> None:
        from repro.obs import trace as trace_mod

        sanitizer = self
        self._orig_span_enter = trace_mod._Span.__enter__
        self._orig_span_exit = trace_mod._Span.__exit__

        def enter(span):  # type: ignore[no-untyped-def]
            stack = getattr(sanitizer._span_stack, "names", None)
            if stack is None:
                stack = sanitizer._span_stack.names = []
            stack.append(span.name)
            return sanitizer._orig_span_enter(span)

        def exit_(span, exc_type, exc, tb):  # type: ignore[no-untyped-def]
            stack = getattr(sanitizer._span_stack, "names", None)
            if stack:
                stack.pop()
            return sanitizer._orig_span_exit(span, exc_type, exc, tb)

        trace_mod._Span.__enter__ = enter
        trace_mod._Span.__exit__ = exit_

    def _unpatch_spans(self) -> None:
        from repro.obs import trace as trace_mod

        if self._orig_span_enter is not None:
            trace_mod._Span.__enter__ = self._orig_span_enter
            trace_mod._Span.__exit__ = self._orig_span_exit
            self._orig_span_enter = None
            self._orig_span_exit = None

    def _current_span(self) -> str:
        stack = getattr(self._span_stack, "names", None)
        return stack[-1] if stack else "-"

    # -- write tracking (trace hook) -----------------------------------
    def _map_for(self, filename: str) -> Optional[_FileMap]:
        if filename in self._maps:
            return self._maps[filename]
        result: Optional[_FileMap] = None
        if filename.startswith(self._prefixes):
            try:
                source = Path(filename).read_text(encoding="utf-8")
            except OSError:
                source = ""
            result = _write_map(source)
        self._maps[filename] = result
        return result

    def _trace(self, frame, event, arg):  # type: ignore[no-untyped-def]
        if event != "call":
            return None
        if self._map_for(frame.f_code.co_filename):
            return self._trace_line
        return None

    def _trace_line(self, frame, event, arg):  # type: ignore[no-untyped-def]
        if event != "line":
            return self._trace_line
        sites = self._maps.get(frame.f_code.co_filename)
        if not sites:
            return self._trace_line
        headers = sites.lock_headers.get(frame.f_lineno)
        if headers:
            for base, attrs in headers:
                obj = frame.f_locals.get(base)
                for attr in attrs:
                    if obj is None:
                        break
                    obj = getattr(obj, attr, None)
                if (
                    obj is not None
                    and obj is not self._state_lock
                    and type(obj).__name__ in _LOCK_TYPE_NAMES
                ):
                    # The header line fires just before __enter__ runs;
                    # close enough for lockset and ordering purposes.
                    self._on_acquire(
                        obj,
                        f"{frame.f_code.co_filename}:{frame.f_lineno}",
                        reentrant_ok=False,
                    )
        targets = sites.writes.get(frame.f_lineno)
        if not targets:
            return self._trace_line
        for base, attr in targets:
            owner = frame.f_locals.get(base)
            if owner is None:
                continue
            owner_cls = type(owner).__name__
            if f"{owner_cls}.{attr}" in self._ignore:
                continue
            self._record_write(
                owner,
                owner_cls,
                attr,
                f"{frame.f_code.co_filename}:{frame.f_lineno}",
            )
        return self._trace_line

    def _thread_token(self) -> int:
        """A stable per-thread id.

        ``threading.get_ident()`` is recycled the moment a thread
        exits, so two short-lived threads can share one ident and their
        writes would collapse into a single (raceless) history.  Tokens
        are handed out once per thread and never reused.
        """
        token = getattr(self._tid_local, "token", None)
        if token is None:
            with self._state_lock:
                self._tid_counter += 1
                token = self._tid_counter
            self._tid_local.token = token
        return token

    def _record_write(
        self, owner: object, owner_cls: str, attr: str, location: str
    ) -> None:
        tid = self._thread_token()
        sample = WriteSample(
            tid=tid,
            locks=self._held_locks(),
            location=location,
            span=self._current_span(),
        )
        key = (id(owner), attr)
        with self._state_lock:
            self.report.writes_seen += 1
            per_thread = self._writes.setdefault(key, {})
            self._owners[key] = owner_cls
            for other_tid, other in per_thread.items():
                if other_tid == tid:
                    continue
                if other.locks.isdisjoint(sample.locks):
                    race_key = (
                        owner_cls,
                        attr,
                        *sorted((other.location, sample.location)),
                    )
                    if race_key in self._race_keys:
                        continue
                    self._race_keys.add(race_key)
                    if len(self.report.races) < self.MAX_REPORTS:
                        self.report.races.append(
                            RaceReport(
                                owner=owner_cls,
                                attr=attr,
                                first=other,
                                second=sample,
                            )
                        )
            per_thread[tid] = sample

    # -- lock tracking (profile hook) ----------------------------------
    def _held_list(self) -> List[Tuple[int, str]]:
        held = getattr(self._held, "locks", None)
        if held is None:
            held = self._held.locks = []
        return held

    def _held_locks(self) -> FrozenSet[int]:
        return frozenset(lock_id for lock_id, _ in self._held_list())

    def _profile(self, frame, event, arg):  # type: ignore[no-untyped-def]
        if event not in ("c_call", "c_return"):
            return
        receiver = getattr(arg, "__self__", None)
        if receiver is None or receiver is self._state_lock:
            return
        if type(receiver).__name__ not in _LOCK_TYPE_NAMES:
            return
        name = getattr(arg, "__name__", "")
        filename = frame.f_code.co_filename
        location = f"{filename}:{frame.f_lineno}"
        if event == "c_return" and name in _ACQUIRE_NAMES:
            # threading.py's own Condition/Event waiter protocol takes
            # its internal locks in both orders by design; held-set
            # tracking still sees them, but they never form order edges.
            # ``__enter__`` acquires are non-reentrant because watched
            # ``with`` headers are already recorded by the line tracer.
            self._on_acquire(
                receiver,
                location,
                track_order=filename != _THREADING_FILE,
                reentrant_ok=name != "__enter__",
            )
        elif event == "c_call" and name in _RELEASE_NAMES:
            self._on_release(receiver)

    def _on_acquire(
        self,
        lock: object,
        location: str,
        track_order: bool = True,
        reentrant_ok: bool = True,
    ) -> None:
        held = self._held_list()
        lock_id = id(lock)
        if any(h == lock_id for h, _ in held):
            if reentrant_ok:
                held.append((lock_id, location))  # reentrant RLock acquire
            return
        if not track_order:
            held.append((lock_id, location))
            return
        with self._state_lock:
            for held_id, held_loc in held:
                edge = (held_id, lock_id)
                self._edges.setdefault(
                    edge, f"{held_loc} then {location}"
                )
                back = (lock_id, held_id)
                if back in self._edges:
                    inversion_key = (
                        min(held_id, lock_id),
                        max(held_id, lock_id),
                    )
                    if inversion_key not in self._inversion_keys:
                        self._inversion_keys.add(inversion_key)
                        if len(self.report.inversions) < self.MAX_REPORTS:
                            self.report.inversions.append(
                                LockOrderReport(
                                    forward=self._edges[back],
                                    backward=self._edges[edge],
                                )
                            )
        held.append((lock_id, location))

    def _on_release(self, lock: object) -> None:
        held = self._held_list()
        lock_id = id(lock)
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == lock_id:
                del held[index]
                return


# ---------------------------------------------------------------------------
# pytest driver
# ---------------------------------------------------------------------------
def run_pytest(
    pytest_args: Sequence[str],
    watch: Optional[Sequence[Path]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[SanitizerReport, int]:
    """Run ``pytest.main(pytest_args)`` under the harness.

    Returns ``(report, exit_code)`` where the exit code is pytest's
    unless the run found races/inversions (then 1).
    """
    try:
        import pytest
    except ImportError:  # pragma: no cover - test env always has pytest
        raise RuntimeError(
            "repro sanitize drives pytest; install the [test] extra"
        )
    sanitizer = Sanitizer(watch=watch, ignore=ignore)
    with sanitizer:
        status = int(pytest.main(list(pytest_args)))
    report = sanitizer.report
    if not report.clean:
        status = status or 1
    return report, status
