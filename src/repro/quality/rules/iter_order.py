"""RPL012 — iteration-order nondeterminism feeding unit-carrying sums.

The paper's reproduction gate is *bit-identical* results — scalar vs
batched, serial vs N-lane, run vs re-run.  Float addition is not
associative, so the same multiset of ``_j`` / ``_gco2`` terms summed in
two different orders produces two different bit patterns.  Any
accumulation whose order the runtime does not pin is therefore a direct
bit-identity hazard:

- ``set`` / ``frozenset`` iteration order depends on insertion history
  and hash seeding;
- ``os.listdir`` / ``os.scandir`` / ``Path.iterdir/glob/rglob`` return
  filesystem order, which differs across machines and filesystems;
- ``dict.values()/keys()/items()`` order is insertion order — stable
  only if every code path builds the dict in the same order, an
  invariant nothing enforces once dicts are filled from parallel
  workers or merged caches.

The rule piggybacks on the RPL006 unit lattice to stay quiet on
non-numeric code: a ``sum(...)`` or ``acc += ...`` loop over one of the
iterables above is flagged **only when** a unit suffix resolves
somewhere in the flow — on the summed expression, the loop
accumulator, or the assignment target (``total_j = sum(...)``).
Counting filenames in a set is fine; summing ``embodied_gco2`` over one
is not.

The fix — and the rule's escape hatch — is to pin the order:
``sorted(...)`` around the iterable exempts the site, as does
``math.fsum`` (exact, hence order-independent).  A site whose order is
provably fixed by construction can carry a ``# repro-lint:
disable=RPL012`` pragma saying why.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.quality.concurrency import walk_scope
from repro.quality.dimensions import resolve_unit
from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import Rule, dotted_name, register

_FS_CALLS = {
    "os.listdir": "os.listdir() (filesystem order)",
    "os.scandir": "os.scandir() (filesystem order)",
}

_FS_METHODS = {"iterdir", "glob", "rglob"}

_DICT_VIEWS = {"values", "keys", "items"}


def _set_like_names(nodes) -> Set[str]:
    """Scope-local names bound to set-valued expressions."""
    names: Set[str] = set()
    for node in nodes:
        if not isinstance(node, ast.Assign):
            continue
        if not _is_set_expr(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in ("set", "frozenset"):
            return True
    return False


def _nondet_reason(node: ast.expr, set_names: Set[str]) -> Optional[str]:
    """Why iterating ``node`` has no pinned order, if it doesn't."""
    if isinstance(node, ast.Set):
        return "a set display"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"'{node.id}' (bound to a set in this scope)"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            last = name.split(".")[-1]
            if last == "sorted":
                return None  # order pinned; deterministic
            if last in ("set", "frozenset"):
                return f"{last}(...)"
            if name in _FS_CALLS:
                return _FS_CALLS[name]
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _FS_METHODS:
                return f".{attr}() (filesystem order)"
            if attr in _DICT_VIEWS:
                receiver = dotted_name(node.func.value) or "<dict>"
                return (
                    f"{receiver}.{attr}() (insertion-order dependent)"
                )
    return None


def _unit_mention(expr: Optional[ast.expr]) -> Optional[str]:
    """A unit suffix resolving anywhere in ``expr``, as ``_<suffix>``."""
    if expr is None:
        return None
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None:
            continue
        unit = resolve_unit(name)
        if unit is not None:
            return f"'{name}' (_{unit.suffix})"
    return None


def _target_unit(stmt: ast.stmt) -> Optional[str]:
    """A unit suffix on the statement's assignment target, if any."""
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is None:
            continue
        unit = resolve_unit(name)
        if unit is not None:
            return f"'{name}' (_{unit.suffix})"
    return None


@register
class IterOrderRule(Rule):
    """Unit-carrying accumulation needs a pinned iteration order."""

    rule_id = "RPL012"
    severity = Severity.ERROR
    summary = "no unit-carrying sums over unordered iterables"

    def check(self, ctx) -> Iterator[Finding]:
        scopes = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            nodes = list(walk_scope(body))
            set_names = _set_like_names(nodes)
            for node in nodes:
                if isinstance(node, ast.stmt):
                    yield from self._check_stmt(ctx, node, set_names)

    # ------------------------------------------------------------------
    def _check_stmt(
        self, ctx, stmt: ast.stmt, set_names: Set[str]
    ) -> Iterator[Finding]:
        # ``sum(...)`` call sites anywhere in the statement's expressions.
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # nested scopes checked on their own
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            last = name.split(".")[-1]
            if last == "fsum":
                continue  # math.fsum is exact, order-independent
            if last != "sum" or not node.args:
                continue
            iterable = node.args[0]
            element: Optional[ast.expr] = iterable
            if isinstance(iterable, (ast.GeneratorExp, ast.ListComp)):
                element = iterable.elt
                iterable = iterable.generators[0].iter
            reason = _nondet_reason(iterable, set_names)
            if reason is None:
                continue
            unit = _unit_mention(element) or _target_unit(stmt)
            if unit is None and element is not iterable:
                unit = _unit_mention(iterable)
            if unit is None:
                continue
            yield self.finding(
                ctx,
                node,
                (
                    f"iteration-order nondeterminism: sum over {reason} "
                    f"feeds unit-carrying {unit}; float addition is not "
                    f"associative, so the result is not bit-stable — "
                    f"sort the iterable (sorted(...)) or use math.fsum"
                ),
            )
        # ``for x in <unordered>: acc += ...`` accumulation loops.
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            reason = _nondet_reason(stmt.iter, set_names)
            if reason is None:
                return
            for inner in walk_scope(stmt.body):
                if not isinstance(inner, ast.AugAssign):
                    continue
                if not isinstance(inner.op, (ast.Add, ast.Sub)):
                    continue
                unit = _target_unit(inner) or _unit_mention(inner.value)
                if unit is None:
                    continue
                yield self.finding(
                    ctx,
                    inner,
                    (
                        f"iteration-order nondeterminism: accumulation "
                        f"over {reason} feeds unit-carrying {unit}; "
                        f"iterate in sorted order to keep the sum "
                        f"bit-stable"
                    ),
                )
