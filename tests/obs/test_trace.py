"""Span recording, nesting, Chrome-trace export, and the text tree."""

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer


class TestSpanRecording:
    def test_span_records_on_exit(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", kind="unit"):
            pass
        (record,) = tracer.spans
        assert record.name == "work"
        assert record.args == {"kind": "unit"}
        assert record.duration_ns >= 0
        assert record.pid == os.getpid()
        assert record.tid == threading.get_ident()

    def test_nesting_depth_and_ordering(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        # Spans record on close: children first, parent last.
        names = [r.name for r in tracer.spans]
        assert names == ["inner", "sibling", "outer"]
        by_name = {r.name: r for r in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["sibling"].depth == 1
        # The parent interval contains both children.
        outer = by_name["outer"]
        for child in ("inner", "sibling"):
            assert by_name[child].start_ns >= outer.start_ns
            assert by_name[child].end_ns <= outer.end_ns

    def test_depth_recovers_after_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (record,) = tracer.spans
        assert record.args["error"] == "RuntimeError"
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].depth == 0

    def test_set_attaches_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("run", engine="fast") as sp:
            sp.set(cycles=100, instructions=80)
        (record,) = tracer.spans
        assert record.args == {
            "engine": "fast", "cycles": 100, "instructions": 80,
        }

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [r.span_id for r in tracer.spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_add_span_replays_worker_records(self):
        tracer = Tracer(enabled=True)
        tracer.add_span(
            "chunk", start_ns=1000, duration_ns=500, pid=4242,
            args={"index": 3},
        )
        (record,) = tracer.spans
        assert record.pid == 4242
        assert record.start_ns == 1000
        assert record.end_ns == 1500
        assert record.args == {"index": 3}

    def test_reset_drops_records_keeps_enabled(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.enabled


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        assert tracer.span("other") is span

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            assert sp.set(anything=1) is NULL_SPAN
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.add_span("y", start_ns=0, duration_ns=1)
        assert tracer.spans == []

    def test_global_span_helper_respects_enabled(self, clean_obs):
        assert obs.span("x") is NULL_SPAN
        obs.enable()
        with obs.span("x"):
            pass
        assert [r.name for r in obs.get_tracer().spans] == ["x"]


class TestTracedDecorator:
    def test_traced_wraps_and_names(self, clean_obs):
        @obs.traced(name="custom.label")
        def work(a, b):
            return a + b

        obs.enable()
        assert work(2, 3) == 5
        (record,) = obs.get_tracer().spans
        assert record.name == "custom.label"

    def test_traced_bare_uses_qualname(self, clean_obs):
        @obs.traced
        def helper():
            return 7

        obs.enable()
        assert helper() == 7
        (record,) = obs.get_tracer().spans
        assert record.name.endswith("helper")

    def test_traced_disabled_records_nothing(self, clean_obs):
        @obs.traced
        def helper():
            return 7

        assert helper() == 7
        assert obs.get_tracer().spans == []


class TestChromeTraceExport:
    def test_complete_event_schema(self):
        tracer = Tracer(enabled=True)
        with tracer.span("artifact.table2", sha="abc"):
            time.sleep(0.001)
        payload = tracer.to_chrome_trace()
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "artifact.table2"
        assert event["cat"] == "artifact"
        assert event["pid"] == os.getpid()
        assert isinstance(event["ts"], float)
        assert event["dur"] > 0
        assert event["args"] == {"sha": "abc"}

    def test_timestamps_rebased_to_zero(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        events = tracer.to_chrome_trace()["traceEvents"]
        assert min(e["ts"] for e in events) == 0.0

    def test_counter_events_from_metrics_snapshot(self, clean_obs):
        obs.enable()
        obs.get_metrics().counter("cache.iss.hits").inc(3)
        obs.get_metrics().gauge("depth").set(2.5)
        with obs.get_tracer().span("s"):
            pass
        events = obs.get_tracer().to_chrome_trace(
            metrics=obs.get_metrics()
        )["traceEvents"]
        counters = {e["name"]: e for e in events if e["ph"] == "C"}
        assert counters["cache.iss.hits"]["args"] == {"value": 3}
        assert counters["depth"]["args"] == {"value": 2.5}

    def test_write_chrome_trace_valid_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        n = tracer.write_chrome_trace(path)
        assert n == 2
        data = json.loads(path.read_text(encoding="utf-8"))
        assert len(data["traceEvents"]) == 2

    def test_empty_trace_is_valid(self, tmp_path):
        tracer = Tracer(enabled=True)
        path = tmp_path / "trace.json"
        assert tracer.write_chrome_trace(path) == 0
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["traceEvents"] == []


class TestRenderTree:
    def test_indentation_and_grouping(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.add_span("chunk", start_ns=0, duration_ns=10, pid=99999999)
        text = tracer.render_tree()
        lines = text.splitlines()
        assert any(line.startswith("[main tid=") for line in lines)
        assert any("[worker pid=99999999" in line for line in lines)
        outer_line = next(ln for ln in lines if "outer" in ln)
        inner_line = next(ln for ln in lines if "inner" in ln)
        indent = lambda s: len(s) - len(s.lstrip())  # noqa: E731
        assert indent(inner_line) > indent(outer_line)

    def test_empty_tracer_renders_placeholder(self):
        assert Tracer().render_tree() == "(no spans recorded)"

    def test_max_spans_truncation(self):
        tracer = Tracer(enabled=True)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        text = tracer.render_tree(max_spans=3)
        assert "more span(s)" in text


class TestEnvConfiguration:
    def test_env_requests_tracing_falsy_values(self):
        for value in ("", "0", "false", "No", "OFF"):
            assert not obs.env_requests_tracing({obs.ENV_TRACE: value})
        assert not obs.env_requests_tracing({})
        for value in ("1", "true", "yes", "spans"):
            assert obs.env_requests_tracing({obs.ENV_TRACE: value})

    def test_enabled_scope_restores(self, clean_obs):
        assert not obs.enabled()
        with obs.enabled_scope():
            assert obs.enabled()
        assert not obs.enabled()


class TestSpanRecord:
    def test_derived_properties(self):
        record = SpanRecord(
            span_id=1, name="s", start_ns=10, duration_ns=2_000_000_000,
            pid=1, tid=1, depth=0,
        )
        assert record.end_ns == 2_000_000_010
        assert record.duration_s == pytest.approx(2.0)
