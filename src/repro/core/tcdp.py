"""tCDP: total-carbon-delay product, the paper's carbon-efficiency metric.

tCDP = tC * (application execution time), in gCO2e/Hz when the execution
time is expressed through the clock: executing N cycles at f_clk takes
N / f_clk seconds, so normalizing per cycle gives gCO2e * s = gCO2e / Hz
(reference [18] of the paper).  Because both case-study designs run the
same cycle count at the same clock, their tCDP ratio equals their tC
ratio — and as C_operational dominates at long lifetimes, the tCDP ratio
converges to the energy-delay-product (EDP) ratio (Fig. 5b).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.total_carbon import TotalCarbonModel
from repro.errors import CarbonModelError


def execution_time_s(n_cycles: int, clock_hz: float) -> float:
    """Application execution time for a cycle count at a clock frequency."""
    if n_cycles < 0:
        raise CarbonModelError(f"cycle count must be >= 0, got {n_cycles}")
    if np.any(clock_hz <= 0):
        raise CarbonModelError(f"clock must be > 0, got {clock_hz}")
    return n_cycles / clock_hz


def tcdp(total_carbon_g: float, execution_time_seconds: float) -> float:
    """tCDP in gCO2e * s (equivalently gCO2e/Hz)."""
    if np.any(total_carbon_g < 0):
        raise CarbonModelError(
            f"total carbon must be >= 0, got {total_carbon_g}"
        )
    if np.any(execution_time_seconds < 0):
        raise CarbonModelError(
            f"execution time must be >= 0, got {execution_time_seconds}"
        )
    return total_carbon_g * execution_time_seconds


def tcdp_for_model(
    model: TotalCarbonModel,
    n_cycles: int,
    clock_hz: float,
    lifetime_months: Optional[float] = None,
) -> float:
    """tCDP of a :class:`TotalCarbonModel` at a lifetime."""
    return tcdp(
        model.total_g(lifetime_months), execution_time_s(n_cycles, clock_hz)
    )


def tcdp_ratio(
    candidate: TotalCarbonModel,
    baseline: TotalCarbonModel,
    candidate_time_s: float,
    baseline_time_s: float,
    lifetime_months: Optional[float] = None,
) -> float:
    """tCDP(candidate) / tCDP(baseline); < 1 means the candidate wins."""
    num = tcdp(candidate.total_g(lifetime_months), candidate_time_s)
    den = tcdp(baseline.total_g(lifetime_months), baseline_time_s)
    if den == 0:
        raise CarbonModelError("baseline tCDP is zero; ratio undefined")
    return num / den


def tcdp_ratio_series(
    candidate: TotalCarbonModel,
    baseline: TotalCarbonModel,
    months: Sequence[float],
    candidate_time_s: float,
    baseline_time_s: float,
) -> "list[float]":
    """tCDP ratio at each lifetime in ``months`` (Fig. 5b annotations)."""
    return [
        tcdp_ratio(candidate, baseline, candidate_time_s, baseline_time_s, m)
        for m in months
    ]


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-delay product, J*s.

    The asymptote of the tCDP ratio for long lifetimes (Fig. 5b): once
    C_operational dominates, tC is proportional to energy, so the tCDP
    ratio tends to the EDP ratio.
    """
    if np.any(energy_j < 0) or np.any(delay_s < 0):
        raise CarbonModelError("energy and delay must be >= 0")
    return energy_j * delay_s


def edp_ratio(
    candidate_power_w: float,
    baseline_power_w: float,
    candidate_time_s: float,
    baseline_time_s: float,
) -> float:
    """Limit of the tCDP ratio as lifetime -> infinity.

    For equal usage duty cycles, energy is proportional to power, so the
    EDP ratio reduces to (P_c * t_c^2) / (P_b * t_b^2); with equal
    execution times it is simply the power ratio.
    """
    if np.any(baseline_power_w <= 0) or np.any(baseline_time_s <= 0):
        raise CarbonModelError("baseline power and time must be > 0")
    return (candidate_power_w * candidate_time_s**2) / (
        baseline_power_w * baseline_time_s**2
    )
