"""Fixed-step transient analysis (backward Euler).

Backward Euler is L-stable — the right choice for stiff memory-cell
netlists that mix femtofarad storage nodes with ultra-low leakage
currents.  Each step solves the nonlinear MNA system with Newton,
warm-started from the previous solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import AnalysisError, ConvergenceError
from repro.spice.dc import dc_operating_point
from repro.spice.elements import VoltageSource
from repro.spice.mna import DEFAULT_GMIN, newton_solve
from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform, _trapezoid


@dataclass
class TransientResult:
    """Sampled node voltages and voltage-source branch currents."""

    times: np.ndarray
    node_voltages: Dict[str, np.ndarray]
    branch_currents: Dict[str, np.ndarray]

    def voltage(self, node: str) -> Waveform:
        if node not in self.node_voltages:
            raise AnalysisError(f"no recorded node {node!r}")
        return Waveform(self.times, self.node_voltages[node])

    def current(self, source_name: str) -> Waveform:
        if source_name not in self.branch_currents:
            raise AnalysisError(f"no recorded source current {source_name!r}")
        return Waveform(self.times, self.branch_currents[source_name])

    def source_energy_j(self, source_name: str, circuit: Circuit) -> float:
        """Energy *delivered by* a voltage source over the window.

        E = integral of V(t) * (-I_branch(t)) dt: the branch current is
        defined flowing from + through the source to -, so a source
        delivering power has negative branch current.
        """
        source = circuit.element(source_name)
        if not isinstance(source, VoltageSource):
            raise AnalysisError(f"{source_name!r} is not a voltage source")
        i = self.branch_currents[source_name]
        drive = source.drive
        at_array = getattr(drive, "at_array", None)
        if at_array is not None:
            v = np.asarray(at_array(self.times), dtype=float)
        else:  # custom drive objects only expose the scalar protocol
            v = np.array([drive.at(t) for t in self.times])
        return float(_trapezoid(v * (-i), self.times))


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    initial_conditions: Optional[Dict[str, float]] = None,
    use_dc_start: bool = True,
    gmin: float = DEFAULT_GMIN,
) -> TransientResult:
    """Run a transient analysis from 0 to ``t_stop``.

    Args:
        circuit: The netlist.
        t_stop: End time (seconds).
        dt: Fixed time step (seconds).
        initial_conditions: Node -> voltage overrides applied on top of
            the starting point (DC solution or zeros).
        use_dc_start: Solve a DC operating point at t=0 as the start
            state; otherwise start from zeros + initial_conditions
            (a "UIC" start).
        gmin: Regularization conductance.

    Returns:
        A :class:`TransientResult` with every node and source current
        sampled at every step.
    """
    circuit.validate()
    if dt <= 0 or t_stop <= 0:
        raise AnalysisError("dt and t_stop must be positive")
    if dt > t_stop:
        raise AnalysisError("dt must not exceed t_stop")

    n = circuit.n_unknowns()
    index = circuit.unknown_index()
    offsets = circuit.branch_offsets()

    v = np.zeros(n)
    if use_dc_start:
        dc = dc_operating_point(circuit, initial_guess=initial_conditions, gmin=gmin)
        for node, value in dc.items():
            idx = index.get(node, -1)
            if idx >= 0:
                v[idx] = value
    if initial_conditions:
        for node, value in initial_conditions.items():
            if not circuit.has_node(node):
                raise AnalysisError(f"initial condition on unknown node {node!r}")
            idx = index.get(node, -1)
            if idx >= 0:
                v[idx] = value

    n_steps = int(round(t_stop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    history = np.zeros((n_steps + 1, n))
    history[0] = v

    for step in range(1, n_steps + 1):
        t = times[step]
        v_prev = history[step - 1]
        try:
            v = newton_solve(
                circuit, v_prev.copy(), t=t, dt=dt, v_prev=v_prev, gmin=gmin
            )
        except ConvergenceError:
            # Retry once with a half step to get past sharp source edges.
            half = newton_solve(
                circuit,
                v_prev.copy(),
                t=t - dt / 2,
                dt=dt / 2,
                v_prev=v_prev,
                gmin=gmin,
            )
            v = newton_solve(
                circuit, half, t=t, dt=dt / 2, v_prev=half, gmin=gmin
            )
        history[step] = v

    node_voltages = {
        node: history[:, idx] for node, idx in index.items() if idx >= 0
    }
    branch_currents = {
        name: history[:, off] for name, off in offsets.items()
    }
    return TransientResult(
        times=times,
        node_voltages=node_voltages,
        branch_currents=branch_currents,
    )
