"""The ``BENCH_sweep.json`` harness: uncertainty-sweep performance.

Companion to :mod:`repro.runtime.bench` (``BENCH_iss.json``): measures
the batched Monte Carlo engine against the legacy per-sample loop on the
Fig. 6a grid, the chunked-parallel and sweep-cache paths, and the full
paper-artifact pipeline wall time, and writes them to a JSON artifact so
sweep-performance regressions are visible across PRs.

Run it via ``python -m repro bench-sweep`` or the benchmarks suite.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

import numpy as np


def run_sweep_bench(
    output_path: Optional[Path] = None,
    n_samples: int = 1000,
) -> dict:
    """Collect the sweep benchmark numbers; optionally write the artifact."""
    from repro.analysis.artifacts import run_artifact_pipeline
    from repro.analysis.case_study import build_case_study
    from repro.analysis.sensitivity import case_study_parameters
    from repro.core.uncertainty import (
        monte_carlo_win_probability,
        monte_carlo_win_probability_legacy,
    )
    from repro.runtime.cache import SWEEP_VERSION, SweepCache
    from repro.runtime.parallel import resolve_jobs

    report: dict = {
        "schema": "bench-sweep/1",
        "sweep_version": SWEEP_VERSION,
        "python": platform.python_version(),
        "generated_unix": time.time(),
    }

    case = build_case_study()
    nominal = case_study_parameters(case)
    xs = np.linspace(0.05, 2.0, 40)
    ys = np.linspace(0.05, 2.0, 40)
    seed = 12345

    # -- legacy per-sample loop vs batched engine ----------------------
    start = time.perf_counter()
    p_legacy = monte_carlo_win_probability_legacy(
        nominal, xs, ys, n_samples, rng=np.random.default_rng(seed)
    )
    legacy_wall = time.perf_counter() - start

    batched_wall = float("inf")
    for _ in range(3):  # best-of-3: the run is milliseconds long
        start = time.perf_counter()
        p_batched = monte_carlo_win_probability(
            nominal, xs, ys, n_samples, rng=np.random.default_rng(seed)
        )
        batched_wall = min(batched_wall, time.perf_counter() - start)

    start = time.perf_counter()
    p_parallel = monte_carlo_win_probability(
        nominal,
        xs,
        ys,
        n_samples,
        rng=np.random.default_rng(seed),
        jobs=None,
        chunk_size=max(1, n_samples // max(1, resolve_jobs(None, 4))),
    )
    parallel_wall = time.perf_counter() - start

    report["monte_carlo"] = {
        "n_samples": n_samples,
        "grid_points": int(xs.size * ys.size),
        "legacy_wall_seconds": legacy_wall,
        "batched_wall_seconds": batched_wall,
        "parallel_wall_seconds": parallel_wall,
        "legacy_samples_per_second": n_samples / legacy_wall,
        "batched_samples_per_second": n_samples / batched_wall,
        "speedup_batched_over_legacy": legacy_wall / batched_wall,
        "bit_identical": bool(np.array_equal(p_legacy, p_batched)),
        "parallel_bit_identical": bool(np.array_equal(p_legacy, p_parallel)),
    }

    # -- sweep cache: miss vs hit --------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        cache = SweepCache(Path(tmp))
        start = time.perf_counter()
        monte_carlo_win_probability(
            nominal, xs, ys, n_samples,
            rng=np.random.default_rng(seed), cache=cache,
        )
        miss_wall = time.perf_counter() - start
        start = time.perf_counter()
        cached = monte_carlo_win_probability(
            nominal, xs, ys, n_samples,
            rng=np.random.default_rng(seed), cache=cache,
        )
        hit_wall = time.perf_counter() - start
        report["sweep_cache"] = {
            "miss_wall_seconds": miss_wall,
            "hit_wall_seconds": hit_wall,
            "hit_was_hit": cache.hits == 1,
            "hit_bit_identical": bool(np.array_equal(p_legacy, cached)),
        }

        # -- full artifact pipeline ------------------------------------
        start = time.perf_counter()
        manifest = run_artifact_pipeline(Path(tmp) / "artifacts")
        pipeline_wall = time.perf_counter() - start
        report["artifact_pipeline"] = {
            "total_wall_seconds": pipeline_wall,
            "artifact_count": len(manifest["artifacts"]),
            "params_hash": manifest["params_hash"],
            "content_hash": manifest["content_hash"],
            "per_artifact_wall_seconds": {
                name: entry["wall_seconds"]
                for name, entry in manifest["artifacts"].items()
            },
        }

    if output_path is not None:
        output_path = Path(output_path)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report
