"""repro-lint rule set.

Importing this package registers every built-in rule:

- RPL001 — unit-suffix dimensional consistency;
- RPL002 — determinism of model code (no unseeded RNG / wall clocks);
- RPL003 — purity of cached functions;
- RPL004 — no float ``==`` / ``!=`` in model code;
- RPL005 — ``__all__`` exports exist and carry docstrings;
- RPL006 — dataflow-inferred unit mismatch (with witness chains);
- RPL007 — lossy rebinding without a ``units.py`` conversion;
- RPL008 — parallel-safety of process-pool callables;
- RPL009 — no blocking calls inside ``async def`` (event-loop stalls);
- RPL010 — orphaned tasks / unawaited coroutines;
- RPL011 — lock-discipline: guarded fields stay guarded everywhere;
- RPL012 — no unit-carrying sums over unordered iterables;
- RPL013 — scalar coercion on array-capable model data;
- RPL014 — data-dependent control flow (use np.where/masking);
- RPL015 — shape-unstable accumulation (use np.sum / math.fsum);
- RPL016 — array-contract drift: array-capable caller, scalar-only callee.
"""

from repro.quality.rules.base import (
    RULE_REGISTRY,
    Rule,
    default_rules,
    register,
)
from repro.quality.rules.units_rule import UnitConsistencyRule
from repro.quality.rules.determinism import DeterminismRule
from repro.quality.rules.cache_purity import CachePurityRule
from repro.quality.rules.float_compare import FloatEqualityRule
from repro.quality.rules.api_hygiene import ApiHygieneRule
from repro.quality.rules.flow_units import InferredUnitRule, LossyRebindingRule
from repro.quality.rules.parallel_safety import ParallelSafetyRule
from repro.quality.rules.async_blocking import AsyncBlockingRule
from repro.quality.rules.task_hygiene import TaskHygieneRule
from repro.quality.rules.lock_discipline import LockDisciplineRule
from repro.quality.rules.iter_order import IterOrderRule
from repro.quality.rules.vectorization import (
    ArrayContractDriftRule,
    DataBranchRule,
    ScalarCoercionRule,
    ScalarFoldRule,
)

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "register",
    "UnitConsistencyRule",
    "DeterminismRule",
    "CachePurityRule",
    "FloatEqualityRule",
    "ApiHygieneRule",
    "InferredUnitRule",
    "LossyRebindingRule",
    "ParallelSafetyRule",
    "AsyncBlockingRule",
    "TaskHygieneRule",
    "LockDisciplineRule",
    "IterOrderRule",
    "ScalarCoercionRule",
    "DataBranchRule",
    "ScalarFoldRule",
    "ArrayContractDriftRule",
]
