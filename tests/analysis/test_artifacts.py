"""Golden-data pins and determinism tests for the artifact pipeline.

The golden values freeze the paper-facing numbers the repo currently
reproduces.  They are intentionally tight: any change to the carbon or
physical models that moves a headline figure must update these pins
deliberately (and show up in review), never by accident.
"""

import json

import numpy as np
import pytest

from repro.analysis import build_case_study, figures
from repro.analysis.artifacts import (
    PipelineConfig,
    canonical_json,
    default_artifact_names,
    render_manifest,
    run_artifact_pipeline,
    strip_timing_fields,
    to_jsonable,
)
from repro.analysis.sensitivity import case_study_parameters, tornado_analysis


@pytest.fixture(scope="module")
def case():
    return build_case_study()


@pytest.mark.smoke
class TestGoldenFig2c:
    def test_us_wafer_carbon_pinned(self):
        data = figures.fig2c_embodied_per_wafer()
        us = data["us"]
        assert us["all_si"] == pytest.approx(837.0605923639688, rel=1e-9)
        assert us["m3d"] == pytest.approx(1100.303011211071, rel=1e-9)
        assert us["ratio"] == pytest.approx(1.3144843052564106, rel=1e-9)

    def test_average_ratio_pinned(self):
        data = figures.fig2c_embodied_per_wafer()
        assert data["average"]["ratio"] == pytest.approx(
            1.307670834090077, rel=1e-9
        )


@pytest.mark.smoke
class TestGoldenFig6a:
    def test_nominal_ratio_pinned(self, case):
        data = figures.fig6a_tradeoff_map(case)
        assert data["nominal_ratio"] == pytest.approx(
            0.9787625398968598, rel=1e-12
        )

    def test_ratio_map_values_pinned(self, case):
        data = figures.fig6a_tradeoff_map(case)
        rm = data["ratio_map"]
        assert rm.shape == (40, 40)
        assert rm[0, 0] == pytest.approx(0.048938126994843, rel=1e-12)
        assert rm[-1, -1] == pytest.approx(1.9575250797937196, rel=1e-12)
        assert rm[20, 10] == pytest.approx(0.8145459174144598, rel=1e-12)
        assert float(rm.mean()) == pytest.approx(
            1.0032316033942812, rel=1e-12
        )

    def test_isoline_pinned(self, case):
        data = figures.fig6a_tradeoff_map(case)
        iso = data["isoline_emb_scale"]
        assert iso[0] == pytest.approx(2.280918793359319, rel=1e-12)
        assert np.isnan(iso[-1])


@pytest.mark.smoke
class TestGoldenTornado:
    def test_ranking_pinned(self, case):
        entries = tornado_analysis(case_study_parameters(case))
        assert [e.parameter for e in entries] == [
            "si_operational_power",
            "m3d_operational_power",
            "m3d_yield",
            "m3d_dies_per_wafer",
            "m3d_embodied_wafer",
            "si_yield",
            "lifetime",
            "ci_use",
        ]

    def test_top_entries_pinned(self, case):
        entries = tornado_analysis(case_study_parameters(case))
        by_name = {e.parameter: e for e in entries}
        top = by_name["si_operational_power"]
        assert top.ratio_low == pytest.approx(1.1631426449966444, rel=1e-12)
        assert top.ratio_high == pytest.approx(0.8448395022628004, rel=1e-12)
        assert top.swing == pytest.approx(0.3183031427338441, rel=1e-12)
        y = by_name["m3d_yield"]
        assert y.ratio_low == pytest.approx(1.120865706215022, rel=1e-12)
        assert y.ratio_high == pytest.approx(0.8935006401059626, rel=1e-12)
        assert entries[0].ratio_nominal == pytest.approx(
            0.9787625398968598, rel=1e-12
        )


class TestPipelineDeterminism:
    # A fast, representative subset covering both cheap figure builders
    # and the seeded Monte Carlo path.
    SUBSET = ["fig2c", "fig6a", "tornado", "monte_carlo_map"]
    CONFIG = PipelineConfig(seed=0, mc_samples=50)

    def test_same_seed_same_manifest_modulo_timing(self, tmp_path):
        m1 = run_artifact_pipeline(
            tmp_path / "a", config=self.CONFIG, artifacts=self.SUBSET
        )
        m2 = run_artifact_pipeline(
            tmp_path / "b", config=self.CONFIG, artifacts=self.SUBSET
        )
        assert canonical_json(strip_timing_fields(m1)) == canonical_json(
            strip_timing_fields(m2)
        )

    def test_timing_fields_differ_but_are_stripped(self, tmp_path):
        manifest = run_artifact_pipeline(
            tmp_path, config=self.CONFIG, artifacts=["fig2c"]
        )
        stripped = strip_timing_fields(manifest)
        assert "total_wall_seconds" not in stripped
        assert "generated_unix" not in stripped
        assert all(
            "wall_seconds" not in e for e in stripped["artifacts"].values()
        )
        # Non-timing content survives untouched.
        assert stripped["content_hash"] == manifest["content_hash"]

    def test_different_seed_different_content(self, tmp_path):
        m1 = run_artifact_pipeline(
            tmp_path / "a",
            config=PipelineConfig(seed=0, mc_samples=50),
            artifacts=["monte_carlo_map"],
        )
        m2 = run_artifact_pipeline(
            tmp_path / "b",
            config=PipelineConfig(seed=1, mc_samples=50),
            artifacts=["monte_carlo_map"],
        )
        assert m1["content_hash"] != m2["content_hash"]
        assert m1["params_hash"] != m2["params_hash"]

    def test_run_directory_layout(self, tmp_path):
        manifest = run_artifact_pipeline(
            tmp_path, config=self.CONFIG, artifacts=["fig2c", "tornado"]
        )
        run_dir = tmp_path / manifest["params_hash"][:12]
        assert (run_dir / "manifest.json").is_file()
        for name, entry in manifest["artifacts"].items():
            path = run_dir / entry["path"]
            assert path.is_file()
            text = path.read_text(encoding="utf-8")
            import hashlib

            assert (
                hashlib.sha256(text.encode("utf-8")).hexdigest()
                == entry["sha256"]
            )
        on_disk = json.loads((run_dir / "manifest.json").read_text())
        assert strip_timing_fields(on_disk) == to_jsonable(
            strip_timing_fields(manifest)
        )

    def test_artifact_json_round_trips(self, tmp_path):
        manifest = run_artifact_pipeline(
            tmp_path, config=self.CONFIG, artifacts=["fig6a"]
        )
        run_dir = tmp_path / manifest["params_hash"][:12]
        data = json.loads(
            (run_dir / "artifacts" / "fig6a.json").read_text()
        )
        assert data["nominal_ratio"] == pytest.approx(
            0.9787625398968598, rel=1e-12
        )
        assert len(data["ratio_map"]) == 40

    def test_unknown_artifact_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown artifacts"):
            run_artifact_pipeline(tmp_path, artifacts=["nope"])

    def test_default_names_cover_all_builders(self):
        names = default_artifact_names()
        assert len(names) == 11
        assert names[0] == "table1"
        assert "monte_carlo_map" in names

    def test_render_manifest(self, tmp_path):
        manifest = run_artifact_pipeline(
            tmp_path, config=self.CONFIG, artifacts=["fig2c"]
        )
        text = render_manifest(manifest)
        assert "fig2c" in text
        assert manifest["params_hash"][:12] in text
