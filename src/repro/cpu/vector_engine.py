"""N-lane lockstep vector execution over the superblock translator.

Executes N instances of one program ("lanes") in a single interpreter
pass.  Lane-uniform state stays in plain Python ints — exactly the
representation the scalar superblock engine uses — and only values that
actually differ across lanes are promoted to ``(N,)`` NumPy arrays.
NumPy broadcasting then type-dispatches every generated operation with
no codegen specialization: ``res = (a + b) & 0xFFFFFFFF`` works
identically for two ints, an int and an array, or two arrays.

Design points (mirroring the vectorized-drive idiom from the Monte
Carlo layer, generalized to architectural state):

* **Registers / flags** live in the template CPU's ``RegisterFile``;
  each slot holds an int (uniform) or an ``(N,)`` int64 array.  int64
  keeps 32-bit wraparound exact: products wrap mod 2**64 and masking
  with ``0xFFFFFFFF`` recovers the correct low 32 bits.
* **Memory** is one shared uniform image (the template CPU's data
  region bytearray) plus a sparse overlay ``{word offset -> (N,)
  array}`` for lane-varying words.  Uniform accesses run at scalar
  speed; varying word loads are one dict lookup.
* **Toggle accounting** stays scalar for uniform writes; lane-varying
  XOR patterns are journaled into a preallocated ``(CAP, N)`` buffer
  and popcounted in bulk through a 16-bit lookup table.
* **Divergence** at a fused conditional branch retires lanes whose
  exit lands on a BKPT (their architectural results are snapshotted);
  any other divergence — or any operation the vector fast paths do not
  cover — raises :class:`VectorBailout`, and :func:`run_lanes` re-runs
  every lane through the scalar superblock engine, so results are
  always produced and always bit-exact.

With ``lanes=1`` no state is ever lane-varying, so execution follows
the exact scalar arithmetic and counting discipline of the superblock
engine — the property the N=1 differential tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.cpu.fastpath import _cond_fn, _Halt
from repro.cpu.memory import MemoryMap
from repro.cpu.simulator import CortexM0
from repro.cpu.superblock import SuperblockEngine
from repro.cpu.trace import _DATAPATH_AMPLIFICATION, _STATE_BITS, ActivityTrace
from repro.errors import ExecutionError, ReproError

#: Journal rows buffered between bulk popcount flushes.
_JOURNAL_CAP = 8192

_LUT16: Optional[np.ndarray] = None


def _popcount_lut() -> np.ndarray:
    """16-bit popcount table, built lazily (vectorized bit trick)."""
    global _LUT16
    if _LUT16 is None:
        v = np.arange(65536, dtype=np.uint32)
        v = v - ((v >> 1) & 0x55555555)
        v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F
        _LUT16 = ((v * 0x01010101) >> 24).astype(np.uint8)
    return _LUT16


class VectorBailout(Exception):
    """The run left the vector fast paths; re-run lanes scalar."""


class _Divergence:
    """Active lanes disagree on a fused conditional branch outcome."""

    __slots__ = ("cond", "taken_pc", "next_pc")

    def __init__(self, cond, taken_pc: int, next_pc: int) -> None:
        self.cond = cond
        self.taken_pc = taken_pc
        self.next_pc = next_pc


@dataclass
class LaneOutcome:
    """Architectural results of one lane, as the scalar ISS reports them."""

    checksum: int
    cycles: int
    instructions: int
    taken_branches: int
    loads: int
    stores: int
    program_reads: int
    data_reads: int
    data_writes: int
    register_writes: int
    register_toggles: int
    per_mnemonic: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    def activity_factor(self) -> float:
        """Same estimate :class:`ActivityTrace.activity_factor` yields."""
        if self.cycles == 0:
            return 0.0
        raw = (
            self.register_toggles
            / self.cycles
            / _STATE_BITS
            * _DATAPATH_AMPLIFICATION
        )
        return min(raw, 1.0)


@dataclass
class VectorRunResult:
    """All lanes' outcomes plus how the run was executed."""

    lanes: List[LaneOutcome]
    vectorized: bool
    lanes_retired: int
    bailouts: int
    bail_reason: Optional[str] = None

    @property
    def total_instructions(self) -> int:
        return sum(l.instructions for l in self.lanes)


class VectorEngine(SuperblockEngine):
    """Superblock engine whose state may be ``(N,)`` arrays per lane.

    The translator and block codegen are inherited; ``_vector = True``
    switches emission to the array-safe forms (helper-based memory
    access, branch tails deferred to :meth:`_vec_branch`).
    """

    _vector = True

    def __init__(self, cpu, lanes: int) -> None:
        if lanes < 1:
            raise ReproError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self._vary: Dict[int, np.ndarray] = {}
        # Toggle journals: XOR patterns (``_jx``) and old/new value
        # pairs (``_jo``/``_jn``, XORed in bulk at flush).  Plain list
        # appends of array references — no copies on the hot path.
        self._jx: List[np.ndarray] = []
        self._jo: List[np.ndarray] = []
        self._jn: List[np.ndarray] = []
        self._tacc = np.zeros(lanes, dtype=np.int64)
        self._active = np.ones(lanes, dtype=bool)
        self._snapshots: List[Optional[LaneOutcome]] = [None] * lanes
        self.lanes_retired = 0
        super().__init__(cpu)
        self._toggle_hash, self._toggle_hash2 = self._make_toggle_closures()
        self._cond_scalar = [_cond_fn(c, cpu.regs) for c in range(14)]

    # ------------------------------------------------------------------
    # Lane state
    # ------------------------------------------------------------------
    def init_lanes(self, lane_words: Sequence[Sequence[int]]) -> None:
        """Write per-lane parameter words at the data region base.

        Word ``i`` of each lane lands at ``data_base + 4 * i``,
        uncounted (pre-run initialization, like program loading).
        Columns whose value is identical across lanes stay in the
        uniform image; differing columns go to the varying overlay.
        """
        if len(lane_words) != self.lanes:
            raise ReproError(
                f"expected {self.lanes} lane word tuples, "
                f"got {len(lane_words)}"
            )
        widths = {len(w) for w in lane_words}
        if len(widths) > 1:
            raise ReproError("lane data tuples must have equal lengths")
        u_bytes = self.data.data
        for i, column in enumerate(zip(*lane_words)):
            offset = 4 * i
            if offset + 4 > len(u_bytes):
                raise ReproError("lane data exceeds the data region")
            first = column[0] & 0xFFFFFFFF
            if all((w & 0xFFFFFFFF) == first for w in column):
                u_bytes[offset:offset + 4] = first.to_bytes(4, "little")
            else:
                self._vary[offset] = np.array(
                    [w & 0xFFFFFFFF for w in column], dtype=np.int64
                )

    @staticmethod
    def _lane_value(value, lane: int) -> int:
        return value if type(value) is int else int(value[lane])

    # ------------------------------------------------------------------
    # Vector memory helpers (bound into every generated block)
    # ------------------------------------------------------------------
    def _make_mem_helpers(self, mem, prog, data):
        """Scalar-address fast paths over shared + overlay memory.

        Anything outside them — varying addresses, misalignment,
        program-region stores, unmapped accesses, sub-word access to a
        varying word — raises :class:`VectorBailout`; the scalar re-run
        then reproduces the exact architectural behavior (including the
        exact :class:`ExecutionError`) per lane.
        """
        prog_base, prog_end = prog.base, prog.end
        prog_data, prog_counters = prog.data, prog.counters
        data_base, data_end = data.base, data.end
        u_bytes, counters = data.data, data.counters
        vary = self._vary
        vget = vary.get
        from_bytes = int.from_bytes

        def read32(a):
            if type(a) is int:
                if data_base <= a and a + 4 <= data_end and not a & 3:
                    counters.reads += 1
                    o = a - data_base
                    w = vget(o)
                    if w is not None:
                        return w
                    return from_bytes(u_bytes[o:o + 4], "little")
                if prog_base <= a and a + 4 <= prog_end and not a & 3:
                    prog_counters.reads += 1
                    o = a - prog_base
                    return from_bytes(prog_data[o:o + 4], "little")
            raise VectorBailout("read32 outside the vector fast path")

        def read16(a):
            if type(a) is int:
                if data_base <= a and a + 2 <= data_end and not a & 1:
                    o = a - data_base
                    if o & ~3 in vary:
                        raise VectorBailout(
                            "halfword read from a varying word"
                        )
                    counters.reads += 1
                    return from_bytes(u_bytes[o:o + 2], "little")
                if prog_base <= a and a + 2 <= prog_end and not a & 1:
                    prog_counters.reads += 1
                    o = a - prog_base
                    return from_bytes(prog_data[o:o + 2], "little")
            raise VectorBailout("read16 outside the vector fast path")

        def read8(a):
            if type(a) is int:
                if data_base <= a < data_end:
                    o = a - data_base
                    if o & ~3 in vary:
                        raise VectorBailout("byte read from a varying word")
                    counters.reads += 1
                    return u_bytes[o]
                if prog_base <= a < prog_end:
                    prog_counters.reads += 1
                    return prog_data[a - prog_base]
            raise VectorBailout("read8 outside the vector fast path")

        def write32(a, v):
            if (
                type(a) is int
                and data_base <= a
                and a + 4 <= data_end
                and not a & 3
            ):
                counters.writes += 1
                o = a - data_base
                if type(v) is int:
                    if o in vary:
                        del vary[o]
                    u_bytes[o:o + 4] = v.to_bytes(4, "little")
                else:
                    vary[o] = v
                return
            raise VectorBailout("write32 outside the vector fast path")

        def write16(a, v):
            if (
                type(a) is int
                and type(v) is int
                and data_base <= a
                and a + 2 <= data_end
                and not a & 1
            ):
                o = a - data_base
                if o & ~3 in vary:
                    raise VectorBailout("halfword write to a varying word")
                counters.writes += 1
                u_bytes[o:o + 2] = (v & 0xFFFF).to_bytes(2, "little")
                return
            raise VectorBailout("write16 outside the vector fast path")

        def write8(a, v):
            if (
                type(a) is int
                and type(v) is int
                and data_base <= a < data_end
            ):
                o = a - data_base
                if o & ~3 in vary:
                    raise VectorBailout("byte write to a varying word")
                counters.writes += 1
                u_bytes[o] = v & 0xFF
                return
            raise VectorBailout("write8 outside the vector fast path")

        return read32, read16, read8, write32, write16, write8

    # ------------------------------------------------------------------
    # Toggle journal
    # ------------------------------------------------------------------
    def _make_toggle_closures(self):
        """Build the ``H``/``H2`` bindings for generated vector blocks.

        ``H(x)``: a ready XOR pattern.  Uniform (int) patterns popcount
        immediately, keeping ``tg`` scalar; lane-varying arrays are
        journaled by reference and contribute 0 to the scalar part.
        Journaled arrays are safe to hold — generated code never
        mutates an array in place, it only rebinds.

        ``H2(a, b)``: a register write's (old, new) value pair.
        Array/array pairs skip the per-write XOR entirely — both
        references are journaled and the XOR runs in bulk at flush.
        Closures over the journal lists keep the per-call cost at two
        type checks plus C-level list appends.
        """
        jx, jo, jn = self._jx, self._jo, self._jn
        jx_append, jo_append, jn_append = jx.append, jo.append, jn.append
        flush = self._flush_journal

        def H(x):
            if type(x) is int:
                return x.bit_count()
            jx_append(x)
            if len(jx) >= _JOURNAL_CAP:
                flush()
            return 0

        def H2(a, b):
            if type(a) is int:
                if type(b) is int:
                    return (a ^ b).bit_count()
            elif type(b) is not int:
                jo_append(a)
                jn_append(b)
                if len(jo) >= _JOURNAL_CAP:
                    flush()
                return 0
            jx_append(a ^ b)
            if len(jx) >= _JOURNAL_CAP:
                flush()
            return 0

        return H, H2

    def _popcount_into_tacc(self, a: np.ndarray) -> None:
        lut = _popcount_lut()
        t = lut[a & 0xFFFF] + lut[(a >> 16) & 0xFFFF]
        self._tacc += t.sum(axis=0, dtype=np.int64)

    def _flush_journal(self) -> None:
        # np.array() on a list of equal-length arrays builds the 2-D
        # batch ~3x faster than np.stack (no per-array view dance).
        jo, jn, jx = self._jo, self._jn, self._jx
        if jo:
            a = np.array(jo)
            a ^= np.array(jn)
            jo.clear()
            jn.clear()
            self._popcount_into_tacc(a)
        if jx:
            a = np.array(jx)
            jx.clear()
            self._popcount_into_tacc(a)

    # ------------------------------------------------------------------
    # Branch resolution
    # ------------------------------------------------------------------
    def _vec_branch(self, cond: int, taken_pc: int, next_pc: int):
        """Resolve a fused conditional branch across lanes.

        Returns the extra cycles beyond the not-taken base (the block
        return-value protocol) when the outcome is lane-uniform, or a
        :class:`_Divergence` for the run loop to retire/bail on.
        """
        try:
            taken = self._cond_scalar[cond]()
            if taken:
                self.cpu.stats.taken_branches += 1
                self.regs_list[15] = taken_pc
                return 2
            self.regs_list[15] = next_pc
            return 0
        except ValueError:
            return self._vec_branch_array(cond, taken_pc, next_pc)

    def _vec_branch_array(self, cond: int, taken_pc: int, next_pc: int):
        R = self.cpu.regs
        n, z, c, v = R.n, R.z, R.c, R.v
        if cond == 0x0:
            r = z
        elif cond == 0x1:
            r = np.logical_not(z)
        elif cond == 0x2:
            r = c
        elif cond == 0x3:
            r = np.logical_not(c)
        elif cond == 0x4:
            r = n
        elif cond == 0x5:
            r = np.logical_not(n)
        elif cond == 0x6:
            r = v
        elif cond == 0x7:
            r = np.logical_not(v)
        elif cond == 0x8:
            r = np.logical_and(c, np.logical_not(z))
        elif cond == 0x9:
            r = np.logical_or(np.logical_not(c), z)
        elif cond == 0xA:
            r = np.equal(n, v)
        elif cond == 0xB:
            r = np.not_equal(n, v)
        elif cond == 0xC:
            r = np.logical_and(np.logical_not(z), np.equal(n, v))
        else:  # 0xD LE
            r = np.logical_or(z, np.not_equal(n, v))
        arr = np.broadcast_to(np.asarray(r, dtype=bool), (self.lanes,))
        sel = arr[self._active]
        if sel.all():
            self.cpu.stats.taken_branches += 1
            self.regs_list[15] = taken_pc
            return 2
        if not sel.any():
            self.regs_list[15] = next_pc
            return 0
        return _Divergence(np.array(arr), taken_pc, next_pc)

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _retire(
        self,
        mask: np.ndarray,
        extra_cycles: int,
        extra_taken: int,
        via_bkpt: bool = True,
    ) -> None:
        """Snapshot lanes in ``mask`` as architecturally complete.

        ``via_bkpt`` lanes exited a diverging branch straight into a
        BKPT the shared run never executes, so the BKPT's own fetch,
        cycle, instruction, and mnemonic counts are added here.
        """
        self._flush_journal()
        stats = self.cpu.stats
        tr = self.cpu.trace if self.cpu.trace is not None else self._null_trace
        regs = self.regs_list
        pm = dict(stats.per_mnemonic)
        bump = 0
        if via_bkpt:
            pm["bkpt"] = pm.get("bkpt", 0) + 1
            bump = 1
        for lane in np.nonzero(mask)[0]:
            lane = int(lane)
            self._snapshots[lane] = LaneOutcome(
                checksum=self._lane_value(regs[0], lane),
                cycles=stats.cycles + extra_cycles,
                instructions=stats.instructions + bump,
                taken_branches=stats.taken_branches + extra_taken,
                loads=stats.loads,
                stores=stats.stores,
                program_reads=self.prog.counters.reads + bump,
                data_reads=self.data.counters.reads,
                data_writes=self.data.counters.writes,
                register_writes=tr.register_writes,
                register_toggles=(
                    tr.register_toggles + int(self._tacc[lane])
                ),
                per_mnemonic=dict(pm),
            )
            self.lanes_retired += 1

    def _diverge(self, d: _Divergence) -> bool:
        """Handle a divergent branch; returns False when no lane remains.

        A diverging side whose target instruction is a BKPT retires its
        lanes; if both sides continue running real code the lockstep
        model cannot follow them and the run bails out.
        """
        mem = self.cpu.memory
        act = self._active
        taken = d.cond & act
        not_taken = ~d.cond & act

        def lands_on_bkpt(pc: int) -> bool:
            try:
                insn = mem.read(pc, 2, count=False)
            except Exception:
                return False
            return (insn & 0xFF00) == 0xBE00

        t_done = lands_on_bkpt(d.taken_pc)
        n_done = lands_on_bkpt(d.next_pc)
        if not t_done and not n_done:
            raise VectorBailout(
                f"lanes diverged at branch {d.taken_pc:#06x}/"
                f"{d.next_pc:#06x}"
            )
        if t_done:
            # Taken lanes: +2 branch cycles, +1 BKPT cycle.
            self._retire(taken, 3, 1)
            self._active = self._active & ~taken
        if n_done:
            # Fall-through lanes: +0 branch, +1 BKPT cycle.
            self._retire(not_taken, 1, 0)
            self._active = self._active & ~not_taken
        if not self._active.any():
            return False
        stats = self.cpu.stats
        if t_done:
            # Survivors fall through.
            self.regs_list[15] = d.next_pc
        else:
            # Survivors took the branch.
            stats.taken_branches += 1
            stats.cycles += 2
            if self.cpu.trace is not None:
                self.cpu.trace.cycles += 2
            self.regs_list[15] = d.taken_pc
        return True

    # ------------------------------------------------------------------
    # Run loop (the superblock loop plus divergence handling)
    # ------------------------------------------------------------------
    def run(self, max_cycles: int):
        cpu = self.cpu
        if self._decoded_version != self.prog.version:
            self.invalidate()
        stats = cpu.stats
        regs = self.regs_list
        table = self.table
        decode = self._decode
        bget = self.blocks.get
        translate = self._translate
        prog_base = self.prog.base
        prog_counters = self.prog.counters
        trace = cpu.trace
        cycles = stats.cycles
        base_cycles = cycles
        trace_base = trace.cycles if trace is not None else 0
        steps = 0
        flushed_steps = 0
        try:
            while True:
                if cycles >= max_cycles:
                    raise ExecutionError(
                        f"cycle limit {max_cycles} exceeded at "
                        f"pc={regs[15]:#010x}"
                    )
                pc = regs[15]
                b = bget(pc)
                if b is None and prog_base <= pc:
                    b = translate(pc)
                if b and cycles + b[2] < max_cycles:
                    extra = b[0]()
                    if type(extra) is int:
                        b[3] += 1
                        cycles += b[1] + extra
                        continue
                    if extra is None:
                        # No SMC checks are emitted in vector mode.
                        raise VectorBailout("unexpected block early exit")
                    # Divergence: the block body and branch base are
                    # fully executed; sync every tally so retirement
                    # snapshots see exact architectural state.
                    b[3] += 1
                    cycles += b[1]
                    delta = steps - flushed_steps
                    flushed_steps = steps
                    prog_counters.reads += delta
                    stats.instructions += delta
                    self._flush_blocks()
                    stats.cycles = cycles
                    if trace is not None:
                        trace.cycles = trace_base + (cycles - base_cycles)
                    if not self._diverge(extra):
                        return stats  # every lane retired
                    cycles = stats.cycles
                    continue
                h = None
                if prog_base <= pc:
                    try:
                        h = table[pc - prog_base]
                    except IndexError:
                        pass
                    else:
                        if h is None:
                            h = decode(pc)
                if h is None:
                    raise VectorBailout(
                        f"pc {pc:#010x} left the program region"
                    )
                steps += 1
                cycles += h()
        except _Halt:
            cycles += 1  # the BKPT cycle
        finally:
            cycles = self._merge_partial(cycles)
            delta = steps - flushed_steps
            prog_counters.reads += delta
            stats.instructions += delta
            self._flush_blocks()
            stats.cycles = cycles
            self.fast_steps += steps
            if trace is not None:
                trace.cycles = trace_base + (cycles - base_cycles)
        # Uniform halt: every still-active lane finished here with the
        # shared (already fully counted) statistics.
        self._retire(self._active.copy(), 0, 0, via_bkpt=False)
        self._active[:] = False
        return stats

    def snapshots(self) -> List[LaneOutcome]:
        out = [s for s in self._snapshots if s is not None]
        if len(out) != self.lanes:
            raise ReproError("not every lane retired")
        return out


# ----------------------------------------------------------------------
# Public driver
# ----------------------------------------------------------------------
def run_lanes(
    source: str,
    lane_words: Optional[Sequence[Sequence[int]]] = None,
    lanes: Optional[int] = None,
    max_cycles: int = 500_000_000,
) -> VectorRunResult:
    """Execute N lanes of one program, vectorized when possible.

    Args:
        source: Thumb assembly text shared by every lane.
        lane_words: Per-lane parameter words written (uncounted) at the
            data region base before the run; lane count is
            ``len(lane_words)``.  ``None`` runs ``lanes`` identical
            instances.
        lanes: Lane count when ``lane_words`` is ``None``.
        max_cycles: Per-lane cycle budget.

    Returns:
        A :class:`VectorRunResult`.  If any lane leaves the vector fast
        paths the entire run transparently falls back to per-lane
        scalar superblock execution (``vectorized=False``), so results
        are always complete and always bit-exact.
    """
    from repro import obs
    from repro.cpu.assembler import assemble

    if lane_words is not None:
        n = len(lane_words)
        if lanes is not None and lanes != n:
            raise ReproError(
                f"lanes={lanes} disagrees with {n} lane_words entries"
            )
    elif lanes is not None:
        n = lanes
    else:
        raise ReproError("provide lane_words or lanes")
    if n < 1:
        raise ReproError(f"lanes must be >= 1, got {n}")

    program = assemble(source)
    trace = ActivityTrace()
    cpu = CortexM0(MemoryMap.embedded_system(), trace=trace)
    cpu.load_program(program)
    engine = VectorEngine(cpu, n)
    if lane_words is not None:
        engine.init_lanes(lane_words)
    with obs.span("iss.vector_run", lanes=n) as sp:
        try:
            engine.run(max_cycles)
            result = VectorRunResult(
                lanes=engine.snapshots(),
                vectorized=True,
                lanes_retired=engine.lanes_retired,
                bailouts=0,
            )
        except Exception as exc:  # bailout or any off-fast-path misuse
            reason = f"{type(exc).__name__}: {exc}"
            outcomes = [
                _scalar_lane(
                    program,
                    lane_words[i] if lane_words is not None else (),
                    max_cycles,
                )
                for i in range(n)
            ]
            result = VectorRunResult(
                lanes=outcomes,
                vectorized=False,
                lanes_retired=0,
                bailouts=1,
                bail_reason=reason,
            )
        sp.set(vectorized=result.vectorized, retired=result.lanes_retired)
    metrics = obs.get_metrics()
    if metrics.enabled:
        metrics.counter("iss.vector.lanes").inc(n)
        metrics.counter("iss.vector.lanes_retired").inc(
            result.lanes_retired
        )
        metrics.counter("iss.vector.bailouts").inc(result.bailouts)
    return result


def _scalar_lane(program, words: Sequence[int], max_cycles) -> LaneOutcome:
    """Run one lane through the scalar superblock engine."""
    trace = ActivityTrace()
    cpu = CortexM0(MemoryMap.embedded_system(), trace=trace)
    cpu.load_program(program)
    data = cpu.memory.region("data")
    for i, w in enumerate(words):
        cpu.memory.write(data.base + 4 * i, w & 0xFFFFFFFF, 4, count=False)
    error = None
    try:
        cpu.run(max_cycles=max_cycles, engine="superblock")
    except ExecutionError as exc:
        error = str(exc)
    stats = cpu.stats
    counters = cpu.memory.access_counts()
    return LaneOutcome(
        checksum=cpu.regs.read(0),
        cycles=stats.cycles,
        instructions=stats.instructions,
        taken_branches=stats.taken_branches,
        loads=stats.loads,
        stores=stats.stores,
        program_reads=counters["program"].reads,
        data_reads=counters["data"].reads,
        data_writes=counters["data"].writes,
        register_writes=trace.register_writes,
        register_toggles=trace.register_toggles,
        per_mnemonic=dict(stats.per_mnemonic),
        error=error,
    )
