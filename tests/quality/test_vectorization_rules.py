"""Fixture snippets for the vectorization-safety rules RPL013-RPL016."""

import textwrap

import pytest

from repro.quality import Baseline, LintEngine


def lint(source, rel_path="core/snippet.py", rules=None):
    """Findings + suppressed count for one in-memory snippet."""
    from repro.quality import RULE_REGISTRY

    selected = None
    if rules is not None:
        selected = [RULE_REGISTRY[r]() for r in rules]
    engine = LintEngine(rules=selected, baseline=Baseline())
    return engine.lint_source(
        textwrap.dedent(source), rel_path=rel_path
    )


def rule_ids(findings):
    return sorted({f.rule for f in findings})


@pytest.mark.smoke
class TestRPL013ScalarCoercion:
    def test_float_on_model_data_flagged(self):
        findings, _ = lint(
            """
            def f(power_w: float):
                return float(power_w) * 2.0
            """,
            rules=["RPL013"],
        )
        assert rule_ids(findings) == ["RPL013"]
        assert "float()" in findings[0].message
        assert "power_w" in findings[0].message

    def test_math_call_on_derived_data_flagged_with_chain(self):
        findings, _ = lint(
            """
            import math

            def f(area_cm2: float):
                side = area_cm2 * 0.5
                return math.sqrt(side)
            """,
            rules=["RPL013"],
        )
        assert rule_ids(findings) == ["RPL013"]
        assert "math.sqrt" in findings[0].message
        assert "'side'" in findings[0].message
        assert "[line" in findings[0].message

    def test_numpy_sqrt_not_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def f(area_cm2: float):
                return np.sqrt(area_cm2)
            """,
            rules=["RPL013"],
        )
        assert findings == []

    def test_float_of_collapsed_reduction_not_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def f(samples: np.ndarray):
                return float(np.sum(samples))
            """,
            rules=["RPL013"],
        )
        assert findings == []

    def test_outside_model_components_not_flagged(self):
        findings, _ = lint(
            """
            def f(power_w: float):
                return float(power_w)
            """,
            rel_path="serve/snippet.py",
            rules=["RPL013"],
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings, suppressed = lint(
            """
            def f(power_w: float):
                return float(power_w)  # repro-lint: disable=RPL013 - fixture
            """,
            rules=["RPL013"],
        )
        assert findings == []
        assert suppressed == 1


@pytest.mark.smoke
class TestRPL014DataBranch:
    def test_if_on_data_flagged(self):
        findings, _ = lint(
            """
            def clamp(power_w: float):
                if power_w > 1.0:
                    power_w = 1.0
                return power_w
            """,
            rules=["RPL014"],
        )
        assert rule_ids(findings) == ["RPL014"]
        assert "power_w" in findings[0].message

    def test_ternary_on_data_flagged(self):
        findings, _ = lint(
            """
            def f(ratio: float):
                return 1.0 if ratio > 1.0 else ratio
            """,
            rules=["RPL014"],
        )
        assert rule_ids(findings) == ["RPL014"]

    def test_while_on_data_flagged(self):
        findings, _ = lint(
            """
            def f(energy_j: float):
                while energy_j > 1.0:
                    energy_j = energy_j * 0.5
                return energy_j
            """,
            rules=["RPL014"],
        )
        assert rule_ids(findings) == ["RPL014"]

    def test_raise_only_guard_not_flagged(self):
        findings, _ = lint(
            """
            def f(power_w: float):
                if power_w < 0:
                    raise ValueError("negative")
                return power_w * 2.0
            """,
            rules=["RPL014"],
        )
        assert findings == []

    def test_is_none_check_not_flagged(self):
        findings, _ = lint(
            """
            def f(power_w: float, cap=None):
                if cap is None:
                    cap = 10.0
                return power_w * cap
            """,
            rules=["RPL014"],
        )
        assert findings == []

    def test_np_where_not_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def clamp(power_w: float):
                return np.where(power_w > 1.0, 1.0, power_w)
            """,
            rules=["RPL014"],
        )
        assert findings == []

    def test_loop_over_constant_table_not_flagged(self):
        findings, _ = lint(
            """
            def f(power_w: float, windows):
                total = 0.0
                for start, end in windows:
                    total += power_w * (end - start)
                return total
            """,
            rules=["RPL014"],
        )
        assert findings == []


@pytest.mark.smoke
class TestRPL015ScalarFold:
    def test_builtin_sum_over_lanes_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def f(samples: np.ndarray):
                return sum(samples)
            """,
            rules=["RPL015"],
        )
        assert rule_ids(findings) == ["RPL015"]
        assert "sum" in findings[0].message

    def test_loop_accumulation_over_lanes_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def f(samples: np.ndarray):
                total = 0.0
                for s in samples:
                    total += s
                return total
            """,
            rules=["RPL015"],
        )
        assert rule_ids(findings) == ["RPL015"]

    def test_np_sum_not_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def f(samples: np.ndarray):
                return np.sum(samples)
            """,
            rules=["RPL015"],
        )
        assert findings == []

    def test_math_fsum_not_flagged(self):
        findings, _ = lint(
            """
            import math

            def f(a_j: float, b_j: float):
                return math.fsum([a_j, b_j])
            """,
            rules=["RPL015"],
        )
        assert findings == []


@pytest.mark.smoke
class TestRPL016ArrayContractDrift:
    def test_cross_module_drift_flagged(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "helpers.py").write_text(
            textwrap.dedent(
                """
                import math

                def settle(x_j: float) -> float:
                    return math.sqrt(x_j)
                """
            )
        )
        (pkg / "main.py").write_text(
            textwrap.dedent(
                """
                from core.helpers import settle

                def pipeline(energy_j: float) -> float:
                    scaled = energy_j * 2.0
                    return settle(scaled)
                """
            )
        )
        from repro.quality import RULE_REGISTRY

        engine = LintEngine(
            rules=[RULE_REGISTRY["RPL016"]()], baseline=Baseline()
        )
        report = engine.lint_paths([pkg], root=tmp_path)
        assert [f.rule for f in report.findings] == ["RPL016"]
        message = report.findings[0].message
        assert "settle" in message
        assert "math.sqrt" in message
        assert "helpers.py:" in message

    def test_same_module_drift_flagged(self):
        findings, _ = lint(
            """
            import math

            def helper(x_j: float) -> float:
                return math.exp(x_j)

            def pipeline(energy_j: float) -> float:
                return helper(energy_j * 2.0)
            """,
            rules=["RPL016"],
        )
        assert rule_ids(findings) == ["RPL016"]
        assert "helper" in findings[0].message

    def test_array_capable_helper_not_flagged(self):
        findings, _ = lint(
            """
            import numpy as np

            def helper(x_j: float) -> float:
                return np.exp(x_j)

            def pipeline(energy_j: float) -> float:
                return helper(energy_j * 2.0)
            """,
            rules=["RPL016"],
        )
        assert findings == []

    def test_caller_with_own_hazard_left_to_direct_rules(self):
        # RPL013 already reports the caller's own coercion; RPL016
        # stays quiet so one site is not double-flagged.
        findings, _ = lint(
            """
            import math

            def helper(x_j: float) -> float:
                return math.exp(x_j)

            def pipeline(energy_j: float) -> float:
                rounded = float(energy_j)
                return helper(rounded * 2.0)
            """,
            rules=["RPL016"],
        )
        assert findings == []


class TestRegistration:
    def test_rules_registered_and_sorted(self):
        from repro.quality import RULE_REGISTRY

        for rule_id in ("RPL013", "RPL014", "RPL015", "RPL016"):
            assert rule_id in RULE_REGISTRY

    def test_all_four_fire_together_on_one_snippet(self):
        findings, _ = lint(
            """
            import math
            import numpy as np

            def helper(x_j: float) -> float:
                return math.sqrt(x_j)

            def f(power_w: float, samples: np.ndarray):
                if power_w > 1.0:
                    power_w = 1.0
                total = sum(samples)
                return float(power_w) + total

            def g(energy_j: float) -> float:
                return helper(energy_j * 2.0)
            """,
            rules=["RPL013", "RPL014", "RPL015", "RPL016"],
        )
        assert rule_ids(findings) == [
            "RPL013", "RPL014", "RPL015", "RPL016"
        ]
