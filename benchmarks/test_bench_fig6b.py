"""Fig. 6b: tCDP isoline variation under uncertainty."""


from repro.analysis import figures, report


def test_bench_fig6b(benchmark, case_study, artifact_writer):
    data = benchmark(figures.fig6b_isoline_uncertainty, case_study)
    artifact_writer("fig6b_isoline_uncertainty", report.render_fig6b(data))

    isolines = data["isolines"]
    assert set(isolines) == {
        "nominal",
        "lifetime +6 mo",
        "lifetime -6 mo",
        "CI_use x3",
        "CI_use /3",
        "M3D yield 10%",
        "M3D yield 90%",
    }

    ys = data["op_scales"]
    mid = len(ys) // 4  # a y where all isolines are finite
    nominal = isolines["nominal"][mid]
    # Directional checks (paper Fig. 6b dashed-line ordering):
    assert isolines["lifetime +6 mo"][mid] > nominal
    assert isolines["lifetime -6 mo"][mid] < nominal
    assert isolines["M3D yield 90%"][mid] > nominal
    assert isolines["M3D yield 10%"][mid] < nominal

    # Even under uncertainty there are regions where each design
    # robustly wins (the paper's Sec. III-D conclusion).
    regions = data["robust_regions"]
    assert regions["candidate_always"].any()
    assert regions["baseline_always"].any()
    assert regions["uncertain"].any()
