"""edn: FIR/dot-product DSP kernel (after Embench's ``edn``).

Computes a sliding-window FIR: y[n] = sum_k h[k] * x[n+k] over an LCG
input vector, accumulating all outputs into a 32-bit checksum.
"""

from __future__ import annotations

from repro.workloads.suite import Workload

INPUT_LEN = 256
TAPS = 16
REPEATS = 8
LCG_SEED = 24680
LCG_MUL = 1664525
LCG_ADD = 1013904223

X_BASE = 0x2000_0000
H_BASE = X_BASE + 4 * INPUT_LEN

_TEMPLATE = """
.equ XV, {x_base}
.equ HV, {h_base}
.equ LEN, {length}
.equ TAPS, {taps}

_start:
    bl init
    movs r7, #{repeats}
    movs r0, #0
    mov r6, r0            @ running checksum in r6 (high-op mov, no flags)
repeat_loop:
    bl fir
    add r6, r6, r0        @ hmm: add low regs sets flags only w/ adds; use adds
    subs r7, r7, #1
    bne repeat_loop
    mov r0, r6
    bkpt #0

@ Fill x (LEN words) and h (TAPS words) with small LCG values.
init:
    push {{r4, r5, r6, lr}}
    ldr r0, =XV
    ldr r1, ={seed}
    ldr r4, ={lcg_mul}
    ldr r5, ={lcg_add}
    ldr r6, ={fill_words}
init_loop:
    muls r1, r4
    adds r1, r1, r5
    asrs r2, r1, #20      @ 12-bit signed samples
    str r2, [r0]
    adds r0, r0, #4
    subs r6, r6, #1
    bne init_loop
    pop {{r4, r5, r6, pc}}

@ r0 = sum over n of y[n], y[n] = sum_k h[k]*x[n+k].
fir:
    push {{r4, r5, r6, r7, lr}}
    movs r7, #0           @ n
    movs r6, #0           @ checksum
n_loop:
    ldr r4, =XV
    lsls r0, r7, #2
    adds r4, r4, r0       @ &x[n]
    ldr r5, =HV           @ &h[0]
    movs r2, #0           @ acc
    movs r3, #TAPS
k_loop:
    ldr r0, [r4]
    ldr r1, [r5]
    muls r0, r1
    adds r2, r2, r0
    adds r4, r4, #4
    adds r5, r5, #4
    subs r3, r3, #1
    bne k_loop
    adds r6, r6, r2
    adds r7, r7, #1
    ldr r0, ={n_outputs}
    cmp r7, r0
    blt n_loop
    mov r0, r6
    pop {{r4, r5, r6, r7, pc}}
"""


def _lcg_words(count: int):
    x = LCG_SEED
    out = []
    for _ in range(count):
        x = (x * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        signed = x - 0x100000000 if x & 0x80000000 else x
        out.append(signed >> 20)
    return out

def source(length: int = INPUT_LEN, taps: int = TAPS, repeats: int = REPEATS) -> str:
    return _TEMPLATE.format(
        x_base=f"0x{X_BASE:08X}",
        h_base=f"0x{X_BASE + 4 * length:08X}",
        length=length,
        taps=taps,
        repeats=repeats,
        seed=LCG_SEED,
        lcg_mul=LCG_MUL,
        lcg_add=LCG_ADD,
        fill_words=length + taps,
        n_outputs=length - taps,
    )


def golden_checksum(
    length: int = INPUT_LEN, taps: int = TAPS, repeats: int = REPEATS
) -> int:
    words = _lcg_words(length + taps)
    x, h = words[:length], words[length:]
    # One FIR pass; note x[n+k] for k in [0, taps) needs n+k < length,
    # so the kernel produces length-taps outputs.
    total_one = 0
    for n in range(length - taps):
        acc = 0
        for k in range(taps):
            acc = (acc + h[k] * x[n + k]) & 0xFFFFFFFF
        total_one = (total_one + acc) & 0xFFFFFFFF
    return (total_one * repeats) & 0xFFFFFFFF


def workload(
    length: int = INPUT_LEN, taps: int = TAPS, repeats: int = REPEATS
) -> Workload:
    return Workload(
        name="edn",
        description=f"{taps}-tap FIR over {length} samples, {repeats} repeats",
        source=source(length, taps, repeats),
        expected_checksum=golden_checksum(length, taps, repeats),
    )
