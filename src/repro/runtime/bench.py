"""The ``BENCH_iss.json`` harness: ISS performance trajectory per PR.

Measures the numbers the acceptance gates care about and writes them to
a JSON artifact so regressions are visible across PRs:

- full-length matmul-int wall time, simulated cycles/sec, and MIPS on
  the fast engine, with the checksum/cycle bit-identity check against
  the paper goldens,
- a direct fast-vs-legacy speedup measurement on a medium matmul
  configuration (the full-length legacy run takes ~a minute; pass
  ``measure_legacy_full=True`` to include it),
- the superblock engine on the full-length matmul: wall time, speedup
  over the fast engine, paper-golden bit-identity,
- the N-lane vector engine: full-length matmul at N=1 (bit-identity
  against the paper goldens), lane-scaling rows at 8/16/32/64 lanes of
  seed-parameterized matmul variants (aggregate MIPS and speedup over
  the measured fast-path MIPS), and an 8-variant suite run through
  :func:`~repro.runtime.parallel.run_workloads_vector`,
- suite study wall times: serial cold, parallel cold (skipped on
  single-CPU hosts, where the comparison is meaningless), warm-cache,
- single-entry cache hit/miss timings.

Run it via ``python -m repro.cli bench-iss`` or the benchmarks suite.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.cpu import CortexM0, MemoryMap, assemble
from repro.cpu.trace import ActivityTrace
from repro.runtime.cache import ISS_VERSION, ResultCache, run_workload_cached
from repro.workloads import matmul_int
from repro.workloads.suite import run_workload


@contextlib.contextmanager
def _gc_quiet():
    """Keep the collector out of timed sections.

    The interpreter loop allocates millions of acyclic objects; a gen-2
    collection walking the whole accumulated bench heap mid-measurement
    adds seconds of noise on long runs.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _timed_engine_run(workload, engine: str):
    program = assemble(workload.source)
    cpu = CortexM0(MemoryMap.embedded_system(), trace=ActivityTrace())
    cpu.load_program(program)
    with _gc_quiet():
        start = time.perf_counter()
        stats = cpu.run(engine=engine)
        wall = time.perf_counter() - start
    return stats, cpu.regs.read(0), wall


def run_bench(
    output_path: Optional[Path] = None,
    measure_legacy_full: bool = False,
) -> dict:
    """Collect the benchmark numbers; optionally write the artifact."""
    report: dict = {
        "schema": "bench-iss/2",
        "iss_version": ISS_VERSION,
        "python": platform.python_version(),
        "generated_unix": time.time(),
    }

    # -- engine comparison on a medium config --------------------------
    medium = matmul_int.workload(n=12, repeats=8, tune=5)
    legacy_stats, legacy_sum, legacy_wall = _timed_engine_run(
        medium, "legacy"
    )
    fast_stats, fast_sum, fast_wall = _timed_engine_run(medium, "fast")
    report["engine_comparison_medium"] = {
        "workload": "matmul-int n=12 repeats=8 tune=5",
        "legacy_wall_seconds": legacy_wall,
        "fast_wall_seconds": fast_wall,
        "speedup_fast_over_legacy": legacy_wall / fast_wall,
        "bit_identical": (
            legacy_stats.cycles == fast_stats.cycles
            and legacy_stats.instructions == fast_stats.instructions
            and legacy_sum == fast_sum
        ),
    }

    # -- full-length matmul on the fast engine -------------------------
    # Best of two runs: a single sample of a multi-second measurement is
    # vulnerable to scheduler noise on a shared host.
    # engine="fast" is pinned: "auto" now resolves to the superblock
    # engine, which gets its own section below.
    full = matmul_int.workload()
    full_wall = float("inf")
    for _ in range(2):
        with _gc_quiet():
            start = time.perf_counter()
            result = run_workload(full, engine="fast")
            full_wall = min(full_wall, time.perf_counter() - start)
    report["matmul_full_fast"] = {
        "wall_seconds": full_wall,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "sim_cycles_per_second": result.cycles / full_wall,
        "mips": result.instructions / full_wall / 1e6,
        "checksum": f"{result.checksum:#010x}",
        "cycles_match_paper": result.cycles == matmul_int.PAPER_CYCLE_COUNT,
        "checksum_correct": result.correct,
    }
    if measure_legacy_full:
        lf_stats, lf_sum, lf_wall = _timed_engine_run(full, "legacy")
        report["matmul_full_legacy"] = {
            "wall_seconds": lf_wall,
            "speedup_fast_over_legacy": lf_wall / full_wall,
            "bit_identical": (
                lf_stats.cycles == result.cycles
                and lf_stats.instructions == result.instructions
                and lf_sum == result.checksum
            ),
        }
    else:
        # Estimated from the directly measured medium-config ratio.
        report["matmul_full_legacy_estimate"] = {
            "wall_seconds": full_wall
            * report["engine_comparison_medium"]["speedup_fast_over_legacy"],
            "basis": "medium-config speedup x full fast wall",
        }

    # -- superblock engine on the full-length matmul -------------------
    sb_wall = float("inf")
    for _ in range(2):
        with _gc_quiet():
            start = time.perf_counter()
            sb_result = run_workload(full, engine="superblock")
            sb_wall = min(sb_wall, time.perf_counter() - start)
    report["superblock"] = {
        "wall_seconds": sb_wall,
        "mips": sb_result.instructions / sb_wall / 1e6,
        "speedup_superblock_over_fast": full_wall / sb_wall,
        "bit_identical": (
            sb_result.cycles == matmul_int.PAPER_CYCLE_COUNT
            and sb_result.correct
            and sb_result.cycles == result.cycles
            and sb_result.instructions == result.instructions
            and sb_result.checksum == result.checksum
        ),
    }

    # -- N-lane vector engine ------------------------------------------
    from repro.cpu.vector_engine import run_lanes
    from repro.runtime.parallel import run_workloads_vector

    fast_mips = report["matmul_full_fast"]["mips"]

    # N=1 property run: the vector engine degenerates to one lane and
    # must stay bit-identical to the paper goldens on the full workload.
    with _gc_quiet():
        start = time.perf_counter()
        n1 = run_lanes(full.source, lanes=1)
        n1_wall = time.perf_counter() - start
    n1_lane = n1.lanes[0]
    vector: dict = {
        "n1_wall_seconds": n1_wall,
        "n1_vectorized": n1.vectorized,
        "n1_bit_identical": (
            n1.vectorized
            and n1_lane.checksum == full.expected_checksum
            and n1_lane.cycles == matmul_int.PAPER_CYCLE_COUNT
        ),
    }

    # Lane-scaling rows: N seed-parameterized matmul variants share one
    # program text and run in lockstep.  Aggregate MIPS is total
    # retired instructions over the group wall; speedup is against the
    # fast-path MIPS measured above on this same host.
    scale_cfg = dict(n=20, repeats=20, tune=1000)
    for n_lanes in (8, 16, 32, 64):
        variants = [
            matmul_int.seed_variant(12345 + 7919 * i, **scale_cfg)
            for i in range(n_lanes)
        ]
        lane_words = [w.data_words for w in variants]
        src = variants[0].source
        run_lanes(src, lane_words=lane_words[: max(2, n_lanes // 4)])  # warm
        with _gc_quiet():
            start = time.perf_counter()
            vres = run_lanes(src, lane_words=lane_words)
            wall = time.perf_counter() - start
        mips = vres.total_instructions / wall / 1e6
        vector[f"n{n_lanes}"] = {
            "lanes": n_lanes,
            "wall_seconds": wall,
            "vectorized": vres.vectorized,
            "total_instructions": vres.total_instructions,
            "aggregate_mips": mips,
            "speedup_vs_fast": mips / fast_mips,
            "all_correct": all(
                lane.checksum == w.expected_checksum
                for w, lane in zip(variants, vres.lanes)
            ),
        }

    # 8-variant suite through the vector runner (end-to-end path).
    from repro.analysis.suite_study import seed_variant_configs

    suite_variants = seed_variant_configs(8)
    with _gc_quiet():
        start = time.perf_counter()
        vreport = run_workloads_vector(suite_variants, cache=False)
        vsuite_wall = time.perf_counter() - start
    vector["suite_8_variants"] = {
        "wall_seconds": vsuite_wall,
        "vector_groups": vreport.vector_groups,
        "vector_lanes": vreport.vector_lanes,
        "aggregate_mips": vreport.mips,
        "all_correct": all(r.correct for r in vreport.results),
    }
    report["vector_lanes"] = vector

    # -- suite study: serial cold, parallel cold, warm cache -----------
    from repro.analysis.suite_study import run_suite_study

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        bench_cache = ResultCache(Path(tmp))

        start = time.perf_counter()
        run_suite_study(cache=False, jobs=1)
        serial_cold = time.perf_counter() - start

        # The serial/parallel comparison is only meaningful when the
        # pool actually gets more than one worker.  On a single-CPU
        # host it collapses to a serial rerun, so skip the measurement
        # rather than publish a same-vs-same "comparison".
        from repro.runtime.parallel import resolve_jobs

        cpus = os.cpu_count() or 1
        parallel_jobs = resolve_jobs(None, 8)
        parallel_cold: Optional[float] = None
        if parallel_jobs > 1:
            start = time.perf_counter()
            run_suite_study(cache=False, jobs=None)
            parallel_cold = time.perf_counter() - start

        start = time.perf_counter()
        run_suite_study(cache=bench_cache)  # cold: primes the cache
        prime_wall = time.perf_counter() - start

        start = time.perf_counter()
        run_suite_study(cache=bench_cache)  # warm: all hits
        warm_wall = time.perf_counter() - start

        report["suite_study"] = {
            "workloads": 8,
            "cpus_available": cpus,
            "serial_cold_wall_seconds": serial_cold,
            "parallel_cold_wall_seconds": parallel_cold,
            "parallel_jobs": parallel_jobs,
            "parallel_comparison_valid": parallel_jobs > 1,
            "cold_prime_wall_seconds": prime_wall,
            "warm_cache_wall_seconds": warm_wall,
            "warm_cache_hits": bench_cache.hits,
            "warm_under_5s": warm_wall < 5.0,
        }

        # -- single-entry cache timings --------------------------------
        entry_cache = ResultCache(Path(tmp) / "entry")
        start = time.perf_counter()
        run_workload_cached(medium, cache=entry_cache)
        miss_wall = time.perf_counter() - start
        start = time.perf_counter()
        _, was_hit = run_workload_cached(medium, cache=entry_cache)
        hit_wall = time.perf_counter() - start
        report["cache_entry"] = {
            "miss_wall_seconds": miss_wall,
            "hit_wall_seconds": hit_wall,
            "hit_was_hit": was_hit,
            "hit_speedup": miss_wall / hit_wall if hit_wall > 0 else None,
        }

    if output_path is not None:
        output_path = Path(output_path)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report
