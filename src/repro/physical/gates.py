"""Gate-level standard cells: the ASAP7-style cell set.

Where :mod:`repro.physical.stdcells` models the library at the
gate-equivalent aggregate level (for the M0 core), this module defines
individual cells — INV/NAND/NOR/AOI/DFF — with logical-effort delay
parameters per V_T flavour, enabling gate-netlist construction and
static timing analysis of the eDRAM periphery blocks (decoders, control)
that the paper pushes through "automated VLSI design flows".

Delay model (logical effort): stage delay = tau * (p + g * h), with h
the electrical fanout (C_load / C_in), g the logical effort, p the
parasitic delay; tau follows the flavour's FO4 speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import PhysicalDesignError
from repro.physical.stdcells import VtFlavor, make_library


@dataclass(frozen=True)
class GateType:
    """A logic-cell archetype with logical-effort parameters.

    Attributes:
        name: Cell name (e.g. ``"NAND2"``).
        logical_effort: g — input capacitance relative to an inverter
            delivering the same drive.
        parasitic: p — intrinsic delay in units of tau.
        n_inputs: Fan-in.
        input_cap_f: Input capacitance of the unit-sized cell.
        energy_j: Internal switching energy of the unit cell per output
            transition (excludes load).
        area_um2: Unit-cell footprint.
    """

    name: str
    logical_effort: float
    parasitic: float
    n_inputs: int
    input_cap_f: float
    energy_j: float
    area_um2: float

    def __post_init__(self) -> None:
        if self.logical_effort <= 0 or self.parasitic < 0:
            raise PhysicalDesignError(f"{self.name}: bad effort parameters")
        if self.n_inputs < 1:
            raise PhysicalDesignError(f"{self.name}: need >= 1 input")


#: The cell set, logical-effort values from the classic tables.
GATE_TYPES: Dict[str, GateType] = {
    "INV": GateType("INV", 1.0, 1.0, 1, 0.8e-15, 0.25e-15, 0.10),
    "BUF": GateType("BUF", 1.0, 2.0, 1, 0.8e-15, 0.45e-15, 0.15),
    "NAND2": GateType("NAND2", 4.0 / 3.0, 2.0, 2, 1.0e-15, 0.35e-15, 0.14),
    "NAND3": GateType("NAND3", 5.0 / 3.0, 3.0, 3, 1.2e-15, 0.45e-15, 0.20),
    "NOR2": GateType("NOR2", 5.0 / 3.0, 2.0, 2, 1.1e-15, 0.35e-15, 0.14),
    "AOI21": GateType("AOI21", 2.0, 3.0, 3, 1.2e-15, 0.50e-15, 0.22),
    "XOR2": GateType("XOR2", 4.0, 4.0, 2, 1.6e-15, 0.80e-15, 0.30),
    "DFF": GateType("DFF", 1.5, 6.0, 2, 1.2e-15, 1.50e-15, 0.55),
}

#: Base tau (FO4/5 normalization) per flavour, derived from the
#: aggregate library's FO4 delay.
_TAU_FO4_FRACTION = 0.2


def gate_tau_s(flavor: VtFlavor) -> float:
    """The logical-effort time unit tau for a V_T flavour."""
    return make_library(flavor).fo4_delay_s * _TAU_FO4_FRACTION


def gate_delay_s(
    gate: GateType,
    flavor: VtFlavor,
    load_cap_f: float,
    size: float = 1.0,
) -> float:
    """Logical-effort delay of one gate driving a load.

    Args:
        gate: The cell archetype.
        flavor: V_T flavour (sets tau).
        load_cap_f: Capacitive load on the output.
        size: Drive-strength multiplier (scales input cap and drive).
    """
    if size <= 0:
        raise PhysicalDesignError(f"size must be > 0, got {size}")
    if load_cap_f < 0:
        raise PhysicalDesignError("load must be >= 0")
    h = load_cap_f / (gate.input_cap_f * size)
    return gate_tau_s(flavor) * (gate.parasitic + gate.logical_effort * h)


def gate_energy_j(
    gate: GateType,
    load_cap_f: float,
    vdd_v: float = 0.7,
    size: float = 1.0,
) -> float:
    """Internal + load switching energy per output transition."""
    if size <= 0:
        raise PhysicalDesignError(f"size must be > 0, got {size}")
    return gate.energy_j * size + load_cap_f * vdd_v * vdd_v
