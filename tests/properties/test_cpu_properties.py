"""Property-based tests: the ISS agrees with Python integer semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import CortexM0, MemoryMap, assemble

u8 = st.integers(min_value=0, max_value=255)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
shift5 = st.integers(min_value=1, max_value=31)


def run_with_r0_r1(body: str, r0: int, r1: int) -> CortexM0:
    """Load r0/r1 via literal pool, run body, halt."""
    source = f"""
_start:
    ldr r0, =VAL0
    ldr r1, =VAL1
{body}
    bkpt #0
.equ VAL0, {r0}
.equ VAL1, {r1}
"""
    cpu = CortexM0(MemoryMap.embedded_system())
    cpu.load_program(assemble(source))
    cpu.run(max_cycles=10_000)
    return cpu


MASK = 0xFFFFFFFF


class TestAluAgainstPython:
    @given(u32, u32)
    @settings(max_examples=40, deadline=None)
    def test_add(self, a, b):
        cpu = run_with_r0_r1("    adds r0, r0, r1", a, b)
        assert cpu.regs.read(0) == (a + b) & MASK

    @given(u32, u32)
    @settings(max_examples=40, deadline=None)
    def test_sub(self, a, b):
        cpu = run_with_r0_r1("    subs r0, r0, r1", a, b)
        assert cpu.regs.read(0) == (a - b) & MASK

    @given(u32, u32)
    @settings(max_examples=40, deadline=None)
    def test_mul(self, a, b):
        cpu = run_with_r0_r1("    muls r0, r1", a, b)
        assert cpu.regs.read(0) == (a * b) & MASK

    @given(u32, u32)
    @settings(max_examples=30, deadline=None)
    def test_bitwise(self, a, b):
        cpu = run_with_r0_r1(
            """
    mov r2, r0
    ands r2, r1
    mov r3, r0
    orrs r3, r1
    mov r4, r0
    eors r4, r1
""",
            a,
            b,
        )
        assert cpu.regs.read(2) == a & b
        assert cpu.regs.read(3) == a | b
        assert cpu.regs.read(4) == a ^ b

    @given(u32, shift5)
    @settings(max_examples=30, deadline=None)
    def test_shifts(self, a, n):
        cpu = run_with_r0_r1(
            f"""
    mov r2, r0
    lsls r2, r2, #{n}
    mov r3, r0
    lsrs r3, r3, #{n}
    mov r4, r0
    asrs r4, r4, #{n}
""",
            a,
            0,
        )
        assert cpu.regs.read(2) == (a << n) & MASK
        assert cpu.regs.read(3) == a >> n
        signed = a - 0x100000000 if a & 0x80000000 else a
        assert cpu.regs.read(4) == (signed >> n) & MASK

    @given(u32, u32)
    @settings(max_examples=30, deadline=None)
    def test_flags_match_comparison(self, a, b):
        """After CMP, the BHI/BLT outcomes match Python comparisons."""
        cpu = run_with_r0_r1(
            """
    movs r4, #0
    cmp r0, r1
    bls not_higher
    adds r4, r4, #1      @ unsigned a > b
not_higher:
    cmp r0, r1
    bge not_less
    adds r4, r4, #2      @ signed a < b
not_less:
""",
            a,
            b,
        )
        signed_a = a - 0x100000000 if a & 0x80000000 else a
        signed_b = b - 0x100000000 if b & 0x80000000 else b
        expected = (1 if a > b else 0) | (2 if signed_a < signed_b else 0)
        assert cpu.regs.read(4) == expected


class TestMemoryRoundtrip:
    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_bulk_roundtrip(self, payload):
        memory = MemoryMap.embedded_system()
        memory.load_bytes(0x2000_0000, payload)
        assert memory.read_bytes(0x2000_0000, len(payload)) == payload

    @given(u32, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_word_roundtrip_any_aligned_offset(self, value, word_index):
        memory = MemoryMap.embedded_system()
        address = 0x2000_0000 + word_index * 4
        memory.write(address, value, 4)
        assert memory.read(address, 4) == value

    @given(st.lists(u32, min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_store_load_sequence_via_iss(self, values):
        stores = "\n".join(
            f"    ldr r1, =VAL{i}\n    str r1, [r0, #{4*i}]"
            for i in range(len(values))
        )
        loads = "\n".join(
            f"    ldr r{2+i}, [r0, #{4*i}]" for i in range(min(len(values), 5))
        )
        equs = "\n".join(f".equ VAL{i}, {v}" for i, v in enumerate(values))
        source = f"""
_start:
    ldr r0, =0x20000000
{stores}
{loads}
    bkpt #0
{equs}
"""
        cpu = CortexM0(MemoryMap.embedded_system())
        cpu.load_program(assemble(source))
        cpu.run(max_cycles=10_000)
        for i in range(min(len(values), 5)):
            assert cpu.regs.read(2 + i) == values[i]


class TestCycleAccounting:
    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_nop_sled_cycles(self, n):
        source = "_start:\n" + "\n".join("    nop" for _ in range(n)) + "\n    bkpt #0\n"
        cpu = CortexM0()
        cpu.load_program(assemble(source))
        stats = cpu.run()
        assert stats.cycles == n + 1  # n NOPs + BKPT
        assert stats.instructions == n + 1

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_loop_cycle_formula(self, iterations):
        """movs(1) + iterations*(subs 1 + taken bne 3) - 2 (last not taken)."""
        source = f"""
_start:
    movs r0, #{iterations}
loop:
    subs r0, r0, #1
    bne loop
    bkpt #0
"""
        cpu = CortexM0()
        cpu.load_program(assemble(source))
        stats = cpu.run()
        expected = 1 + iterations * 4 - 2 + 1  # + bkpt
        assert stats.cycles == expected
