"""RPL006/RPL007 fixtures, including the RPL006-vs-RPL001 differential.

The differential tests are the point of the dataflow engine: each
positive fixture here is a real unit bug that RPL001's suffix-at-point-
of-use check is structurally blind to, and each is asserted *both*
ways — RPL006 fires, RPL001 stays silent.
"""

import textwrap

import pytest

from repro.quality import Baseline, LintEngine


def lint(source, rel_path="core/snippet.py", rules=None):
    from repro.quality import RULE_REGISTRY

    selected = None
    if rules is not None:
        selected = [RULE_REGISTRY[r]() for r in rules]
    engine = LintEngine(rules=selected, baseline=Baseline())
    return engine.lint_source(textwrap.dedent(source), rel_path=rel_path)


def rule_ids(findings):
    return sorted({f.rule for f in findings})


def assert_differential(source, rel_path="core/snippet.py"):
    """RPL006 catches it; RPL001 alone does not."""
    flow_findings, _ = lint(source, rel_path, rules=["RPL006"])
    assert rule_ids(flow_findings) == ["RPL006"], flow_findings
    legacy_findings, _ = lint(source, rel_path, rules=["RPL001"])
    assert legacy_findings == [], legacy_findings
    return flow_findings


@pytest.mark.smoke
class TestRPL006Differential:
    def test_alias_chain_mix_invisible_to_rpl001(self):
        findings = assert_differential(
            """
            def f(energy_j, lifetime_months):
                eol = lifetime_months
                return energy_j + eol
            """
        )
        # The witness chain names the defining assignment.
        assert "'eol' = lifetime_months" in findings[0].message

    def test_tuple_unpacking_mix_invisible_to_rpl001(self):
        assert_differential(
            """
            def f(block):
                power, runtime = block.load_w, block.window_months
                worst = power + runtime
            """
        )

    def test_cross_function_return_mix_invisible_to_rpl001(self):
        findings = assert_differential(
            """
            def horizon(config):
                lifetime_months = config.lifetime_months
                return lifetime_months

            def f(config, energy_j):
                eol = horizon(config)
                return energy_j + eol
            """
        )
        message = findings[0].message
        assert "return of horizon()" in message
        assert "'eol' = horizon(config)" in message

    def test_declared_return_suffix_vs_inferred_value(self):
        findings = assert_differential(
            """
            def total_j(standby_kwh):
                budget = standby_kwh
                return budget
            """
        )
        assert "declares _j" in findings[0].message

    def test_suffixed_target_assigned_incompatible_inference(self):
        findings = assert_differential(
            """
            def f(parts):
                total = parts.energy_kwh
                total_j = total
            """
        )
        assert "'total_j'" in findings[0].message


class TestRPL006CrossModule:
    def test_imported_return_unit_flagged(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "helpers.py").write_text(
            textwrap.dedent(
                """
                def device_lifetime(config):
                    lifetime_months = config.lifetime_months
                    return lifetime_months
                """
            )
        )
        (pkg / "main.py").write_text(
            textwrap.dedent(
                """
                from pkg.helpers import device_lifetime

                def f(config, energy_j):
                    horizon = device_lifetime(config)
                    return energy_j + horizon
                """
            )
        )
        from repro.quality import RULE_REGISTRY

        engine = LintEngine(
            rules=[RULE_REGISTRY["RPL006"]()], baseline=Baseline()
        )
        report = engine.lint_paths([pkg], root=tmp_path)
        assert [f.rule for f in report.findings] == ["RPL006"]
        message = report.findings[0].message
        assert "device_lifetime" in message
        # RPL001 alone sees nothing here.
        legacy = LintEngine(
            rules=[RULE_REGISTRY["RPL001"]()], baseline=Baseline()
        ).lint_paths([pkg], root=tmp_path)
        assert legacy.findings == []


class TestRPL006Negatives:
    def test_explicit_constant_conversion_ok(self):
        findings, _ = lint(
            """
            from repro import units

            def f(energy_kwh):
                energy_j = energy_kwh * units.KWH
                total_j = energy_j + 0.0
                return total_j
            """,
            rules=["RPL006"],
        )
        assert findings == []

    def test_composite_cancellation_ok(self):
        findings, _ = lint(
            """
            def f(ci_gco2_per_kwh, energy_kwh, base_gco2):
                carbon_gco2 = ci_gco2_per_kwh * energy_kwh
                return carbon_gco2 + base_gco2
            """,
            rules=["RPL006"],
        )
        assert findings == []

    def test_literal_scaling_not_flagged_same_dimension(self):
        # x_kg * 1000 may be a deliberate manual conversion to grams;
        # the fuzzy flag keeps same-dimension scale checks quiet.
        findings, _ = lint(
            """
            def f(mass_kg, other_g):
                scaled = mass_kg * 1000
                return scaled + other_g
            """,
            rules=["RPL006"],
        )
        assert findings == []

    def test_directly_suffixed_operands_left_to_rpl001(self):
        # Both operands readable at point of use: RPL001 territory,
        # RPL006 must not double-report.
        findings, _ = lint(
            "total = static_j + dynamic_kwh\n", rules=["RPL006"]
        )
        assert findings == []
        findings, _ = lint(
            "total = static_j + dynamic_kwh\n", rules=["RPL001"]
        )
        assert rule_ids(findings) == ["RPL001"]

    def test_pragma_suppression(self):
        findings, suppressed = lint(
            """
            def f(energy_j, lifetime_months):
                eol = lifetime_months
                return energy_j + eol  # repro-lint: disable=RPL006
            """,
            rules=["RPL006"],
        )
        assert findings == []
        assert suppressed == 1


class TestRPL007Rebinding:
    def test_dimension_change_flagged(self):
        findings, _ = lint(
            """
            def f(energy_kwh, lifetime_months):
                budget = energy_kwh
                budget = lifetime_months
            """,
            rules=["RPL007"],
        )
        assert rule_ids(findings) == ["RPL007"]
        message = findings[0].message
        assert "energy" in message and "time" in message
        assert "'budget' = energy_kwh" in message

    def test_conversion_through_units_constant_ok(self):
        findings, _ = lint(
            """
            from repro import units

            def f(energy_kwh):
                budget = energy_kwh
                budget = budget * units.KWH
                return budget
            """,
            rules=["RPL007"],
        )
        assert findings == []

    def test_same_dimension_rebinding_ok(self):
        findings, _ = lint(
            """
            def f(a_j, b_j):
                best = a_j
                best = b_j
            """,
            rules=["RPL007"],
        )
        assert findings == []
