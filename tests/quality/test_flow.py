"""Unit tests for the dataflow unit-inference engine (quality/flow.py)."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.quality.dimensions import CompositeUnit, UnitSuffix
from repro.quality.engine import FileContext, _ModuleCache, find_package_root
from repro.quality.flow import (
    MAX_CHAIN_STEPS,
    Inferred,
    Step,
    analyze_scopes,
    context_info,
    dimension_of,
    get_program,
    units_compatible,
)
from repro.quality.pragmas import parse_pragmas


def make_ctx(source, rel_path="core/mod.py", path=None):
    """A FileContext for in-memory (or on-disk) source, engine-style."""
    src = textwrap.dedent(source)
    lines = src.splitlines()
    p = Path(path) if path is not None else Path("<memory>.py")
    return FileContext(
        path=p,
        rel_path=rel_path,
        parts=tuple(Path(rel_path).parts),
        source=src,
        lines=lines,
        tree=ast.parse(src),
        pragmas=parse_pragmas(lines),
        package_root=find_package_root(p) if p.is_file() else None,
        modules=_ModuleCache(),
    )


def flow_named(ctx, name):
    for flow in analyze_scopes(ctx):
        if flow.name == name:
            return flow
    raise AssertionError(f"no flow named {name!r}")


@pytest.mark.smoke
class TestInferredValue:
    def test_describe_renders_chain_most_recent_first(self):
        unit = UnitSuffix("j", "energy", 1.0)
        value = Inferred(unit, (Step("a", 1),)).derived("b", 2)
        assert value.describe() == "_j via b [line 2] <- a [line 1]"

    def test_chain_render_is_capped(self):
        unit = UnitSuffix("j", "energy", 1.0)
        value = Inferred(unit)
        for i in range(MAX_CHAIN_STEPS + 3):
            value = value.derived(f"s{i}", i)
        assert value.describe().endswith("<- ...")
        assert value.describe().count("<-") == MAX_CHAIN_STEPS

    def test_fuzzy_is_sticky_across_derivation(self):
        unit = UnitSuffix("j", "energy", 1.0)
        value = Inferred(unit, fuzzy=True).derived("x", 1)
        assert value.fuzzy


class TestPropagation:
    def test_assignment_and_parameter_seeding(self):
        ctx = make_ctx(
            """
            def f(energy_j):
                total = energy_j
                again = total
                return again
            """
        )
        flow = flow_named(ctx, "f")
        (ret_node, inferred), = flow.returns
        assert inferred is not None
        assert inferred.unit.suffix == "j"
        # The witness names the defining assignments back to the source.
        text = inferred.describe()
        assert "'again' = total" in text
        assert "'total' = energy_j" in text

    def test_tuple_unpacking(self):
        ctx = make_ctx(
            """
            def f(block):
                power, runtime = block.load_w, block.window_months
                check = power < runtime
            """
        )
        flow = flow_named(ctx, "f")
        check = flow.checks[-1]
        assert dimension_of(check.left.unit) == "power"
        assert dimension_of(check.right.unit) == "time"

    def test_literal_scaling_marks_fuzzy(self):
        ctx = make_ctx(
            """
            def f(mass_kg):
                scaled = mass_kg * 1000
                return scaled
            """
        )
        flow = flow_named(ctx, "f")
        (_, inferred), = flow.returns
        assert inferred.fuzzy
        assert dimension_of(inferred.unit) == "mass"

    def test_branch_join_keeps_compatible_values(self):
        ctx = make_ctx(
            """
            def f(flag, a_j, b_j, c_months):
                if flag:
                    x = a_j
                    y = a_j
                else:
                    x = b_j
                    y = c_months
                keep = x
                drop = y
                return keep
            """
        )
        flow = flow_named(ctx, "f")
        (_, inferred), = flow.returns
        # x agrees (_j) on both branches and survives; y does not.
        assert inferred is not None and inferred.unit.suffix == "j"


class TestConversionAlgebra:
    def _return_unit(self, source):
        ctx = make_ctx(source)
        flow = flow_named(ctx, "f")
        (_, inferred), = flow.returns
        return inferred

    def test_multiply_by_constant_converts_to_base(self):
        inferred = self._return_unit(
            """
            from repro import units

            def f(energy_kwh):
                return energy_kwh * units.KWH
            """
        )
        assert inferred.unit.suffix == "j"
        assert not inferred.fuzzy

    def test_divide_by_constant_converts_from_base(self):
        inferred = self._return_unit(
            """
            from repro import units

            def f(energy_j):
                return energy_j / units.KWH
            """
        )
        assert inferred.unit.suffix == "kwh"

    def test_power_times_time_is_energy(self):
        inferred = self._return_unit(
            """
            def f(power_w, duration_s):
                return power_w * duration_s
            """
        )
        assert dimension_of(inferred.unit) == "energy"

    def test_energy_over_time_is_power(self):
        inferred = self._return_unit(
            """
            def f(energy_j, duration_s):
                return energy_j / duration_s
            """
        )
        assert dimension_of(inferred.unit) == "power"

    def test_composite_rate_times_quantity_cancels(self):
        inferred = self._return_unit(
            """
            def f(ci_gco2_per_kwh, energy_kwh):
                return ci_gco2_per_kwh * energy_kwh
            """
        )
        assert isinstance(inferred.unit, UnitSuffix)
        assert inferred.unit.suffix == "gco2"

    def test_quantity_ratio_builds_composite(self):
        inferred = self._return_unit(
            """
            def f(epa_kwh, wafer_area_cm2):
                return epa_kwh / wafer_area_cm2
            """
        )
        assert isinstance(inferred.unit, CompositeUnit)
        assert inferred.unit.suffix == "kwh_per_cm2"

    def test_same_unit_ratio_is_dimensionless(self):
        inferred = self._return_unit(
            """
            def f(a_j, b_j):
                return a_j / b_j
            """
        )
        assert inferred is None


class TestCrossModule:
    def _package(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "helpers.py").write_text(
            textwrap.dedent(
                """
                def device_lifetime(config):
                    lifetime_months = config.lifetime_months
                    return lifetime_months
                """
            )
        )
        main = pkg / "main.py"
        main.write_text(
            textwrap.dedent(
                """
                from pkg.helpers import device_lifetime

                def f(config):
                    horizon = device_lifetime(config)
                    return horizon
                """
            )
        )
        return main

    def test_imported_return_unit_propagates(self, tmp_path):
        main = self._package(tmp_path)
        ctx = make_ctx(main.read_text(), path=main)
        flow = flow_named(ctx, "f")
        (_, inferred), = flow.returns
        assert inferred is not None
        assert dimension_of(inferred.unit) == "time"
        assert "device_lifetime" in inferred.describe()

    def test_program_is_shared_per_module_cache(self):
        ctx = make_ctx("x = 1\n")
        assert get_program(ctx) is get_program(ctx)

    def test_suffixed_function_name_is_authoritative(self):
        ctx = make_ctx(
            """
            def total_energy_j(parts):
                return sum(parts)

            def f(parts):
                return total_energy_j(parts)
            """
        )
        program = get_program(ctx)
        info = context_info(ctx, program)
        unit = program.return_unit(info, "total_energy_j")
        assert unit is not None and unit.suffix == "j"

    def test_recursive_function_does_not_loop(self):
        ctx = make_ctx(
            """
            def f(n):
                return f(n - 1)
            """
        )
        program = get_program(ctx)
        info = context_info(ctx, program)
        assert program.return_unit(info, "f") is None


class TestCompatibility:
    def test_composite_vs_simple_never_compatible(self):
        simple = UnitSuffix("kwh", "energy", 3.6e6)
        comp = CompositeUnit(
            numerator=UnitSuffix("kwh", "energy", 3.6e6),
            denominator=UnitSuffix("cm2", "area", 1.0),
        )
        assert not units_compatible(simple, comp)
        assert units_compatible(comp, comp)
