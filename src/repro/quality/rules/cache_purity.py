"""RPL003 — purity of cached functions.

``functools.lru_cache`` memoizes on arguments alone, and
:class:`~repro.runtime.cache.SweepCache` persists results to disk keyed
on an explicit payload.  Either way, a cached function that reads
ambient state — environment variables, module-level mutables, RNG,
clocks — returns stale or irreproducible values the moment that state
changes, and no test will catch it because the first call looks right.

A function is *checked* when any of these hold:

- it is decorated with ``lru_cache`` / ``functools.lru_cache(...)`` /
  ``functools.cache``;
- its body references ``SweepCache`` *and* round-trips it with
  ``.get``/``.put`` (it computes a value that a sweep cache persists);
- its ``def`` line carries a ``# repro-lint: cache-pure`` pragma
  (opt-in for e.g. callbacks registered with a cache elsewhere).

Inside a checked function the rule flags:

- reads of ``os.environ`` / ``os.getenv``;
- any nondeterministic call (same detector as RPL002);
- loads of module-level lowercase names bound to mutable displays
  (``list``/``dict``/``set`` literals, comprehensions, or constructor
  calls).  ALL_CAPS module names are treated as frozen-by-convention
  lookup tables and are not flagged.

The ``obs`` package is exempt (mirroring RPL002): the tracing layer's
whole job is to read clocks and accumulate mutable state, and nothing
in it is memoized on arguments.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import (
    Rule,
    classify_nondeterministic_call,
    dotted_name,
    function_local_names,
    register,
)

_CACHE_DECORATORS = {"lru_cache", "cache", "cached_property"}

#: Path components whose files are never treated as memoized model code.
EXEMPT_COMPONENTS = frozenset({"obs"})
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_cache_decorator(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node)
    if name is None:
        return False
    return name.split(".")[-1] in _CACHE_DECORATORS


def _uses_sweep_cache(func: _FuncDef) -> bool:
    """True when ``func`` itself round-trips a :class:`SweepCache`.

    Requires both a ``SweepCache`` reference *and* a ``.get``/``.put``
    call — a benchmark driver that merely constructs a cache and hands
    it to the real compute function is not itself cached, and its
    wall-clock timing reads are fine.
    """
    mentions = False
    round_trips = False
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == "SweepCache":
            mentions = True
        elif isinstance(node, ast.Attribute) and node.attr == "SweepCache":
            mentions = True
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "put")
        ):
            round_trips = True
    return mentions and round_trips


def _module_level_mutables(tree: ast.Module) -> Set[str]:
    """Lowercase module-level names bound to mutable displays."""
    mutables: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        if not _is_mutable_display(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and not target.id.isupper():
                mutables.add(target.id)
    return mutables


def _is_mutable_display(value: ast.expr) -> bool:
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            return name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


@register
class CachePurityRule(Rule):
    """Flag ambient-state reads inside memoized functions."""

    rule_id = "RPL003"
    severity = Severity.ERROR
    summary = "cached functions must be pure"

    def check(self, ctx) -> Iterator[Finding]:
        if EXEMPT_COMPONENTS.intersection(ctx.parts[:-1]):
            return
        mutables = _module_level_mutables(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_checked(ctx, node):
                continue
            yield from self._check_body(ctx, node, mutables)

    # ------------------------------------------------------------------
    def _is_checked(self, ctx, func: _FuncDef) -> bool:
        if any(_is_cache_decorator(d) for d in func.decorator_list):
            return True
        lines = [func.lineno] + [d.lineno for d in func.decorator_list]
        if any(ctx.pragmas.is_cache_pure(line) for line in lines):
            return True
        return _uses_sweep_cache(func)

    # ------------------------------------------------------------------
    def _check_body(
        self, ctx, func: _FuncDef, mutables: Set[str]
    ) -> Iterator[Finding]:
        local_names = function_local_names(func)
        ambient = mutables - local_names
        prefix = f"cached function '{func.name}'"
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name in ("os.getenv", "getenv"):
                    yield self.finding(
                        ctx,
                        node,
                        f"{prefix} reads the environment via {name}(); "
                        f"pass the value as an argument instead",
                        symbol=func.name,
                    )
                    continue
                reason = classify_nondeterministic_call(node)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{prefix} is impure: {reason}",
                        symbol=func.name,
                    )
            elif isinstance(node, ast.Attribute):
                if node.attr == "environ" and dotted_name(node) == "os.environ":
                    yield self.finding(
                        ctx,
                        node,
                        f"{prefix} reads os.environ; pass the value as an "
                        f"argument instead",
                        symbol=func.name,
                    )
            elif isinstance(node, ast.Name):
                if (
                    isinstance(node.ctx, ast.Load)
                    and node.id in ambient
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{prefix} reads module-level mutable '{node.id}'; "
                        f"cached results go stale when it changes",
                        symbol=func.name,
                    )
