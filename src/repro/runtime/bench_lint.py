"""The ``BENCH_lint.json`` harness: repro-lint wall-time gate.

repro-lint runs as a blocking CI job, so its wall time is a direct tax
on every push.  This harness times two full runs over ``src/repro``
against the committed baseline:

- **serial** — ``jobs=1``, the single-process reference;
- **parallel** — ``jobs=None`` (auto), file chunks fanned out through
  :func:`repro.runtime.parallel.map_parallel`.

Both arms must produce the *same* report (``parity``) — parallel lint
is only a scheduling change, never an analysis change — and the run
must be clean modulo the baseline (``lint_clean``).  Wall times keep
the per-arm minimum over ``repeats`` so one scheduler blip does not
bias the series; the regression gate (schema ``bench-lint/2``, bumped
when the vectorization pass RPL013-RPL016 joined the rule set and
reset the wall-time reference) lets them drift within the usual
relative tolerance but fails CI on a real slowdown, e.g. a new rule
going accidentally quadratic.

Run via ``python -m repro bench-lint`` or the benchmarks suite.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Optional

from repro.quality import BASELINE_FILENAME, Baseline, LintEngine
from repro.runtime.bench import _gc_quiet

#: What the harness lints: the package itself, like the CI job does.
DEFAULT_TARGET = Path("src/repro")


def run_lint_bench(
    output_path: Optional[Path] = None,
    target: Optional[Path] = None,
    repeats: int = 2,
) -> dict:
    """Time serial vs parallel lint; optionally write the artifact."""
    target = Path(target) if target is not None else DEFAULT_TARGET
    root = Path.cwd()
    baseline_path = root / BASELINE_FILENAME
    baseline = (
        Baseline.load(baseline_path)
        if baseline_path.is_file()
        else Baseline()
    )

    serial_wall = float("inf")
    parallel_wall = float("inf")
    serial_report = parallel_report = None
    with _gc_quiet():
        for _ in range(repeats):
            engine = LintEngine(baseline=baseline)
            start = time.perf_counter()
            serial_report = engine.lint_paths([target], root=root, jobs=1)
            serial_wall = min(serial_wall, time.perf_counter() - start)

            engine = LintEngine(baseline=baseline)
            start = time.perf_counter()
            parallel_report = engine.lint_paths([target], root=root)
            parallel_wall = min(parallel_wall, time.perf_counter() - start)

    assert serial_report is not None and parallel_report is not None
    parity = serial_report.to_json() == parallel_report.to_json()
    report = {
        "schema": "bench-lint/2",
        "python": platform.python_version(),
        "generated_unix": time.time(),
        "target": target.as_posix(),
        "repeats": repeats,
        "files_checked": serial_report.files_checked,
        "findings": len(serial_report.findings),
        "baselined": len(serial_report.baselined),
        "suppressed": serial_report.suppressed,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup_parallel_over_serial": serial_wall / parallel_wall,
        "parity": parity,
        "lint_clean": serial_report.exit_code == 0,
    }

    if output_path is not None:
        output_path = Path(output_path)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report
