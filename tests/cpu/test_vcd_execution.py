"""Tests for VCD execution recording."""


from repro.cpu import CortexM0, MemoryMap, assemble
from repro.cpu.trace import record_execution_vcd


def _loaded_cpu(source: str) -> CortexM0:
    cpu = CortexM0(MemoryMap.embedded_system())
    cpu.load_program(assemble(source))
    return cpu


class TestExecutionVcd:
    def test_dump_contains_signals_and_times(self):
        cpu = _loaded_cpu(
            """
_start:
    movs r0, #1
    movs r0, #2
    movs r1, #3
    bkpt #0
"""
        )
        vcd = record_execution_vcd(cpu)
        assert "$var wire 32" in vcd
        assert " pc " in vcd
        assert "#1" in vcd  # time marker after the first instruction
        assert cpu.halted

    def test_register_changes_recorded(self):
        cpu = _loaded_cpu(
            """
_start:
    movs r0, #5
    bkpt #0
"""
        )
        vcd = record_execution_vcd(cpu, registers=(0,))
        # r0 transitions to binary 101.
        assert "b101 " in vcd

    def test_unchanged_registers_not_redumped(self):
        cpu = _loaded_cpu(
            """
_start:
    nop
    nop
    nop
    bkpt #0
"""
        )
        vcd = record_execution_vcd(cpu, registers=(4,))
        # r4 never changes from 0, so only declarations appear.
        assert vcd.count("b") <= vcd.count("$var") + 1

    def test_max_steps_cap(self):
        cpu = _loaded_cpu(
            """
_start:
loop:
    b loop
"""
        )
        record_execution_vcd(cpu, max_steps=25)
        assert not cpu.halted
        assert cpu.stats.instructions == 25

    def test_pc_advances_in_dump(self):
        cpu = _loaded_cpu(
            """
_start:
    nop
    nop
    bkpt #0
"""
        )
        vcd = record_execution_vcd(cpu, registers=(15,))
        assert "b10 " in vcd  # pc = 2 after first nop
        assert "b100 " in vcd  # pc = 4
