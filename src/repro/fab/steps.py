"""Process-step primitives for fabrication flows.

The paper classifies every fabrication step into one of six *process areas*
(Sec. II-C): dry etch, lithography, metallization, metrology, wet etch, and
deposition.  Each step carries an energy cost in kWh per 300 mm wafer,
derived from the per-area energy data in :mod:`repro.fab.energy_data`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class ProcessArea(enum.Enum):
    """The six process areas used to classify fabrication steps.

    Matches the row ordering of the step-count matrix in Equation 4 of the
    paper (lithography, dry etch, wet etch, metallization, deposition,
    metrology).
    """

    LITHOGRAPHY = "lithography"
    DRY_ETCH = "dry_etch"
    WET_ETCH = "wet_etch"
    METALLIZATION = "metallization"
    DEPOSITION = "deposition"
    METROLOGY = "metrology"

    @classmethod
    def ordered(cls) -> "tuple[ProcessArea, ...]":
        """Canonical row order for step-count matrices (Equation 4)."""
        return (
            cls.LITHOGRAPHY,
            cls.DRY_ETCH,
            cls.WET_ETCH,
            cls.METALLIZATION,
            cls.DEPOSITION,
            cls.METROLOGY,
        )


class LithographyMethod(enum.Enum):
    """Patterning method for a layer; determines fabrication energy."""

    EUV = "euv"
    IMMERSION_193 = "193i"
    IMMERSION_193_SADP = "193i_sadp"
    NONE = "none"


@dataclass(frozen=True)
class ProcessStep:
    """A single fabrication step.

    Attributes:
        name: Human-readable step name (e.g. ``"CNT deposition"``).
        area: The :class:`ProcessArea` this step belongs to.
        energy_kwh: Electrical energy per 300 mm wafer for this step.
        lithography: Patterning method, if the step is a lithography step.
        comment: Optional provenance note.
    """

    name: str
    area: ProcessArea
    energy_kwh: float
    lithography: LithographyMethod = LithographyMethod.NONE
    comment: str = ""

    def __post_init__(self) -> None:
        if self.energy_kwh < 0:
            raise ValueError(
                f"step {self.name!r}: energy must be non-negative, "
                f"got {self.energy_kwh}"
            )


@dataclass
class StepCount:
    """Number of times each process area is used, with its total energy.

    This mirrors one column of the Equation 4 matrix product: the number of
    times a process flow invokes each process area, and the energy that
    area contributes.
    """

    counts: "dict[ProcessArea, int]" = field(default_factory=dict)
    energies_kwh: "dict[ProcessArea, float]" = field(default_factory=dict)

    def add(self, step: ProcessStep) -> None:
        """Accumulate one step into the per-area tallies."""
        self.counts[step.area] = self.counts.get(step.area, 0) + 1
        self.energies_kwh[step.area] = (
            self.energies_kwh.get(step.area, 0.0) + step.energy_kwh
        )

    def count(self, area: ProcessArea) -> int:
        return self.counts.get(area, 0)

    def energy(self, area: ProcessArea) -> float:
        return self.energies_kwh.get(area, 0.0)

    @property
    def total_energy_kwh(self) -> float:
        # Summed in fixed area order so the float total is bit-stable
        # regardless of step-recording order (RPL012).
        return sum(
            self.energies_kwh[area]
            for area in sorted(self.energies_kwh, key=lambda a: a.value)
        )

    @property
    def total_steps(self) -> int:
        return sum(self.counts.values())


def per_step_energy(
    total_energy_kwh: float, n_steps: int, name: str = "process area"
) -> float:
    """Energy of a single step given a process area's total and step count.

    Implements the paper's estimation rule (Sec. II-C): "we can estimate
    the fabrication energy of each process step ... by dividing the total
    fabrication energy incurred by that process area by the number of times
    that process area is used."

    >>> per_step_energy(4.0, 3)  # deposition example from the paper
    1.3333333333333333
    """
    if n_steps <= 0:
        raise ValueError(f"{name}: step count must be positive, got {n_steps}")
    if np.any(total_energy_kwh < 0):
        raise ValueError(
            f"{name}: total energy must be non-negative, got {total_energy_kwh}"
        )
    return total_energy_kwh / n_steps
