"""Source waveforms and simulated-waveform post-processing."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError

#: numpy renamed trapz -> trapezoid in 2.0; support both.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


# ---------------------------------------------------------------------------
# Drive waveforms (inputs)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Dc:
    """A constant drive value."""

    value: float

    def at(self, t: float) -> float:
        return self.value

    def at_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at` over an array of sample times."""
        t = np.asarray(t, dtype=float)
        return np.full(t.shape, self.value)


@dataclass(frozen=True)
class Pulse:
    """SPICE-style periodic pulse.

    Attributes mirror the SPICE PULSE source: initial value, pulsed value,
    delay, rise time, fall time, pulse width, and period (0 = one-shot).
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 0.0

    def __post_init__(self) -> None:
        if self.rise <= 0 or self.fall <= 0:
            raise AnalysisError("rise/fall times must be > 0")
        if self.width < 0:
            raise AnalysisError("pulse width must be >= 0")

    def at(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        local = t - self.delay
        if self.period > 0:
            local = local % self.period
        if local < self.rise:
            return self.v1 + (self.v2 - self.v1) * local / self.rise
        local -= self.rise
        if local < self.width:
            return self.v2
        local -= self.width
        if local < self.fall:
            return self.v2 + (self.v1 - self.v2) * local / self.fall
        return self.v1

    def at_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at` over an array of sample times.

        The branch expressions mirror the scalar method exactly, so the
        two paths agree to the last float64 bit (``np.select`` takes
        the first true condition, like the scalar if-chain).
        """
        t = np.asarray(t, dtype=float)
        local = t - self.delay
        if self.period > 0:
            local = np.mod(local, self.period)
        rise_seg = self.v1 + (self.v2 - self.v1) * local / self.rise
        after_rise = local - self.rise
        after_width = after_rise - self.width
        fall_seg = self.v2 + (self.v1 - self.v2) * after_width / self.fall
        return np.select(
            [
                t < self.delay,
                local < self.rise,
                after_rise < self.width,
                after_width < self.fall,
            ],
            [
                np.full(t.shape, self.v1),
                rise_seg,
                np.full(t.shape, self.v2),
                fall_seg,
            ],
            default=self.v1,
        )


@dataclass(frozen=True)
class PieceWiseLinear:
    """SPICE-style PWL source: linear interpolation through (t, v) points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise AnalysisError("PWL needs at least one point")
        times = [t for t, _v in self.points]
        if times != sorted(times):
            raise AnalysisError("PWL times must be non-decreasing")

    def at(self, t: float) -> float:
        times = [p[0] for p in self.points]
        if t <= times[0]:
            return self.points[0][1]
        if t >= times[-1]:
            return self.points[-1][1]
        idx = bisect.bisect_right(times, t)
        t0, v0 = self.points[idx - 1]
        t1, v1 = self.points[idx]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def at_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at` over an array of sample times.

        Strictly increasing breakpoints vectorize the scalar bisect +
        interpolation arithmetic term-for-term (bit-exact); duplicate
        times (step discontinuities) have bisect-direction semantics a
        plain interpolation cannot express, so that case evaluates
        through the scalar method.
        """
        t = np.asarray(t, dtype=float)
        raw_times = [p[0] for p in self.points]
        if len(raw_times) < 2 or any(
            a >= b for a, b in zip(raw_times, raw_times[1:])
        ):
            return np.array(
                [self.at(ti) for ti in t.ravel()]
            ).reshape(t.shape)
        times = np.array(raw_times)
        values = np.array([p[1] for p in self.points])
        idx = np.clip(
            np.searchsorted(times, t, side="right"), 1, times.size - 1
        )
        t0, v0 = times[idx - 1], values[idx - 1]
        t1, v1 = times[idx], values[idx]
        interior = v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return np.where(
            t <= times[0],
            values[0],
            np.where(t >= times[-1], values[-1], interior),
        )


# ---------------------------------------------------------------------------
# Simulated waveforms (outputs)
# ---------------------------------------------------------------------------
class Waveform:
    """A sampled signal: times plus values, with measurement helpers."""

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.times.shape != self.values.shape:
            raise AnalysisError("times and values must have the same length")
        if self.times.size < 1:
            raise AnalysisError("waveform must contain at least one sample")

    def at(self, t: float) -> float:
        """Linearly interpolated value at time ``t``."""
        return float(np.interp(t, self.times, self.values))

    def final(self) -> float:
        return float(self.values[-1])

    def crossings(self, threshold: float, rising: bool = True) -> List[float]:
        """Times at which the signal crosses ``threshold``."""
        v = self.values - threshold
        out: List[float] = []
        for i in range(1, v.size):
            a, b = v[i - 1], v[i]
            crossed = (a < 0 <= b) if rising else (a > 0 >= b)
            if crossed and a != b:
                frac = -a / (b - a)
                out.append(
                    float(
                        self.times[i - 1]
                        + frac * (self.times[i] - self.times[i - 1])
                    )
                )
        return out

    def first_crossing(self, threshold: float, rising: bool = True) -> float:
        xs = self.crossings(threshold, rising)
        if not xs:
            direction = "rising" if rising else "falling"
            raise AnalysisError(
                f"signal never crosses {threshold} ({direction})"
            )
        return xs[0]

    def settle_value(self, fraction: float = 0.1) -> float:
        """Mean of the last ``fraction`` of samples."""
        if not (0.0 < fraction <= 1.0):
            raise AnalysisError("fraction must be in (0, 1]")
        n = max(1, int(self.values.size * fraction))
        return float(self.values[-n:].mean())

    def minimum(self) -> float:
        return float(self.values.min())

    def maximum(self) -> float:
        return float(self.values.max())

    def integral(self) -> float:
        """Trapezoidal integral of the signal over time."""
        return float(_trapezoid(self.values, self.times))


def delay_between(
    cause: Waveform,
    effect: Waveform,
    cause_threshold: float,
    effect_threshold: float,
    cause_rising: bool = True,
    effect_rising: bool = True,
) -> float:
    """Propagation delay: effect crossing minus cause crossing."""
    t0 = cause.first_crossing(cause_threshold, cause_rising)
    xs = [t for t in effect.crossings(effect_threshold, effect_rising) if t >= t0]
    if not xs:
        raise AnalysisError("effect never crosses threshold after cause")
    return xs[0] - t0
