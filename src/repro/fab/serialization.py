"""Process-flow serialization: flows to/from JSON.

The paper's conclusion invites analysis of "new materials and
processes"; this module lets users define a fabrication flow as a JSON
document (or dump the built-in flows for editing) and load it back into
a fully functional :class:`~repro.fab.flow.ProcessFlow` — without
writing Python.

Schema::

    {
      "name": "my-process",
      "wafer_diameter_mm": 300.0,
      "segments": [
        {"name": "FEOL", "lumped_energy_kwh": 436.0},
        {"name": "M1/V0 pair",
         "steps": [
            {"name": "via litho", "area": "lithography",
             "energy_kwh": 8.43, "lithography": "euv"},
            ...
         ]}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import ProcessFlowError
from repro.fab.flow import FlowSegment, ProcessFlow
from repro.fab.steps import LithographyMethod, ProcessArea, ProcessStep


def flow_to_dict(flow: ProcessFlow) -> Dict[str, Any]:
    """Serialize a flow to plain JSON-compatible data."""
    segments = []
    for segment in flow.segments:
        entry: Dict[str, Any] = {"name": segment.name}
        if segment.lumped_energy_kwh:
            entry["lumped_energy_kwh"] = segment.lumped_energy_kwh
        if segment.steps:
            entry["steps"] = [
                {
                    "name": step.name,
                    "area": step.area.value,
                    "energy_kwh": step.energy_kwh,
                    **(
                        {"lithography": step.lithography.value}
                        if step.lithography is not LithographyMethod.NONE
                        else {}
                    ),
                    **({"comment": step.comment} if step.comment else {}),
                }
                for step in segment.steps
            ]
        segments.append(entry)
    return {
        "name": flow.name,
        "wafer_diameter_mm": flow.wafer_diameter_mm,
        "segments": segments,
    }


def flow_from_dict(data: Dict[str, Any]) -> ProcessFlow:
    """Deserialize a flow; validates areas/lithography names."""
    try:
        name = data["name"]
        segments = data["segments"]
    except (KeyError, TypeError) as exc:
        raise ProcessFlowError(f"flow document missing field: {exc}") from exc
    flow = ProcessFlow(
        name, wafer_diameter_mm=float(data.get("wafer_diameter_mm", 300.0))
    )
    if not isinstance(segments, list):
        raise ProcessFlowError("'segments' must be a list")
    for entry in segments:
        steps = []
        for raw in entry.get("steps", []):
            try:
                area = ProcessArea(raw["area"])
            except ValueError:
                valid = sorted(a.value for a in ProcessArea)
                raise ProcessFlowError(
                    f"unknown process area {raw.get('area')!r}; "
                    f"valid: {valid}"
                ) from None
            litho = LithographyMethod(raw.get("lithography", "none"))
            steps.append(
                ProcessStep(
                    name=raw["name"],
                    area=area,
                    energy_kwh=float(raw["energy_kwh"]),
                    lithography=litho,
                    comment=raw.get("comment", ""),
                )
            )
        flow.add_segment(
            FlowSegment(
                name=entry["name"],
                steps=steps,
                lumped_energy_kwh=float(entry.get("lumped_energy_kwh", 0.0)),
            )
        )
    return flow


def dump_flow(flow: ProcessFlow, path) -> None:
    """Write a flow as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(flow_to_dict(flow), handle, indent=2)
        handle.write("\n")


def load_flow(path) -> ProcessFlow:
    """Load a flow from a JSON file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ProcessFlowError(f"{path}: invalid JSON: {exc}") from exc
    return flow_from_dict(data)
