"""Carbon self-telemetry: the service's own operational gCO2e, live.

The paper's operational-carbon model (:mod:`repro.core.operational`,
Equations 6-8) integrates grid carbon intensity against a power draw
over a usage window.  This module dogfoods that exact model on the
running process: sampled process CPU-seconds (``time.process_time``)
drive the dynamic term of an :class:`~repro.core.operational
.OperationalPower`, wall time drives the static term, and the energy
of each sampling interval is charged at the configured
:class:`~repro.core.carbon_intensity.CarbonIntensity` — so a
time-varying grid profile prices the server's evening traffic
differently from its 3 am idle, exactly as CI_use(t) does in Fig. 5.

Each :meth:`CarbonSelfTelemetry.sample` publishes gauges on the
metrics registry:

- ``serve.carbon.operational_gco2e`` — cumulative operational carbon;
- ``serve.carbon.energy_kwh``       — cumulative electrical energy;
- ``serve.carbon.power_w``          — mean draw over the last interval;
- ``serve.carbon.cpu_seconds_total``— process CPU time consumed;
- ``serve.carbon.utilization``      — CPU-seconds per wall-second;
- ``serve.carbon.ci_gco2e_per_kwh`` — the CI the last interval paid.

The default power coefficients are deliberately modest (one busy
server core plus its idle share); they are knobs, not measurements —
the point is the *accounting structure*, reported with the same units
and model as the paper's own numbers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro import units
from repro.core.carbon_intensity import (
    CarbonIntensity,
    ConstantCarbonIntensity,
)
from repro.core.operational import OperationalPower

__all__ = [
    "CarbonSelfTelemetry",
    "DEFAULT_ACTIVE_POWER_W",
    "DEFAULT_IDLE_POWER_W",
]

#: Incremental draw attributed to one fully-busy core, in watts.
DEFAULT_ACTIVE_POWER_W = 12.0

#: The process's share of platform idle draw, in watts.
DEFAULT_IDLE_POWER_W = 2.0


class CarbonSelfTelemetry:
    """Accumulate the process's operational carbon between samples."""

    def __init__(
        self,
        ci: Optional[CarbonIntensity] = None,
        active_power_w: float = DEFAULT_ACTIVE_POWER_W,
        idle_power_w: float = DEFAULT_IDLE_POWER_W,
        registry: Optional[Any] = None,
        cpu_time: Callable[[], float] = time.process_time,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.ci = ci if ci is not None else ConstantCarbonIntensity(
            380.0, name="us"
        )
        #: Eq. 6 power split: static (always-on) + dynamic (per busy core).
        self.power = OperationalPower(
            static_w=idle_power_w, core_dynamic_w=active_power_w
        )
        self._registry = registry
        self._cpu_time = cpu_time
        self._clock = clock
        self._lock = threading.Lock()
        self._start_wall = clock()
        self._last_wall = self._start_wall
        self._last_cpu = cpu_time()
        self._total_cpu_s = 0.0
        self._total_energy_j = 0.0
        self._total_gco2e = 0.0
        self._last_power_w = self.power.static_w
        self._last_ci = self.ci.at(0.0)

    def sample(self) -> Dict[str, float]:
        """Advance the accounting to now; publish and return the state.

        Energy over the interval follows Equation 6's shape:
        ``static_w`` applies to the whole wall interval,
        ``core_dynamic_w`` to the CPU-busy fraction of it.  Carbon
        charges that energy at ``CI(t)`` evaluated at the interval
        midpoint relative to telemetry start, so day-periodic profiles
        (:class:`~repro.core.carbon_intensity.DailyWindowProfile`)
        price each interval by its own hour.
        """
        now = self._clock()
        cpu = self._cpu_time()
        with self._lock:
            wall_dt = max(0.0, now - self._last_wall)
            cpu_dt = max(0.0, cpu - self._last_cpu)
            self._last_wall = now
            self._last_cpu = cpu
            energy_j = (
                self.power.static_w * wall_dt
                + self.power.core_dynamic_w * cpu_dt
            )
            elapsed_mid = (
                now - self._start_wall - wall_dt / 2.0
            )
            ci_g_per_kwh = self.ci.at(max(0.0, elapsed_mid))
            gco2e = ci_g_per_kwh * energy_j / units.KWH
            self._total_cpu_s += cpu_dt
            self._total_energy_j += energy_j
            self._total_gco2e += gco2e
            self._last_power_w = (
                energy_j / wall_dt if wall_dt > 0 else self.power.static_w
            )
            self._last_ci = ci_g_per_kwh
            state = self._state_locked(now)
        if self._registry is not None:
            gauges = self._registry
            gauges.gauge("serve.carbon.operational_gco2e").set(
                state["operational_gco2e"]
            )
            gauges.gauge("serve.carbon.energy_kwh").set(
                state["energy_kwh"]
            )
            gauges.gauge("serve.carbon.power_w").set(state["power_w"])
            gauges.gauge("serve.carbon.cpu_seconds_total").set(
                state["cpu_seconds_total"]
            )
            gauges.gauge("serve.carbon.utilization").set(
                state["utilization"]
            )
            gauges.gauge("serve.carbon.ci_gco2e_per_kwh").set(
                state["ci_gco2e_per_kwh"]
            )
        return state

    def _state_locked(self, now: float) -> Dict[str, float]:
        elapsed = max(0.0, now - self._start_wall)
        return {
            "operational_gco2e": self._total_gco2e,
            "energy_kwh": self._total_energy_j / units.KWH,
            "power_w": self._last_power_w,
            "cpu_seconds_total": self._total_cpu_s,
            "utilization": (
                self._total_cpu_s / elapsed if elapsed > 0 else 0.0
            ),
            "ci_gco2e_per_kwh": self._last_ci,
            "elapsed_s": elapsed,
        }
