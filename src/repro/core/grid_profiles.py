"""Time-of-day carbon-intensity profiles and usage-window analysis.

Equation 1 integrates CI_use(t) * P(t); the paper collapses it with an
8-10 pm indicator window and the *average* CI over that window (Eq. 8).
This module supplies day-periodic CI profiles with realistic shapes —
solar-rich grids dip at noon, evening ramps peak around 7-9 pm — and the
analysis the formulation invites: *which 2-hour window minimizes
operational carbon?*
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.carbon_intensity import DailyWindowProfile
from repro.errors import CarbonModelError


def us_daily_profile() -> DailyWindowProfile:
    """A stylized US-grid day: ~380 g/kWh mean, evening peak.

    Overnight baseload is gas/nuclear-heavy (moderate), midday solar
    lowers intensity, and the 6-10 pm ramp (gas peakers) raises it.
    """
    return DailyWindowProfile(
        [
            (0.0, 390.0),
            (6.0, 370.0),
            (10.0, 330.0),
            (15.0, 360.0),
            (18.0, 450.0),
            (22.0, 410.0),
        ],
        name="us-daily",
    )


def solar_heavy_daily_profile() -> DailyWindowProfile:
    """A high-renewables grid: very clean at midday, dirty at night."""
    return DailyWindowProfile(
        [
            (0.0, 320.0),
            (7.0, 180.0),
            (10.0, 60.0),
            (16.0, 220.0),
            (19.0, 420.0),
            (23.0, 340.0),
        ],
        name="solar-heavy",
    )


def coal_daily_profile() -> DailyWindowProfile:
    """A coal-dominated grid: uniformly dirty, mild midday dip."""
    return DailyWindowProfile(
        [(0.0, 830.0), (9.0, 790.0), (17.0, 850.0), (22.0, 840.0)],
        name="coal-daily",
    )


DAILY_PROFILES: Dict[str, DailyWindowProfile] = {}


def get_daily_profile(name: str) -> DailyWindowProfile:
    """Look up a named daily profile."""
    profiles = {
        "us": us_daily_profile,
        "solar-heavy": solar_heavy_daily_profile,
        "coal": coal_daily_profile,
    }
    if name not in profiles:
        raise CarbonModelError(
            f"unknown daily profile {name!r}; options: {sorted(profiles)}"
        )
    return profiles[name]()


def best_usage_window(
    profile: DailyWindowProfile,
    duration_hours: float = 2.0,
    step_hours: float = 0.5,
) -> Tuple[Tuple[float, float], float]:
    """The daily window of the given duration with the lowest mean CI.

    Returns ((start_hour, end_hour), mean_ci).  This is the scheduling
    lever Eq. 8 exposes: for a fixed 2 h/day of use, *when* those hours
    fall scales C_operational directly.
    """
    if not (0.0 < duration_hours <= 24.0):
        raise CarbonModelError("duration must be in (0, 24] hours")
    if step_hours <= 0:
        raise CarbonModelError("step must be positive")
    best_window = None
    best_ci = float("inf")
    start = 0.0
    while start + duration_hours <= 24.0 + 1e-9:
        end = min(start + duration_hours, 24.0)
        ci = profile.mean_over_window(start, end)
        if ci < best_ci:
            best_ci = ci
            best_window = (start, end)
        start += step_hours
    assert best_window is not None
    return best_window, best_ci


def window_sweep(
    profile: DailyWindowProfile,
    duration_hours: float = 2.0,
    step_hours: float = 1.0,
) -> List[Tuple[float, float]]:
    """(start_hour, mean_ci) for every candidate window — the full
    scheduling trade-off curve."""
    out: List[Tuple[float, float]] = []
    start = 0.0
    while start + duration_hours <= 24.0 + 1e-9:
        ci = profile.mean_over_window(
            start, min(start + duration_hours, 24.0)
        )
        out.append((start, ci))
        start += step_hours
    return out


def scheduling_benefit(
    profile: DailyWindowProfile,
    baseline_window: Tuple[float, float] = (20.0, 22.0),
    duration_hours: float = 2.0,
) -> float:
    """Operational-carbon reduction factor from optimal scheduling.

    Ratio of the baseline window's mean CI (the paper's 8-10 pm) to the
    best window's — e.g. 1.5 means scheduling saves 33 % of C_op.
    """
    baseline_ci = profile.mean_over_window(*baseline_window)
    _window, best_ci = best_usage_window(profile, duration_hours)
    if best_ci <= 0:
        return float("inf")
    return baseline_ci / best_ci
