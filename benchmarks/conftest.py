"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes its rendered text to ``benchmarks/output/<name>.txt`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
reproduced artifacts on disk.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def case_study():
    """The fully built case study, shared across benchmarks."""
    from repro.analysis import build_case_study

    return build_case_study()


@pytest.fixture(scope="session")
def artifact_writer(output_dir):
    def write(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo to the terminal so `pytest -s` shows the artifact.
        print(f"\n{text}\n[written to {path}]")

    return write
