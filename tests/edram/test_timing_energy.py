"""Tests for eDRAM timing closure and the Table II energy calibration."""

import pytest

from repro.edram.array import MemoryMacro
from repro.edram.bitcell import m3d_bitcell, si_bitcell
from repro.edram.energy import (
    AccessProfile,
    EdramEnergyModel,
    system_memory_energy_per_cycle_j,
)
from repro.edram.subarray import SubArrayDesign
from repro.edram.timing import (
    characterize,
    simulate_read,
    simulate_read_zero_disturb,
    simulate_write,
)


@pytest.fixture(scope="module")
def si_model():
    return EdramEnergyModel(MemoryMacro.for_cell(si_bitcell()))


@pytest.fixture(scope="module")
def m3d_model():
    return EdramEnergyModel(MemoryMacro.for_cell(m3d_bitcell()))


@pytest.fixture(scope="module")
def si_timing():
    return characterize(SubArrayDesign(si_bitcell()))


@pytest.fixture(scope="module")
def m3d_timing():
    return characterize(SubArrayDesign(m3d_bitcell()))


class TestTimingClosure:
    def test_both_meet_500mhz(self, si_timing, m3d_timing):
        """Single-cycle access at T_CLK = 2 ns (Sec. III-B step 2)."""
        assert si_timing.meets_clock(500e6)
        assert m3d_timing.meets_clock(500e6)

    def test_m3d_read_faster_than_si(self, si_timing, m3d_timing):
        """Read delay limited by high CNFET I_EFF (Sec. III-A)."""
        assert m3d_timing.read_delay_s < si_timing.read_delay_s

    def test_m3d_write_slower_but_within_budget(self, si_timing, m3d_timing):
        """IGZO's low mobility costs write time; overdrive keeps it in
        the cycle budget."""
        assert m3d_timing.write_delay_s > si_timing.write_delay_s
        assert m3d_timing.write_delay_s < 1.6e-9

    def test_write_waveform_reaches_full_level(self):
        _delay, sn = simulate_write(SubArrayDesign(m3d_bitcell()))
        assert sn.settle_value(0.05) > 0.9 * 0.7

    def test_read_discharges_bitline(self):
        _delay, rbl = simulate_read(SubArrayDesign(m3d_bitcell()))
        assert rbl.final() < 0.2

    def test_read_zero_does_not_disturb(self):
        """Reading a stored '0' must leave the RBL near VDD."""
        for cell in (si_bitcell(), m3d_bitcell()):
            droop = simulate_read_zero_disturb(SubArrayDesign(cell))
            assert droop < 0.07  # < 10% of VDD

    def test_meets_clock_fraction(self, si_timing):
        assert si_timing.meets_clock(500e6, fraction=0.8)
        assert not si_timing.meets_clock(5e12)


class TestAccessProfile:
    def test_totals(self):
        p = AccessProfile(1.0, 0.25, 0.10)
        assert p.reads_per_cycle == pytest.approx(1.25)
        assert p.accesses_per_cycle == pytest.approx(1.35)

    def test_validation(self):
        from repro.errors import CarbonModelError

        with pytest.raises(CarbonModelError):
            AccessProfile(-1.0)


class TestEnergyCalibration:
    """The headline Table II rows."""

    def test_si_energy_per_cycle_is_18pj(self, si_model):
        e = system_memory_energy_per_cycle_j(
            si_model, si_model, AccessProfile(), 500e6
        )
        assert e == pytest.approx(18.0e-12, rel=0.01)

    def test_m3d_energy_per_cycle_is_15_5pj(self, m3d_model):
        e = system_memory_energy_per_cycle_j(
            m3d_model, m3d_model, AccessProfile(), 500e6
        )
        assert e == pytest.approx(15.5e-12, rel=0.01)

    def test_m3d_bus_energy_smaller(self, si_model, m3d_model):
        """The energy win comes from the smaller macro: shorter global
        wires (the memory-wall argument of the introduction)."""
        assert m3d_model.bus_energy_j() < 0.7 * si_model.bus_energy_j()

    def test_si_pays_refresh(self, si_model, m3d_model):
        assert si_model.refresh_power_w() > 1e-6
        assert m3d_model.refresh_power_w() < 1e-9

    def test_breakdown_sums_to_read_energy(self, si_model):
        parts = si_model.breakdown_per_access_j()
        assert sum(parts.values()) == pytest.approx(si_model.read_energy_j())

    def test_write_costs_more_than_read(self, m3d_model):
        """The boosted WWL swing makes writes slightly pricier."""
        assert m3d_model.write_energy_j() > m3d_model.read_energy_j()

    def test_energy_scales_with_access_rate(self, si_model):
        lo = si_model.energy_per_cycle_j(0.5, 0.1, 500e6)
        hi = si_model.energy_per_cycle_j(1.0, 0.2, 500e6)
        assert hi > lo

    def test_clock_validation(self, si_model):
        from repro.errors import CarbonModelError

        with pytest.raises(CarbonModelError):
            si_model.energy_per_cycle_j(1.0, 0.1, 0.0)

    def test_leakage_positive_but_small(self, si_model):
        leak = si_model.leakage_power_w()
        assert 0 < leak < 1e-4
