"""Tail-sampled flight recorder: the last interesting requests, in full.

Aggregate metrics say *that* p99 regressed; a flight recorder says
*which requests* did it.  :class:`FlightRecorder` keeps three bounded
views of recent traffic, updated in O(log k) per request:

- **recent** — a ring of the last ``capacity`` requests, whatever they
  were (head-based context);
- **errors** — its own ring of the last ``capacity`` requests with
  status >= 400, so a burst of successes can never evict the failure
  you are hunting (tail-based error retention);
- **slowest** — a min-heap of the ``slowest_k`` highest-latency
  requests seen since the last dump reset, so the tail percentile's
  concrete victims survive no matter how much fast traffic follows.

This is tail-based sampling in the tracing sense: the keep/drop
decision is made *after* the request finishes, when its status and
latency are known, instead of up-front by a coin flip that almost
always discards the interesting 0.1 %.

The recorder never reads a clock — the server passes completion
timestamps in — so it stays inert under the repo's determinism lint
and is trivially clock-injectable in tests.  All mutable state is
guarded by one lock; records are normalized to a fixed key order so
dumps are deterministic and byte-stable for equal inputs.

Dumps surface two ways: ``GET /debugz`` returns one, and SIGUSR2 makes
the server write one to disk without stopping (the classic "what is it
doing *right now*" escape hatch).
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["FlightRecorder", "DUMP_SCHEMA"]

DUMP_SCHEMA = "flight-recorder/1"

#: Fixed record key order (dump determinism is asserted by tests).
_RECORD_KEYS = (
    "request_id",
    "ts",
    "method",
    "target",
    "status",
    "latency_ms",
    "queue_depth",
    "bytes_in",
    "trace",
)


class FlightRecorder:
    """Bounded, tail-sampled retention of completed-request records."""

    def __init__(self, capacity: int = 256, slowest_k: int = 16) -> None:
        if capacity < 1 or slowest_k < 1:
            raise ValueError("capacity and slowest_k must be >= 1")
        self.capacity = capacity
        self.slowest_k = slowest_k
        self._lock = threading.Lock()
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._errors: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        # min-heap of (latency_ms, seq, record): the smallest of the
        # retained slowest is always on top, ready to be displaced.
        self._slowest: List[Tuple[float, int, Dict[str, Any]]] = []
        self._seq = 0
        self._recorded = 0
        self._errors_total = 0

    def record(
        self,
        request_id: str,
        method: str,
        target: str,
        status: int,
        latency_s: float,
        ts: float,
        queue_depth: int = 0,
        bytes_in: int = 0,
        trace: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        """Admit one completed request to the tail-sampling views.

        ``ts`` is the caller-supplied completion timestamp (wall-clock
        seconds); ``trace`` is an optional list of per-phase timing
        dicts captured while serving the request.
        """
        entry = {
            "request_id": request_id,
            "ts": ts,
            "method": method,
            "target": target,
            "status": status,
            "latency_ms": round(latency_s * 1e3, 4),
            "queue_depth": queue_depth,
            "bytes_in": bytes_in,
            "trace": list(trace) if trace else [],
        }
        with self._lock:
            self._seq += 1
            self._recorded += 1
            self._recent.append(entry)
            if status >= 400:
                self._errors_total += 1
                self._errors.append(entry)
            item = (entry["latency_ms"], self._seq, entry)
            if len(self._slowest) < self.slowest_k:
                heapq.heappush(self._slowest, item)
            elif item[0] > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, item)

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    def dump(self) -> Dict[str, Any]:
        """Everything currently retained, deterministically ordered.

        ``recent`` and ``errors`` run oldest to newest; ``slowest``
        runs highest latency first (sequence number breaks ties, so
        equal inputs always dump byte-identically).
        """
        with self._lock:
            recent = [self._normalize(e) for e in self._recent]
            errors = [self._normalize(e) for e in self._errors]
            slowest = [
                self._normalize(entry)
                for _, _, entry in sorted(
                    self._slowest, key=lambda item: (-item[0], -item[1])
                )
            ]
            return {
                "schema": DUMP_SCHEMA,
                "capacity": self.capacity,
                "slowest_k": self.slowest_k,
                "recorded": self._recorded,
                "errors_total": self._errors_total,
                "recent": recent,
                "errors": errors,
                "slowest": slowest,
            }

    def reset(self) -> None:
        """Forget everything (counters included)."""
        with self._lock:
            self._recent.clear()
            self._errors.clear()
            self._slowest.clear()
            self._recorded = 0
            self._errors_total = 0

    @staticmethod
    def _normalize(entry: Dict[str, Any]) -> Dict[str, Any]:
        return {key: entry[key] for key in _RECORD_KEYS}
