"""Audit of ``# repro-lint:`` pragmas: find the stale and the broken.

A ``disable=`` pragma is a debt marker: it asserts "this line trips
rule X for a reason we accept".  When the flagged code is later fixed
or deleted, the pragma survives as dead weight — and worse, it will
silently swallow the *next* genuine finding on that line.  This module
re-runs the rule set with pragma suppression turned off and reports:

- **stale-disable** — a ``disable=RPLxxx`` naming a rule that produces
  no finding on that line (nothing left to suppress);
- **unknown-rule** — a ``disable=`` naming a rule id that is not in
  the registry (typo'd pragmas suppress nothing, forever);
- **orphan-cache-pure** — a ``cache-pure`` pragma on a line with no
  ``def`` (it opts nothing into RPL003 checking).

Run via ``repro lint --audit-pragmas``.  The audit is advisory by
default in the same way findings are: a non-empty audit exits 1 so CI
can gate on pragma hygiene.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.quality.engine import (
    FileContext,
    find_package_root,
    iter_python_files,
)
from repro.quality.pragmas import ALL_RULES, parse_pragmas
from repro.quality.rules import RULE_REGISTRY, Rule, default_rules

__all__ = [
    "PragmaAuditEntry",
    "audit_source",
    "audit_paths",
    "render_audit",
]


@dataclass(frozen=True)
class PragmaAuditEntry:
    """One pragma hygiene problem."""

    path: str
    line: int
    kind: str
    detail: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.kind}] {self.detail}"


def _comment_pragma_lines(source: str) -> Set[int]:
    """Lines whose ``repro-lint`` pragma lives in a real comment token.

    ``parse_pragmas`` scans raw text, so a pragma *example* inside a
    docstring parses like the real thing.  Such a line never suppresses
    anything meaningful, and auditing it would flag every documentation
    mention as stale — tokenization separates prose from comments.
    """
    lines: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and "repro-lint" in tok.string:
                lines.add(tok.start[0])
    except (tokenize.TokenError, IndentationError):
        pass
    return lines


def _def_lines(tree: ast.Module) -> Set[int]:
    """Lines holding a ``def`` header or one of its decorators."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lines.add(node.lineno)
            lines.update(d.lineno for d in node.decorator_list)
    return lines


def audit_source(
    source: str,
    path: Path = Path("<memory>.py"),
    rel_path: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[PragmaAuditEntry]:
    """Audit one file's pragmas against the unsuppressed finding set."""
    rel = rel_path if rel_path is not None else Path(path).name
    lines = source.splitlines()
    pragmas = parse_pragmas(lines)
    if not pragmas.disabled and not pragmas.cache_pure_lines:
        return []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return []  # RPL000 owns unparsable files; nothing to audit.
    ctx = FileContext(
        path=Path(path),
        rel_path=rel,
        parts=tuple(Path(rel).parts),
        source=source,
        lines=lines,
        tree=tree,
        pragmas=pragmas,
        package_root=(
            find_package_root(Path(path)) if Path(path).is_file() else None
        ),
    )
    active = list(rules) if rules is not None else default_rules()
    hit: Set[Tuple[int, str]] = set()
    for rule in active:
        for finding in rule.check(ctx):
            hit.add((finding.line, finding.rule))

    comment_lines = _comment_pragma_lines(source)
    entries: List[PragmaAuditEntry] = []
    for line, named in sorted(pragmas.disabled.items()):
        if line not in comment_lines:
            continue  # docstring example, not a live pragma
        for rule_id in sorted(named):
            if rule_id == ALL_RULES:
                if not any(ln == line for ln, _ in hit):
                    entries.append(
                        PragmaAuditEntry(
                            rel,
                            line,
                            "stale-disable",
                            "disable=all suppresses nothing on this line",
                        )
                    )
                continue
            if rule_id not in RULE_REGISTRY:
                entries.append(
                    PragmaAuditEntry(
                        rel,
                        line,
                        "unknown-rule",
                        f"disable={rule_id}: no such rule "
                        f"(known: {', '.join(sorted(RULE_REGISTRY))})",
                    )
                )
                continue
            if (line, rule_id) not in hit:
                entries.append(
                    PragmaAuditEntry(
                        rel,
                        line,
                        "stale-disable",
                        f"disable={rule_id} suppresses nothing: the rule "
                        f"no longer fires on this line",
                    )
                )
    def_lines = _def_lines(tree)
    for line in sorted(pragmas.cache_pure_lines):
        if line not in comment_lines:
            continue
        if line not in def_lines:
            entries.append(
                PragmaAuditEntry(
                    rel,
                    line,
                    "orphan-cache-pure",
                    "cache-pure pragma is not on a def line; it opts "
                    "nothing into RPL003",
                )
            )
    return entries


def audit_paths(
    paths: Iterable[Path], root: Optional[Path] = None
) -> Tuple[List[PragmaAuditEntry], int]:
    """Audit every Python file under ``paths``.

    Returns ``(entries, files_checked)``; paths are reported relative
    to ``root`` (default: the current directory).
    """
    base = Path(root).resolve() if root is not None else Path.cwd()
    entries: List[PragmaAuditEntry] = []
    files = 0
    for file_path in iter_python_files([Path(p) for p in paths]):
        files += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        resolved = file_path.resolve()
        try:
            rel = resolved.relative_to(base).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        entries.extend(audit_source(source, path=file_path, rel_path=rel))
    entries.sort(key=lambda e: (e.path, e.line, e.kind))
    return entries, files


def render_audit(
    entries: Sequence[PragmaAuditEntry], files_checked: int
) -> str:
    """Human-readable audit summary."""
    out = [e.render() for e in entries]
    out.append(
        f"repro-lint pragma audit: {len(entries)} problem(s) in "
        f"{files_checked} file(s)"
    )
    return "\n".join(out)
