"""Pragma parsing: disable lists, disable=all, cache-pure markers."""

import pytest

from repro.quality.pragmas import parse_pragmas


@pytest.mark.smoke
class TestParsePragmas:
    def test_disable_single_and_list(self):
        pragmas = parse_pragmas([
            "x = 1  # repro-lint: disable=RPL001",
            "y = 2  # repro-lint: disable=RPL002, RPL004",
            "z = 3",
        ])
        assert pragmas.is_disabled("RPL001", 1)
        assert not pragmas.is_disabled("RPL002", 1)
        assert pragmas.is_disabled("RPL002", 2)
        assert pragmas.is_disabled("RPL004", 2)
        assert not pragmas.is_disabled("RPL001", 3)

    def test_disable_all(self):
        pragmas = parse_pragmas(["x = 1  # repro-lint: disable=all"])
        assert pragmas.is_disabled("RPL001", 1)
        assert pragmas.is_disabled("RPL005", 1)

    def test_trailing_justification_ignored(self):
        pragmas = parse_pragmas([
            "x = 1  # repro-lint: disable=RPL004 - exact sentinel, by design",
        ])
        assert pragmas.is_disabled("RPL004", 1)
        assert not pragmas.is_disabled("by", 1)

    def test_cache_pure_marker(self):
        pragmas = parse_pragmas([
            "def f(x):  # repro-lint: cache-pure",
            "    return x",
        ])
        assert pragmas.is_cache_pure(1)
        assert not pragmas.is_cache_pure(2)

    def test_plain_comments_are_not_pragmas(self):
        pragmas = parse_pragmas([
            "# this mentions repro-lint without the pragma form",
            "x = 1  # disable=RPL001 (missing the repro-lint: prefix)",
        ])
        assert not pragmas.is_disabled("RPL001", 1)
        assert not pragmas.is_disabled("RPL001", 2)
