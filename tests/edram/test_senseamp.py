"""Tests for the latch-type sense amplifier."""

import pytest

from repro.edram.senseamp import (
    VDD,
    minimum_sense_differential,
    simulate_sense,
)
from repro.errors import AnalysisError


class TestSensing:
    def test_large_differential_resolves(self):
        result = simulate_sense(0.2)
        assert result.resolved_correctly
        assert result.final_outp_v == pytest.approx(VDD, abs=0.01)
        assert result.final_outn_v == pytest.approx(0.0, abs=0.01)

    def test_small_differential_still_resolves(self):
        assert simulate_sense(0.01).resolved_correctly

    def test_regeneration_slows_as_differential_shrinks(self):
        """The latch's exponential regeneration: smaller input seed,
        longer resolve time."""
        fast = simulate_sense(0.2).sense_delay_s
        slow = simulate_sense(0.01).sense_delay_s
        assert slow > fast

    def test_sense_delay_within_cycle_budget(self):
        """Sensing fits comfortably in the non-access cycle margin."""
        result = simulate_sense(0.05)
        assert result.sense_delay_s < 0.4e-9

    def test_validation(self):
        with pytest.raises(AnalysisError):
            simulate_sense(0.0)
        with pytest.raises(AnalysisError):
            simulate_sense(0.5, common_mode_v=0.1)


class TestSenseMargin:
    def test_minimum_differential_is_millivolts(self):
        margin = minimum_sense_differential(iterations=6)
        assert 0.0 < margin < 0.05

    def test_rbl_develops_far_more_than_margin(self):
        """The RBL discharge (full swing within the read window) dwarfs
        the SA's mV-scale requirement — consistent with the clean
        read-zero margins measured in test_timing_energy."""
        margin = minimum_sense_differential(iterations=5)
        # The M3D read pulls the RBL fully low (see timing tests);
        # even 10% of VDD exceeds the SA requirement many times over.
        assert 0.1 * VDD > 3 * margin

    def test_budget_validation(self):
        with pytest.raises(AnalysisError):
            minimum_sense_differential(budget_s=0.0)
