"""Experiment-level API: the Sec. III case study, Table II, and figures.

- :mod:`case_study` — builds the two embedded systems (M0 + Si eDRAM,
  M0 + M3D IGZO/CNFET/Si eDRAM) end-to-end through the whole design flow;
- :mod:`ppatc` — the Table II PPAtC summary;
- :mod:`figures` — data series for Fig. 2c, 2d, 4, 5, 6a, 6b;
- :mod:`report` — plain-text rendering of tables and figures.
"""

from repro.analysis.case_study import (
    CaseStudy,
    SystemDesign,
    build_all_si_system,
    build_case_study,
    build_m3d_system,
)
from repro.analysis.ppatc import ppatc_summary, PAPER_TABLE2
from repro.analysis import figures
from repro.analysis import report

__all__ = [
    "CaseStudy",
    "SystemDesign",
    "build_all_si_system",
    "build_m3d_system",
    "build_case_study",
    "ppatc_summary",
    "PAPER_TABLE2",
    "figures",
    "report",
]
