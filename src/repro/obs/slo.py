"""Rolling-window SLOs with multi-window burn rates.

A service-level objective is a target fraction of *good* requests —
"99.9 % of requests succeed" (availability) or "99 % of requests
complete under 100 ms" (latency).  :class:`SloTracker` scores every
request against a set of objectives over time-bucketed rolling windows
and reports the **burn rate** per window: the observed bad fraction
divided by the objective's error budget.  Burn rate 1.0 means the
budget is being consumed exactly as fast as it accrues; sustained
burn above 1.0 on a long window plus a high short-window burn is the
standard multi-window page condition (the short window proves the
problem is current, the long window proves it is material).

The tracker is clock-injectable (tests drive it with a fake monotonic
clock) and O(1) per request: events land in fixed one-``bucket_s``
buckets on a ring sized to the longest window, and report() sums the
buckets that fall inside each window.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SloObjective",
    "SloTracker",
    "DEFAULT_WINDOWS_S",
]

#: The multi-window pair burn rates are reported over: 5 min and 1 h.
DEFAULT_WINDOWS_S: Tuple[float, ...] = (300.0, 3600.0)


@dataclass(frozen=True)
class SloObjective:
    """One objective: a target good-fraction, optionally latency-bound.

    ``latency_threshold_s=None`` makes this an availability objective
    (good = the request did not fail); a threshold makes it a latency
    objective (good = succeeded *and* finished within the threshold).
    """

    name: str
    target: float
    latency_threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1), got {self.target}"
            )
        if (
            self.latency_threshold_s is not None
            and self.latency_threshold_s <= 0
        ):
            raise ValueError("latency threshold must be > 0")

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction (1 - target)."""
        return 1.0 - self.target

    def is_good(self, latency_s: float, ok: bool) -> bool:
        """Whether one request counts toward the objective."""
        if not ok:
            return False
        if self.latency_threshold_s is None:
            return True
        return latency_s <= self.latency_threshold_s


class _Bucket:
    """One time bucket: total events + good events per objective."""

    __slots__ = ("epoch", "total", "good")

    def __init__(self, n_objectives: int) -> None:
        self.epoch = -1
        self.total = 0
        self.good = [0] * n_objectives

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.total = 0
        for i in range(len(self.good)):
            self.good[i] = 0


class SloTracker:
    """Score requests against objectives over rolling windows."""

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
        bucket_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not objectives:
            raise ValueError("need at least one objective")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be > 0")
        if not windows_s or any(w < bucket_s for w in windows_s):
            raise ValueError(
                "windows must be non-empty and at least one bucket wide"
            )
        self.objectives = tuple(objectives)
        self.windows_s = tuple(sorted(float(w) for w in windows_s))
        self.bucket_s = float(bucket_s)
        self._clock = clock
        n_buckets = int(self.windows_s[-1] / self.bucket_s) + 1
        self._ring: List[_Bucket] = [
            _Bucket(len(self.objectives)) for _ in range(n_buckets)
        ]
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------
    def record(self, latency_s: float, ok: bool = True) -> None:
        """Score one completed request against every objective."""
        epoch = int(self._clock() / self.bucket_s)
        with self._lock:
            bucket = self._ring[epoch % len(self._ring)]
            if bucket.epoch != epoch:
                bucket.reset(epoch)
            bucket.total += 1
            for i, objective in enumerate(self.objectives):
                if objective.is_good(latency_s, ok):
                    bucket.good[i] += 1

    # -- reporting -----------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Per-objective, per-window compliance and burn rates.

        An empty window reports burn rate 0.0 and ``compliant: true``
        — no traffic burns no budget.
        """
        now_epoch = int(self._clock() / self.bucket_s)
        with self._lock:
            live = [
                bucket
                for bucket in self._ring
                if bucket.epoch >= 0
                and (now_epoch - bucket.epoch) < len(self._ring)
            ]
            out: Dict[str, Any] = {}
            for i, objective in enumerate(self.objectives):
                windows: Dict[str, Any] = {}
                for window_s in self.windows_s:
                    span = int(window_s / self.bucket_s)
                    total = good = 0
                    for bucket in live:
                        if (now_epoch - bucket.epoch) < span:
                            total += bucket.total
                            good += bucket.good[i]
                    bad_fraction = (
                        (total - good) / total if total else 0.0
                    )
                    burn = bad_fraction / objective.error_budget
                    windows[f"{window_s:g}s"] = {
                        "events": total,
                        "good": good,
                        "bad_fraction": bad_fraction,
                        "burn_rate": burn,
                        "compliant": burn <= 1.0,
                    }
                out[objective.name] = {
                    "target": objective.target,
                    "latency_threshold_s": objective.latency_threshold_s,
                    "error_budget": objective.error_budget,
                    "windows": windows,
                }
            return out
