"""Per-instruction semantics tests: assemble tiny programs, check state."""

import pytest

from repro.cpu import CortexM0, MemoryMap, assemble
from repro.errors import AssemblerError, ExecutionError


def run_asm(body: str, setup: str = "") -> CortexM0:
    """Assemble setup+body+bkpt, run to halt, return the CPU."""
    source = f"_start:\n{setup}\n{body}\n    bkpt #0\n"
    cpu = CortexM0(MemoryMap.embedded_system())
    cpu.load_program(assemble(source))
    cpu.run(max_cycles=100_000)
    return cpu


class TestMovAndArith:
    def test_movs_imm(self):
        cpu = run_asm("    movs r0, #200")
        assert cpu.regs.read(0) == 200
        assert not cpu.regs.n and not cpu.regs.z

    def test_movs_zero_sets_z(self):
        cpu = run_asm("    movs r0, #0")
        assert cpu.regs.z

    def test_adds_imm8(self):
        cpu = run_asm("    movs r0, #250\n    adds r0, #250")
        assert cpu.regs.read(0) == 500

    def test_adds_reg(self):
        cpu = run_asm("    movs r0, #7\n    movs r1, #8\n    adds r2, r0, r1")
        assert cpu.regs.read(2) == 15

    def test_add_carry_flag(self):
        cpu = run_asm(
            "    movs r0, #0\n    mvns r0, r0\n    adds r0, r0, #1"
        )  # 0xFFFFFFFF + 1
        assert cpu.regs.read(0) == 0
        assert cpu.regs.c and cpu.regs.z

    def test_overflow_flag(self):
        # 0x7FFFFFFF + 1 overflows signed.
        cpu = run_asm(
            """
    movs r0, #1
    lsls r0, r0, #31
    subs r0, r0, #1      @ r0 = 0x7FFFFFFF
    adds r0, r0, #1
"""
        )
        assert cpu.regs.v and cpu.regs.n

    def test_subs_borrow_semantics(self):
        """ARM carry = NOT borrow: 5 - 3 sets C, 3 - 5 clears it."""
        cpu = run_asm("    movs r0, #5\n    subs r0, r0, #3")
        assert cpu.regs.c and cpu.regs.read(0) == 2
        cpu = run_asm("    movs r0, #3\n    subs r0, r0, #5")
        assert not cpu.regs.c
        assert cpu.regs.read(0) == 0xFFFFFFFE

    def test_adcs_chain(self):
        """64-bit add via ADDS/ADCS."""
        cpu = run_asm(
            """
    movs r0, #0
    mvns r0, r0          @ lo a = 0xFFFFFFFF
    movs r1, #1          @ hi a = 1
    movs r2, #1          @ lo b
    movs r3, #2          @ hi b
    adds r0, r0, r2
    adcs r1, r3
"""
        )
        assert cpu.regs.read(0) == 0
        assert cpu.regs.read(1) == 4  # 1 + 2 + carry

    def test_sbcs(self):
        cpu = run_asm(
            """
    movs r0, #10
    movs r1, #3
    movs r2, #0
    subs r0, r0, #20     @ borrow: C = 0
    sbcs r1, r2          @ r1 = 3 - 0 - 1 = 2
"""
        )
        assert cpu.regs.read(1) == 2

    def test_rsbs_neg(self):
        cpu = run_asm("    movs r0, #5\n    rsbs r0, r0")
        assert cpu.regs.read(0) == 0xFFFFFFFB

    def test_muls(self):
        cpu = run_asm("    movs r0, #200\n    movs r1, #200\n    muls r0, r1")
        assert cpu.regs.read(0) == 40000

    def test_muls_wraps(self):
        cpu = run_asm(
            """
    movs r0, #1
    lsls r0, r0, #20
    mov r1, r0
    muls r0, r1          @ 2^40 mod 2^32 = 0
"""
        )
        assert cpu.regs.read(0) == 0
        assert cpu.regs.z


class TestLogicAndShift:
    def test_ands_orrs_eors_bics_mvns(self):
        cpu = run_asm(
            """
    movs r0, #0xF0
    movs r1, #0xFF
    ands r1, r0          @ 0xF0
    movs r2, #0x0F
    orrs r2, r0          @ 0xFF
    movs r3, #0xFF
    eors r3, r0          @ 0x0F
    movs r4, #0xFF
    bics r4, r0          @ 0x0F
    movs r5, #0
    mvns r5, r5          @ 0xFFFFFFFF
"""
        )
        assert cpu.regs.read(1) == 0xF0
        assert cpu.regs.read(2) == 0xFF
        assert cpu.regs.read(3) == 0x0F
        assert cpu.regs.read(4) == 0x0F
        assert cpu.regs.read(5) == 0xFFFFFFFF

    def test_lsls_imm_carry(self):
        cpu = run_asm(
            "    movs r0, #1\n    lsls r0, r0, #31\n    lsls r0, r0, #1"
        )
        assert cpu.regs.read(0) == 0
        assert cpu.regs.c

    def test_lsrs_imm(self):
        cpu = run_asm("    movs r0, #5\n    lsrs r0, r0, #1")
        assert cpu.regs.read(0) == 2
        assert cpu.regs.c  # shifted-out bit was 1

    def test_asrs_sign_extends(self):
        cpu = run_asm(
            """
    movs r0, #1
    lsls r0, r0, #31     @ 0x80000000
    asrs r0, r0, #4
"""
        )
        assert cpu.regs.read(0) == 0xF8000000

    def test_register_shifts(self):
        cpu = run_asm(
            """
    movs r0, #1
    movs r1, #8
    lsls r0, r1          @ 256
    movs r2, #4
    lsrs r0, r2          @ 16
"""
        )
        assert cpu.regs.read(0) == 16

    def test_rors(self):
        cpu = run_asm(
            "    movs r0, #1\n    movs r1, #1\n    rors r0, r1"
        )
        assert cpu.regs.read(0) == 0x80000000
        assert cpu.regs.c

    def test_tst_does_not_write(self):
        cpu = run_asm(
            "    movs r0, #5\n    movs r1, #2\n    tst r0, r1"
        )
        assert cpu.regs.read(0) == 5
        assert cpu.regs.z  # 5 & 2 == 0


class TestExtendAndRev:
    def test_sxtb(self):
        cpu = run_asm("    movs r0, #0x80\n    sxtb r0, r0")
        assert cpu.regs.read(0) == 0xFFFFFF80

    def test_uxtb(self):
        cpu = run_asm(
            "    ldr r0, =0x12345678\n    uxtb r0, r0"
        )
        assert cpu.regs.read(0) == 0x78

    def test_sxth_uxth(self):
        cpu = run_asm(
            """
    ldr r0, =0x00018000
    sxth r1, r0
    uxth r2, r0
"""
        )
        assert cpu.regs.read(1) == 0xFFFF8000
        assert cpu.regs.read(2) == 0x8000

    def test_rev(self):
        cpu = run_asm("    ldr r0, =0x12345678\n    rev r0, r0")
        assert cpu.regs.read(0) == 0x78563412


class TestMemory:
    def test_word_roundtrip(self):
        cpu = run_asm(
            """
    ldr r0, =0x20000100
    ldr r1, =0xDEADBEEF
    str r1, [r0]
    ldr r2, [r0]
"""
        )
        assert cpu.regs.read(2) == 0xDEADBEEF

    def test_byte_and_half(self):
        cpu = run_asm(
            """
    ldr r0, =0x20000100
    ldr r1, =0xCAFE
    strh r1, [r0]
    ldrb r2, [r0]        @ little-endian low byte
    ldrh r3, [r0]
"""
        )
        assert cpu.regs.read(2) == 0xFE
        assert cpu.regs.read(3) == 0xCAFE

    def test_signed_loads(self):
        cpu = run_asm(
            """
    ldr r0, =0x20000100
    movs r1, #0x80
    strb r1, [r0]
    movs r2, #0
    ldrsb r3, [r0, r2]
"""
        )
        assert cpu.regs.read(3) == 0xFFFFFF80

    def test_immediate_offsets(self):
        cpu = run_asm(
            """
    ldr r0, =0x20000100
    movs r1, #11
    str r1, [r0, #4]
    ldr r2, [r0, #4]
"""
        )
        assert cpu.regs.read(2) == 11

    def test_sp_relative(self):
        cpu = run_asm(
            """
    sub sp, #8
    movs r0, #9
    str r0, [sp, #4]
    ldr r1, [sp, #4]
    add sp, #8
"""
        )
        assert cpu.regs.read(1) == 9

    def test_ldm_stm(self):
        cpu = run_asm(
            """
    ldr r0, =0x20000200
    movs r1, #1
    movs r2, #2
    movs r3, #3
    stmia r0!, {r1-r3}
    ldr r0, =0x20000200
    ldmia r0!, {r4-r6}
"""
        )
        assert [cpu.regs.read(i) for i in (4, 5, 6)] == [1, 2, 3]
        assert cpu.regs.read(0) == 0x2000020C  # writeback

    def test_misaligned_access_rejected(self):
        with pytest.raises(ExecutionError):
            run_asm(
                """
    ldr r0, =0x20000101
    ldr r1, [r0]
"""
            )

    def test_unmapped_access_rejected(self):
        with pytest.raises(ExecutionError):
            run_asm(
                """
    ldr r0, =0x40000000
    ldr r1, [r0]
"""
            )


class TestBranches:
    def test_conditional_taken_and_not(self):
        cpu = run_asm(
            """
    movs r0, #0
    movs r1, #5
    cmp r1, #5
    bne skip            @ not taken
    movs r0, #1
skip:
    cmp r1, #9
    beq never           @ not taken
    adds r0, r0, #2
never:
"""
        )
        assert cpu.regs.read(0) == 3

    def test_signed_vs_unsigned_compare(self):
        cpu = run_asm(
            """
    movs r0, #0
    movs r1, #0
    mvns r1, r1          @ -1 (0xFFFFFFFF)
    movs r2, #1
    cmp r1, r2
    blt is_less          @ signed: -1 < 1
    b done
is_less:
    movs r0, #1
    cmp r1, r2
    bhi is_higher        @ unsigned: 0xFFFFFFFF > 1
    b done
is_higher:
    adds r0, r0, #2
done:
"""
        )
        assert cpu.regs.read(0) == 3

    def test_bl_and_bx_lr(self):
        cpu = run_asm(
            """
    movs r0, #1
    bl helper
    adds r0, r0, #10
    b end
helper:
    adds r0, r0, #100
    bx lr
end:
"""
        )
        assert cpu.regs.read(0) == 111

    def test_push_pop_pc_return(self):
        cpu = run_asm(
            """
    bl fn
    b end
fn:
    push {r4, lr}
    movs r4, #42
    mov r0, r4
    pop {r4, pc}
end:
"""
        )
        assert cpu.regs.read(0) == 42

    def test_nested_calls(self):
        cpu = run_asm(
            """
    bl outer
    b end
outer:
    push {lr}
    bl inner
    adds r0, r0, #1
    pop {pc}
inner:
    movs r0, #10
    bx lr
end:
"""
        )
        assert cpu.regs.read(0) == 11


class TestCycleTimings:
    def _cycles(self, body: str) -> int:
        source = f"_start:\n{body}\n    bkpt #0\n"
        cpu = CortexM0()
        cpu.load_program(assemble(source))
        return cpu.run().cycles - 1  # minus the bkpt cycle

    def test_data_op_one_cycle(self):
        assert self._cycles("    movs r0, #1") == 1

    def test_load_two_cycles(self):
        assert self._cycles("    ldr r0, =0x20000000\n    ldr r1, [r0]") == 4

    def test_taken_branch_three_cycles(self):
        assert self._cycles("    b next\nnext:") == 3

    def test_untaken_branch_one_cycle(self):
        assert (
            self._cycles("    movs r0, #1\n    cmp r0, #2\n    beq nope\nnope:")
            == 3
        )

    def test_bl_four_cycles(self):
        assert self._cycles("    bl next\nnext:") == 4

    def test_push_n_plus_one(self):
        # push {r0, r1, r2} = 4 cycles
        assert self._cycles("    push {r0, r1, r2}\n    add sp, #12") == 5


class TestAssemblerErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError, match="unsupported"):
            assemble("_start:\n    frobnicate r0\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nx:\n    nop\n")

    def test_out_of_range_immediate(self):
        with pytest.raises(AssemblerError, match="range"):
            assemble("_start:\n    movs r0, #300\n")

    def test_high_register_in_low_op(self):
        with pytest.raises(AssemblerError, match="low register"):
            assemble("_start:\n    muls r0, r8\n")

    def test_unresolved_symbol(self):
        with pytest.raises(AssemblerError, match="unresolved"):
            assemble("_start:\n    b nowhere\n")

    def test_branch_out_of_range(self):
        nops = "\n".join("    nop" for _ in range(700))
        with pytest.raises(AssemblerError, match="range"):
            assemble(f"_start:\n    beq far\n{nops}\nfar:\n    nop\n")

    def test_equ_and_word(self):
        program = assemble(
            """
.equ MAGIC, 0x1234
_start:
    ldr r0, data
    bkpt #0
.align 2
data:
    .word MAGIC
"""
        )
        cpu = CortexM0()
        cpu.load_program(program)
        cpu.run()
        assert cpu.regs.read(0) == 0x1234
