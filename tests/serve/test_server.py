"""In-process server tests: routes, errors, drain, mode equivalence.

Each test boots a real ``PpatcServer`` on an ephemeral port inside
``asyncio.run`` and talks actual HTTP over loopback through the load
generator's client helpers — the same path ``repro bench-serve`` uses.
"""

import asyncio
import json

import pytest

from repro.serve import PpatcServer, ServerConfig
from repro.serve.loadgen import (
    _post_bytes,
    _read_response,
    build_corpus,
    fetch_json,
    run_closed_loop,
)

pytestmark = pytest.mark.usefixtures("clean_obs")

#: One warmed grid keeps per-test server boots fast.
TEST_CONFIG = dict(port=0, grids=("us",), sweep_cache=False)


async def post_json(port, payload, target="/v1/tcdp"):
    """One POST; returns (status, decoded-or-None body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps(payload).encode()
        writer.write(_post_bytes(body, target=target))
        await writer.drain()
        status, raw = await _read_response(reader)
        return status, json.loads(raw) if raw else None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@pytest.mark.smoke
def test_end_to_end_point_request():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            status, body = await post_json(
                server.port,
                {"grid": "us", "lifetime_months": 24.0},
            )
        finally:
            await server.stop()
        return status, body

    status, body = asyncio.run(run())
    assert status == 200
    assert body["schema"] == "ppatc-point/1"
    assert body["query"]["grid"] == "us"
    assert 0 < body["tcdp_ratio"]
    assert body["candidate"]["tcdp_gs"] > 0
    assert len(body["lifetime"]["months"]) == 24


def test_healthz_and_metricz():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            health = await fetch_json(
                "127.0.0.1", server.port, "/healthz"
            )
            await post_json(server.port, {})
            metrics = await fetch_json(
                "127.0.0.1", server.port, "/metricz"
            )
        finally:
            await server.stop()
        return health, metrics

    health, metrics = asyncio.run(run())
    assert health["status"] == "ok"
    assert health["mode"] == "batched"
    assert health["grids"] == ["us"]
    assert metrics["counters"]["serve.requests.total"] >= 1
    assert metrics["gauges"]["serve.bases.warm"] == 1.0


def test_error_statuses():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            results = {
                "unknown_route": await post_json(
                    server.port, {}, target="/v2/nope"
                ),
                "bad_method": None,
                "bad_field": await post_json(
                    server.port, {"grid": "mars"}
                ),
                "unwarmed_ok": await post_json(
                    server.port, {"grid": "coal"}
                ),
            }
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"PUT /v1/tcdp HTTP/1.1\r\ncontent-length: 0\r\n\r\n"
            )
            await writer.drain()
            results["bad_method"] = await _read_response(reader)
            writer.close()
            await writer.wait_closed()
        finally:
            await server.stop()
        return results

    results = asyncio.run(run())
    assert results["unknown_route"][0] == 404
    assert results["bad_method"][0] == 405
    status, body = results["bad_field"]
    assert status == 400
    assert "grid" in body["error"]
    # Grids outside the warmed set still work (memoized on first use).
    assert results["unwarmed_ok"][0] == 200


def test_grid_endpoint():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            status, body = await post_json(
                server.port,
                {
                    "grid": "us",
                    "emb_scales": {"start": 0.1, "stop": 2.0, "n": 4},
                    "op_scales": [0.5, 1.0],
                },
                target="/v1/grid",
            )
        finally:
            await server.stop()
        return status, body

    status, body = asyncio.run(run())
    assert status == 200
    assert body["schema"] == "ppatc-grid/1"
    assert len(body["ratio_map"]) == 2
    assert len(body["ratio_map"][0]) == 4


def test_serial_and_batched_responses_are_bit_equal():
    corpus = build_corpus(seed=3, n=64)

    async def drive(serial):
        server = PpatcServer(
            ServerConfig(serial=serial, **TEST_CONFIG)
        )
        await server.start()
        try:
            return await run_closed_loop(
                "127.0.0.1", server.port, corpus, connections=8
            )
        finally:
            await server.stop()

    batched = asyncio.run(drive(serial=False))
    serial = asyncio.run(drive(serial=True))
    assert batched.errors == 0 and serial.errors == 0
    assert batched.requests == serial.requests == 64
    assert batched.digest() == serial.digest()


def test_concurrent_clients_coalesce(clean_obs):
    """N concurrent clients -> far fewer tensor evaluations than N."""
    corpus = build_corpus(seed=5, n=64)

    async def run():
        server = PpatcServer(
            ServerConfig(batch_window_s=0.02, **TEST_CONFIG)
        )
        await server.start()
        try:
            result = await run_closed_loop(
                "127.0.0.1", server.port, corpus, connections=16
            )
            metrics = await fetch_json(
                "127.0.0.1", server.port, "/metricz"
            )
        finally:
            await server.stop()
        return result, metrics

    result, metrics = asyncio.run(run())
    assert result.errors == 0
    batches = metrics["counters"]["serve.batch.count"]
    queries = metrics["counters"]["serve.batch.queries"]
    assert queries == 64
    # 16 clients in lockstep over a 20 ms window: every round coalesces,
    # so evaluations number ~requests/16, far below one per request.
    assert batches <= 16
    occupancy = metrics["histograms"]["serve.batch.occupancy"]
    assert occupancy["mean"] >= 4.0


def test_queue_full_returns_429():
    async def run():
        server = PpatcServer(
            ServerConfig(
                batch_window_s=0.2,
                max_pending=2,
                **TEST_CONFIG,
            )
        )
        await server.start()
        try:
            statuses = await asyncio.gather(
                *[post_json(server.port, {}) for _ in range(12)]
            )
        finally:
            await server.stop()
        return [status for status, _ in statuses]

    statuses = asyncio.run(run())
    assert statuses.count(429) > 0
    assert statuses.count(200) > 0
    assert set(statuses) <= {200, 429}


def test_graceful_drain_finishes_inflight_requests():
    """stop() mid-flight: admitted requests still get 200s."""

    async def run():
        server = PpatcServer(
            ServerConfig(batch_window_s=0.1, **TEST_CONFIG)
        )
        await server.start()
        inflight = [
            asyncio.ensure_future(post_json(server.port, {}))
            for _ in range(6)
        ]
        await asyncio.sleep(0.02)  # let them enter the batch window
        await server.stop()
        return await asyncio.gather(*inflight)

    outcomes = asyncio.run(run())
    assert [status for status, _ in outcomes] == [200] * 6
    assert all(body["schema"] == "ppatc-point/1" for _, body in outcomes)


def test_keep_alive_reuses_connection():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            statuses = []
            for _ in range(3):
                writer.write(_post_bytes(b"{}"))
                await writer.drain()
                status, _ = await _read_response(reader)
                statuses.append(status)
            writer.close()
            await writer.wait_closed()
            served = server.requests_served
        finally:
            await server.stop()
        return statuses, served

    statuses, served = asyncio.run(run())
    assert statuses == [200, 200, 200]
    assert served == 3


def test_access_log_written(tmp_path):
    log_path = tmp_path / "access.jsonl"

    async def run():
        server = PpatcServer(
            ServerConfig(access_log=str(log_path), **TEST_CONFIG)
        )
        await server.start()
        try:
            await post_json(server.port, {})
            await post_json(server.port, {"grid": "mars"})
        finally:
            await server.stop()

    asyncio.run(run())
    records = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
    ]
    assert len(records) == 2
    assert records[0]["target"] == "/v1/tcdp"
    assert records[0]["status"] == 200
    assert records[1]["status"] == 400
    assert records[0]["elapsed_ms"] >= 0


# -- observability endpoints ----------------------------------------------


async def get_with_accept(port, target, accept=None):
    """One GET with an optional Accept header; returns (status, body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = f"GET {target} HTTP/1.1\r\nhost: test\r\n"
        if accept:
            head += f"accept: {accept}\r\n"
        head += "connection: close\r\n\r\n"
        writer.write(head.encode("ascii"))
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def test_metricz_content_negotiation():
    """JSON default; Prometheus text and OpenMetrics on request."""

    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            await post_json(server.port, {})
            as_json = await fetch_json("127.0.0.1", server.port, "/metricz")
            _, text = await get_with_accept(
                server.port, "/metricz", accept="text/plain"
            )
            _, om = await get_with_accept(
                server.port,
                "/metricz",
                accept="application/openmetrics-text; version=1.0.0",
            )
        finally:
            await server.stop()
        return as_json, text.decode(), om.decode()

    as_json, text, om = asyncio.run(run())
    # The JSON default is the pre-existing snapshot shape, untouched.
    assert as_json["counters"]["serve.requests.total"] >= 1
    # Prometheus text 0.0.4: typed series with sanitized names.
    assert "# TYPE serve_requests_total counter" in text
    assert "# TYPE serve_request_seconds histogram" in text
    assert 'serve_request_seconds_bucket{le="+Inf"}' in text
    assert "# EOF" not in text
    # OpenMetrics adds the EOF trailer and request-id exemplars.
    assert om.rstrip().endswith("# EOF")
    assert 'span_id="' in om


def test_debugz_serves_the_flight_dump():
    async def run():
        server = PpatcServer(
            ServerConfig(flight_capacity=8, flight_slowest=2, **TEST_CONFIG)
        )
        await server.start()
        try:
            await post_json(server.port, {})
            await post_json(server.port, {"grid": "mars"})  # a 400
            dump = await fetch_json("127.0.0.1", server.port, "/debugz")
        finally:
            await server.stop()
        return dump

    dump = asyncio.run(run())
    assert dump["schema"] == "flight-recorder/1"
    assert dump["capacity"] == 8
    assert dump["recorded"] == 2
    assert dump["errors_total"] == 1
    assert dump["errors"][0]["status"] == 400
    targets = [r["target"] for r in dump["recent"]]
    assert targets == ["/v1/tcdp", "/v1/tcdp"]
    ids = [r["request_id"] for r in dump["recent"]]
    assert len(set(ids)) == 2
    assert all(r["latency_ms"] > 0 for r in dump["recent"])
    # The slowest view retained both (k=2) and orders worst-first.
    latencies = [r["latency_ms"] for r in dump["slowest"]]
    assert latencies == sorted(latencies, reverse=True)


def test_healthz_reports_slo_and_carbon():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            await post_json(server.port, {})
            health = await fetch_json("127.0.0.1", server.port, "/healthz")
        finally:
            await server.stop()
        return health

    health = asyncio.run(run())
    slo = health["slo"]
    assert set(slo) == {"availability", "latency"}
    for objective in slo.values():
        for window in objective["windows"].values():
            assert window["compliant"] is True
            assert window["burn_rate"] == 0.0
    # One good request has been scored already.
    window = slo["availability"]["windows"]["300s"]
    assert window["events"] >= 1
    carbon = health["carbon"]
    assert carbon["operational_gco2e"] >= 0.0
    assert carbon["energy_kwh"] > 0.0
    assert carbon["ci_gco2e_per_kwh"] == 380.0
    assert health["profiler_hz"] == 0.0
    assert health["flight_recorded"] >= 1


def test_profilez_disabled_by_default_enabled_by_config():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            off_status, _ = await get_with_accept(server.port, "/profilez")
        finally:
            await server.stop()

        server = PpatcServer(
            ServerConfig(profile_hz=250.0, **TEST_CONFIG)
        )
        await server.start()
        try:
            # Give the sampler a few periods of a busy event loop.
            for _ in range(5):
                await post_json(server.port, {})
            report = await fetch_json(
                "127.0.0.1", server.port, "/profilez"
            )
            _, collapsed = await get_with_accept(
                server.port, "/profilez", accept="text/plain"
            )
            health = await fetch_json(
                "127.0.0.1", server.port, "/healthz"
            )
        finally:
            await server.stop()
        return off_status, report, collapsed.decode(), health

    off_status, report, collapsed, health = asyncio.run(run())
    assert off_status == 404
    assert report["schema"] == "repro-profile/1"
    assert report["hz"] == 250.0
    assert report["ticks"] > 0
    assert health["profiler_hz"] == 250.0
    for line in collapsed.strip().split("\n"):
        if line:
            assert int(line.rsplit(" ", 1)[1]) > 0


def test_dump_flight_writes_json(tmp_path):
    dump_path = tmp_path / "flight.json"

    async def run():
        server = PpatcServer(
            ServerConfig(flight_dump_path=str(dump_path), **TEST_CONFIG)
        )
        await server.start()
        try:
            await post_json(server.port, {})
            written = server.dump_flight()
            metrics = await fetch_json(
                "127.0.0.1", server.port, "/metricz"
            )
        finally:
            await server.stop()
        return written, metrics

    written, metrics = asyncio.run(run())
    assert written == str(dump_path)
    on_disk = json.loads(dump_path.read_text(encoding="utf-8"))
    assert on_disk["schema"] == "flight-recorder/1"
    assert on_disk["recorded"] == 1
    assert metrics["counters"]["serve.flight.dumps"] == 1


def test_access_log_carries_observability_fields(tmp_path):
    log_path = tmp_path / "access.jsonl"

    async def run():
        server = PpatcServer(
            ServerConfig(access_log=str(log_path), **TEST_CONFIG)
        )
        await server.start()
        try:
            await post_json(server.port, {})
        finally:
            await server.stop()

    asyncio.run(run())
    (record,) = [
        json.loads(line) for line in log_path.read_text().splitlines()
    ]
    assert record["request_id"] == "00000001"
    assert record["queue_depth"] >= 0
    assert record["batch_occupancy"] >= 1.0
    assert record["status"] == 200


def test_queue_depth_gauge_settles_to_zero():
    async def run():
        server = PpatcServer(
            ServerConfig(batch_window_s=0.02, **TEST_CONFIG)
        )
        await server.start()
        try:
            await asyncio.gather(
                *[post_json(server.port, {}) for _ in range(8)]
            )
            metrics = await fetch_json(
                "127.0.0.1", server.port, "/metricz"
            )
        finally:
            await server.stop()
        return metrics

    metrics = asyncio.run(run())
    # All submissions flushed: depth is back to zero, and the last
    # batch's occupancy was published for the access log to pick up.
    assert metrics["gauges"]["serve.queue.depth"] == 0.0
    assert metrics["gauges"]["serve.batch.last_occupancy"] >= 1.0


def test_latency_histogram_reports_quantiles():
    async def run():
        server = PpatcServer(ServerConfig(**TEST_CONFIG))
        await server.start()
        try:
            for _ in range(5):
                await post_json(server.port, {})
            metrics = await fetch_json(
                "127.0.0.1", server.port, "/metricz"
            )
        finally:
            await server.stop()
        return metrics

    metrics = asyncio.run(run())
    hist = metrics["histograms"]["serve.request.seconds"]
    assert hist["count"] == 5
    assert 0.0 < hist["p50"] <= hist["p90"] <= hist["p99"]
