"""ASAP7-style standard-cell library model with four V_T flavours.

The ASAP7 PDK offers HVT, RVT, LVT and SLVT ("super-low V_T") cell
libraries at V_DD = 0.7 V.  The paper sweeps all four in its synthesis
runs (Fig. 4).  This module models, per flavour:

- the FO4-style stage delay via the alpha-power law
  ``d = k * V_DD / (V_DD - V_T)^alpha``;
- gate leakage, exponential in V_T with a subthreshold slope of
  ~70 mV/decade (FinFET-class);
- switching energy per gate, ``C_gate * V_DD^2``.

Absolute values are calibrated so that the Cortex-M0 design point selected
by the paper (RVT, 500 MHz) lands at 1.42 pJ/cycle (Table II).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import PhysicalDesignError


class VtFlavor(enum.Enum):
    """Threshold-voltage flavours of the ASAP7 libraries."""

    HVT = "hvt"
    RVT = "rvt"
    LVT = "lvt"
    SLVT = "slvt"

    @classmethod
    def ordered(cls) -> "tuple[VtFlavor, ...]":
        """From highest to lowest threshold voltage."""
        return (cls.HVT, cls.RVT, cls.LVT, cls.SLVT)


#: Threshold voltage per flavour at the nominal corner (volts).
VT_VALUES: Dict[VtFlavor, float] = {
    VtFlavor.HVT: 0.32,
    VtFlavor.RVT: 0.25,
    VtFlavor.LVT: 0.18,
    VtFlavor.SLVT: 0.11,
}


@dataclass(frozen=True)
class CellLibrary:
    """One V_T flavour of the standard-cell library.

    Attributes:
        flavor: The V_T flavour.
        vdd_v: Supply voltage (ASAP7 nominal: 0.7 V).
        vt_v: Threshold voltage.
        fo4_delay_s: FO4 stage delay at nominal sizing.
        leakage_per_gate_w: Leakage power of an average gate equivalent.
        switch_energy_per_gate_j: C*V^2 switching energy of an average
            gate equivalent (full swing, activity 1).
        gate_area_um2: Area of an average gate equivalent.
    """

    flavor: VtFlavor
    vdd_v: float
    vt_v: float
    fo4_delay_s: float
    leakage_per_gate_w: float
    switch_energy_per_gate_j: float
    gate_area_um2: float

    def __post_init__(self) -> None:
        if self.vdd_v <= self.vt_v:
            raise PhysicalDesignError(
                f"{self.flavor.value}: V_DD ({self.vdd_v}) must exceed "
                f"V_T ({self.vt_v})"
            )
        for name in (
            "fo4_delay_s",
            "leakage_per_gate_w",
            "switch_energy_per_gate_j",
            "gate_area_um2",
        ):
            if getattr(self, name) <= 0:
                raise PhysicalDesignError(f"{self.flavor.value}: {name} must be > 0")


# Calibration constants (see module docstring and DESIGN.md):
_VDD = 0.7
_ALPHA = 1.3  # alpha-power-law velocity-saturation exponent
_DELAY_K = 28.1e-12  # scales FO4 delay; RVT -> ~55.6 ps effective stage
_LEAKAGE_RVT_W = 4.2e-10  # per gate equivalent; M0-total ~5 uW at RVT
_SS_DECADE_V = 0.070  # leakage decade per 70 mV of V_T
_SWITCH_ENERGY_J = 0.8e-15  # C*V^2 per gate equivalent (incl. wire) at 0.7 V
_GATE_AREA_UM2 = 0.25  # average gate-equivalent footprint at 7 nm


def _fo4_delay(vt_v: float) -> float:
    return _DELAY_K * _VDD / (_VDD - vt_v) ** _ALPHA


def _leakage(vt_v: float) -> float:
    rvt_vt = VT_VALUES[VtFlavor.RVT]
    return _LEAKAGE_RVT_W * 10.0 ** ((rvt_vt - vt_v) / _SS_DECADE_V)


def make_library(flavor: VtFlavor, vdd_v: float = _VDD) -> CellLibrary:
    """Build the calibrated library for one V_T flavour."""
    vt = VT_VALUES[flavor]
    return CellLibrary(
        flavor=flavor,
        vdd_v=vdd_v,
        vt_v=vt,
        fo4_delay_s=_fo4_delay(vt),
        leakage_per_gate_w=_leakage(vt),
        switch_energy_per_gate_j=_SWITCH_ENERGY_J * (vdd_v / _VDD) ** 2,
        gate_area_um2=_GATE_AREA_UM2,
    )


def all_libraries(vdd_v: float = _VDD) -> Dict[VtFlavor, CellLibrary]:
    """All four flavours, keyed by :class:`VtFlavor`."""
    return {flavor: make_library(flavor, vdd_v) for flavor in VtFlavor}
