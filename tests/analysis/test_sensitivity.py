"""Tests for the tornado sensitivity analysis."""

import pytest

from repro.analysis import build_case_study
from repro.analysis.sensitivity import (
    case_study_parameters,
    render_tornado,
    tornado_analysis,
)
from repro.errors import CarbonModelError


@pytest.fixture(scope="module")
def nominal():
    return case_study_parameters(build_case_study())


@pytest.fixture(scope="module")
def entries(nominal):
    return tornado_analysis(nominal)


class TestTornado:
    def test_all_parameters_covered(self, entries):
        names = {e.parameter for e in entries}
        assert names == {
            "m3d_embodied_wafer",
            "m3d_yield",
            "si_yield",
            "m3d_operational_power",
            "si_operational_power",
            "lifetime",
            "ci_use",
            "m3d_dies_per_wafer",
        }

    def test_sorted_by_swing(self, entries):
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_nominal_ratio_matches_headline(self, entries):
        assert entries[0].ratio_nominal == pytest.approx(1 / 1.02, abs=0.005)

    def test_yield_is_a_top_sensitivity(self, entries):
        """The paper singles out yield uncertainty (Fig. 6b) — it must
        rank among the most influential parameters."""
        top_half = {e.parameter for e in entries[: len(entries) // 2]}
        assert "m3d_yield" in top_half or "si_yield" in top_half

    def test_directionality(self, entries):
        by_name = {e.parameter: e for e in entries}
        # Heavier M3D embodied carbon worsens its ratio.
        e = by_name["m3d_embodied_wafer"]
        assert e.ratio_high > e.ratio_nominal > e.ratio_low
        # Better M3D yield improves (lowers) the ratio.
        e = by_name["m3d_yield"]
        assert e.ratio_high < e.ratio_nominal < e.ratio_low
        # Longer lifetime favors M3D.
        e = by_name["lifetime"]
        assert e.ratio_high < e.ratio_low

    def test_close_verdict_flips_easily(self, entries):
        """At 24 months the 1.02x margin is thin: several +/- 25%
        perturbations flip the winner — the paper's robustness message."""
        assert any(e.flips_verdict for e in entries)

    def test_ci_use_does_not_change_winner_alone(self, entries):
        """CI_use scales both designs' operational carbon, so it shifts
        the ratio toward the EDP limit but more weakly than yield."""
        by_name = {e.parameter: e for e in entries}
        assert by_name["ci_use"].swing < by_name["m3d_yield"].swing

    def test_validation(self, nominal):
        with pytest.raises(CarbonModelError):
            tornado_analysis(nominal, relative_change=0.0)
        with pytest.raises(CarbonModelError):
            tornado_analysis(nominal, relative_change=1.5)

    def test_render(self, entries):
        text = render_tornado(entries)
        assert "tornado" in text.lower() or "TORNADO" in text
        assert "m3d_yield" in text
