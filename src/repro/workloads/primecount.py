"""primecount: byte-array sieve of Eratosthenes.

Counts primes below LIMIT; checksum = count.
"""

from __future__ import annotations

from repro.workloads.suite import Workload

LIMIT = 4096
REPEATS = 4
SIEVE_BASE = 0x2000_0000

_TEMPLATE = """
.equ SIEVE, {sieve_base}
.equ LIMIT, {limit}

_start:
    movs r7, #{repeats}
repeat_loop:
    bl sieve
    subs r7, r7, #1
    bne repeat_loop
    bkpt #0

@ r0 = number of primes below LIMIT.
sieve:
    push {{r4, r5, r6, r7, lr}}
    @ clear flags array (1 byte per number): mark all as prime (0).
    ldr r4, =SIEVE
    ldr r5, =LIMIT
    movs r0, #0
clear_loop:
    strb r0, [r4]
    adds r4, r4, #1
    subs r5, r5, #1
    bne clear_loop
    @ sieve: for p = 2..; if flags[p] == 0, mark multiples.
    movs r6, #2           @ p
p_loop:
    @ stop when p*p >= LIMIT
    mov r0, r6
    muls r0, r0
    ldr r1, =LIMIT
    cmp r0, r1
    bge count_phase
    ldr r4, =SIEVE
    ldrb r2, [r4, r6]
    cmp r2, #0
    bne next_p
    @ mark multiples starting at p*p
    mov r5, r0            @ m = p*p (r0 still holds it)
    movs r2, #1
mark_loop:
    ldr r4, =SIEVE
    adds r4, r4, r5
    strb r2, [r4]
    adds r5, r5, r6       @ m += p
    ldr r1, =LIMIT
    cmp r5, r1
    blt mark_loop
next_p:
    adds r6, r6, #1
    b p_loop
count_phase:
    ldr r4, =SIEVE
    movs r0, #0           @ count
    movs r6, #2           @ i
    ldr r7, =LIMIT
count_loop:
    ldrb r2, [r4, r6]
    cmp r2, #0
    bne not_prime
    adds r0, r0, #1
not_prime:
    adds r6, r6, #1
    cmp r6, r7
    blt count_loop
    pop {{r4, r5, r6, r7, pc}}
"""


def source(limit: int = LIMIT, repeats: int = REPEATS) -> str:
    return _TEMPLATE.format(
        sieve_base=f"0x{SIEVE_BASE:08X}", limit=limit, repeats=repeats
    )


def golden_checksum(limit: int = LIMIT) -> int:
    flags = bytearray(limit)
    p = 2
    while p * p < limit:
        if not flags[p]:
            for m in range(p * p, limit, p):
                flags[m] = 1
        p += 1
    return sum(1 for i in range(2, limit) if not flags[i])


def workload(limit: int = LIMIT, repeats: int = REPEATS) -> Workload:
    return Workload(
        name="primecount",
        description=f"sieve of Eratosthenes below {limit}, {repeats} repeats",
        source=source(limit, repeats),
        expected_checksum=golden_checksum(limit),
    )
