#!/usr/bin/env python3
"""Export the M3D 3T bit-cell layout as a GDSII file.

The paper's repository includes "a circuit layout (GDS) using the M3D
process, with instructions on how to render it in 3D (using GDS3D)".
This example generates the equivalent artifacts:

- ``m3d_bitcell.gds``   — the 3T cell, one GDS layer per physical layer;
- ``m3d_layers.txt``    — the layer map (z-height/thickness per layer),
  i.e. the tech-file data a 3D renderer like GDS3D needs;
- a Fig. 2b-style ASCII cross-section printed to the terminal.

Run:  python examples/m3d_layout_export.py [output_dir]
"""

import pathlib
import sys

from repro.edram.layout import (
    build_m3d_cell_layout,
    cross_section_ascii,
    layer_map_table,
)
from repro.edram.layout_svg import render_cross_section_svg, render_plan_svg
from repro.fab.gds import GdsLibrary


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    library = build_m3d_cell_layout()
    gds_path = out_dir / "m3d_bitcell.gds"
    library.write(gds_path)

    structure = library.structures["bitcell_3t"]
    x0, y0, x1, y1 = structure.bounding_box()
    print(f"Wrote {gds_path} ({len(structure.rects)} shapes, "
          f"{x1-x0} x {y1-y0} nm cell, {len(structure.layers())} layers)")

    # Verify the file round-trips through the reader.
    loaded = GdsLibrary.read(gds_path)
    assert loaded.structures["bitcell_3t"].rects == structure.rects
    print("Round-trip check: OK")

    layers_path = out_dir / "m3d_layers.txt"
    with open(layers_path, "w") as handle:
        handle.write("# GDS3D-style layer map: layer z(nm) thickness(nm) name\n")
        for row in layer_map_table():
            handle.write(
                f"{row['gds_layer']:>3} {row['z_nm']:>7.0f} "
                f"{row['thickness_nm']:>5.0f} {row['name']}\n"
            )
    print(f"Wrote {layers_path}")

    for name, svg in (
        ("m3d_bitcell_plan.svg", render_plan_svg(library)),
        ("m3d_bitcell_xsection.svg", render_cross_section_svg(library)),
    ):
        path = out_dir / name
        path.write_text(svg)
        print(f"Wrote {path}")

    print()
    print(cross_section_ascii(library))


if __name__ == "__main__":
    main()
