"""Wordline/bitline parasitic extraction.

The paper's SPICE netlists include wire parasitics (Sec. III-B step 2).
This module provides per-length wire constants for the 36 nm-pitch local
metal used inside sub-arrays, and rolls them up into line models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edram.bitcell import BitcellDesign

#: Wire capacitance per micrometer at 36 nm pitch (F/um).  ~0.2 fF/um is
#: the standard scaling-era rule of thumb for minimum-pitch local metal.
WIRE_CAP_F_PER_UM = 0.20e-15

#: Wire resistance per micrometer at 36 nm pitch (ohm/um).  Thin local
#: metal is resistive; 20 ohm/um is representative at this pitch.
WIRE_RES_OHM_PER_UM = 20.0


@dataclass(frozen=True)
class LineParasitics:
    """Lumped RC of a wordline or bitline spanning ``n_cells`` cells."""

    length_um: float
    wire_cap_f: float
    wire_res_ohm: float
    device_cap_f: float

    @property
    def total_cap_f(self) -> float:
        return self.wire_cap_f + self.device_cap_f

    @property
    def rc_delay_s(self) -> float:
        """Elmore-style distributed RC delay (0.5 * R * C)."""
        return 0.5 * self.wire_res_ohm * self.total_cap_f


def wordline_parasitics(
    cell: BitcellDesign, n_cols: int, gate_cap_per_cell_f: float
) -> LineParasitics:
    """A wordline running across ``n_cols`` cells (length = n * cell W)."""
    if n_cols <= 0:
        raise ValueError(f"n_cols must be > 0, got {n_cols}")
    length = n_cols * cell.cell_width_um
    return LineParasitics(
        length_um=length,
        wire_cap_f=length * WIRE_CAP_F_PER_UM,
        wire_res_ohm=length * WIRE_RES_OHM_PER_UM,
        device_cap_f=n_cols * gate_cap_per_cell_f,
    )


def write_wordline(cell: BitcellDesign, n_cols: int) -> LineParasitics:
    """WWL: loaded by one write-FET gate per cell."""
    gate = cell.make_write_fet().gate_capacitance_f()
    return wordline_parasitics(cell, n_cols, gate)


def read_wordline(cell: BitcellDesign, n_cols: int) -> LineParasitics:
    """RWL: loaded by one access-FET gate per cell."""
    gate = cell.make_access_fet().gate_capacitance_f()
    return wordline_parasitics(cell, n_cols, gate)


def bitline_parasitics(
    cell: BitcellDesign, n_rows: int, junction_cap_per_cell_f: float = 0.03e-15
) -> LineParasitics:
    """A bitline running down ``n_rows`` cells (length = n * cell H).

    Every cell contributes a drain-junction capacitance to the line.
    """
    if n_rows <= 0:
        raise ValueError(f"n_rows must be > 0, got {n_rows}")
    length = n_rows * cell.cell_height_um
    return LineParasitics(
        length_um=length,
        wire_cap_f=length * WIRE_CAP_F_PER_UM,
        wire_res_ohm=length * WIRE_RES_OHM_PER_UM,
        device_cap_f=n_rows * junction_cap_per_cell_f,
    )
