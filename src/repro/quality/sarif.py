"""SARIF 2.1.0 export for repro-lint (GitHub code scanning).

``repro lint --format sarif`` emits one SARIF run so CI findings
surface as inline pull-request annotations instead of a log to scroll.
The mapping is deliberately minimal and lossless where it matters:

- every registered rule becomes a ``tool.driver.rules`` entry (id,
  summary, and the ``--explain`` rationale as ``fullDescription``);
- every finding becomes a ``result`` with its message, severity level,
  and one physical location (repo-relative URI, 1-based line/column);
- the finding's stable fingerprint (the same line-number-free hash the
  baseline uses) rides in ``partialFingerprints`` so GitHub tracks a
  finding across pushes exactly as the baseline would.

Baselined findings are *not* exported — the SARIF view shows what the
gate shows.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.quality.engine import LintReport
from repro.quality.findings import Finding, Severity
from repro.quality.rules import Rule

__all__ = ["report_to_sarif"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rule_entry(rule: Rule) -> Dict[str, Any]:
    doc = sys.modules[type(rule).__module__].__doc__ or rule.summary
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": doc.strip()},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "error")
        },
    }


def _result_entry(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproLintFingerprint/v1": finding.fingerprint()
        },
    }


def report_to_sarif(
    report: LintReport, rules: Optional[Sequence[Rule]] = None
) -> Dict[str, Any]:
    """The report as a SARIF 2.1.0 log object (JSON-able dict)."""
    if rules is None:
        from repro.quality.rules import default_rules

        rules = default_rules()
    rule_entries: List[Dict[str, Any]] = [
        _rule_entry(rule) for rule in rules
    ]
    known = {entry["id"] for entry in rule_entries}
    # Findings can carry ids outside the configured rule set (RPL000
    # parse errors); give them a stub entry so the log validates.
    for finding in report.findings:
        if finding.rule not in known:
            known.add(finding.rule)
            rule_entries.append(
                {
                    "id": finding.rule,
                    "name": finding.rule,
                    "shortDescription": {"text": "repro-lint diagnostic"},
                    "defaultConfiguration": {"level": "error"},
                }
            )
    rule_entries.sort(key=lambda entry: str(entry["id"]))
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rule_entries,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repo root"}}
                },
                "results": [
                    _result_entry(finding) for finding in report.findings
                ],
            }
        ],
    }
