"""Unit tests for the shape/broadcast lattice in repro.quality.shapes."""

import ast
import textwrap

import pytest

from repro.quality.flow import ModuleInfo
from repro.quality.shapes import (
    Capability,
    ShapeAnalyzer,
    ShapeProgram,
    ShapeValue,
    seeds_param,
)


def analyze(source, func_name=None):
    """FunctionShapes for one function in an in-memory module."""
    tree = ast.parse(textwrap.dedent(source))
    info = ModuleInfo.build(tree, path=None, key="<test>")
    program = ShapeProgram(parse=None)
    analyzer = ShapeAnalyzer(info, program)
    funcs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if func_name is not None:
        funcs = [f for f in funcs if f.name == func_name]
    assert funcs, f"no function {func_name!r} in fixture"
    return analyzer.analyze_function(funcs[0])


class TestParameterSeeding:
    def _arg(self, source):
        tree = ast.parse(textwrap.dedent(source))
        func = tree.body[0]
        return func.args.args[0]

    def test_float_annotation_seeds(self):
        assert seeds_param(self._arg("def f(x: float): pass"))

    def test_string_union_annotation_seeds(self):
        assert seeds_param(
            self._arg("def f(x: 'float | np.ndarray'): pass")
        )

    def test_ndarray_annotation_seeds(self):
        assert seeds_param(self._arg("def f(x: np.ndarray): pass"))

    def test_unit_suffix_name_seeds_without_annotation(self):
        assert seeds_param(self._arg("def f(energy_j): pass"))

    def test_self_never_seeds(self):
        assert not seeds_param(self._arg("def f(self): pass"))

    def test_plain_object_param_does_not_seed(self):
        assert not seeds_param(self._arg("def f(config): pass"))


class TestLatticePropagation:
    def test_elementwise_ufunc_preserves_lanes(self):
        shapes = analyze(
            """
            import numpy as np

            def f(x_j: float):
                y = np.exp(x_j) * 2.0
                return float(y)
            """
        )
        assert shapes.seeded == ("x_j",)
        assert len(shapes.coercions) == 1
        assert shapes.coercions[0].value.lanes

    def test_collapsing_ufunc_ends_tracking(self):
        shapes = analyze(
            """
            import numpy as np

            def f(samples: np.ndarray):
                total = np.sum(samples)
                return float(total)
            """
        )
        # float() of an already-collapsed reduction is not a hazard.
        assert shapes.coercions == []

    def test_branch_join_keeps_lanes_from_either_arm(self):
        shapes = analyze(
            """
            def f(power_w: float, flag):
                if flag:
                    y = power_w * 2.0
                else:
                    y = 0.0
                return float(y)
            """
        )
        assert len(shapes.coercions) == 1
        assert shapes.coercions[0].value.lanes

    def test_is_none_comparison_is_not_a_data_branch(self):
        shapes = analyze(
            """
            def f(power_w: float, cap=None):
                if cap is None:
                    cap = 1.0
                return power_w * cap
            """
        )
        assert shapes.branches == []

    def test_raise_only_guard_is_exempt(self):
        shapes = analyze(
            """
            def f(power_w: float):
                if power_w < 0:
                    raise ValueError("negative power")
                return power_w * 2.0
            """
        )
        assert shapes.branches == []

    def test_data_if_with_assignment_is_a_branch_event(self):
        shapes = analyze(
            """
            def f(power_w: float):
                if power_w > 1.0:
                    power_w = 1.0
                return power_w
            """
        )
        assert len(shapes.branches) == 1
        assert shapes.branches[0].construct == "if"

    def test_witness_chain_names_the_parameter(self):
        shapes = analyze(
            """
            import math

            def f(ci_g_per_kwh: float):
                scaled = ci_g_per_kwh * 2.0
                return math.sqrt(scaled)
            """
        )
        assert len(shapes.coercions) == 1
        described = shapes.coercions[0].value.describe()
        assert "ci_g_per_kwh" in described
        assert "[line" in described

    def test_math_fsum_is_exempt(self):
        shapes = analyze(
            """
            import math

            def f(samples_j: float):
                return math.fsum([samples_j, samples_j])
            """
        )
        assert shapes.coercions == []
        assert shapes.folds == []

    def test_sum_fold_over_lanes_iterable_recorded(self):
        shapes = analyze(
            """
            def f(values: np.ndarray):
                return sum(values)
            """
        )
        assert len(shapes.folds) == 1

    def test_sum_over_list_literal_is_a_table_not_lanes(self):
        # A fixed-size list literal is a *table* of terms (each may
        # broadcast); summing it is shape-stable, like integrate_power
        # summing its daily-window table.
        shapes = analyze(
            """
            def f(values_j: float):
                return sum([values_j, values_j])
            """
        )
        assert shapes.folds == []

    def test_loop_accumulation_over_lanes_is_a_fold(self):
        shapes = analyze(
            """
            def f(samples: np.ndarray):
                total = 0.0
                for s in samples:
                    total += s
                return total
            """
        )
        assert len(shapes.folds) == 1


class TestShapeValue:
    def test_collapse_flips_shape_and_extends_chain(self):
        value = ShapeValue("lanes").derived("parameter 'x'", 1)
        collapsed = value.collapsed("float()", 2)
        assert value.lanes and not collapsed.lanes
        assert "float()" in collapsed.describe()

    def test_chain_is_capped_in_describe(self):
        value = ShapeValue("lanes")
        for i in range(10):
            value = value.derived(f"step{i}", i)
        assert value.describe().endswith("<- ...")


class TestCrossModuleCapability:
    def test_helper_capability_resolved_through_import(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "helpers.py").write_text(
            textwrap.dedent(
                """
                import math

                def scalar_helper(x_j: float) -> float:
                    return math.sqrt(x_j)

                def array_helper(x_j: float) -> float:
                    return x_j * 2.0
                """
            )
        )
        source = textwrap.dedent(
            """
            from core.helpers import array_helper, scalar_helper
            """
        )
        tree = ast.parse(source)
        info = ModuleInfo.build(
            tree,
            path=pkg / "main.py",
            package_root=tmp_path,
            key=str(pkg / "main.py"),
        )
        program = ShapeProgram(
            parse=lambda p: ast.parse(p.read_text())
        )
        helpers = program.load_module(info, "core.helpers", 0)
        assert helpers is not None
        scalar_cap = program.capability(helpers, "scalar_helper")
        array_cap = program.capability(helpers, "array_helper")
        assert isinstance(scalar_cap, Capability)
        assert scalar_cap.kind == "scalar"
        assert "math.sqrt" in scalar_cap.reason
        assert "helpers.py:" in scalar_cap.where
        assert array_cap is not None and array_cap.kind == "array"

    def test_capability_memoized_and_cycle_safe(self, tmp_path):
        pkg = tmp_path / "core"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "loop.py").write_text(
            textwrap.dedent(
                """
                def a(x_j: float) -> float:
                    return b(x_j)

                def b(x_j: float) -> float:
                    return a(x_j)
                """
            )
        )
        tree = ast.parse("from core.loop import a\n")
        info = ModuleInfo.build(
            tree,
            path=pkg / "main.py",
            package_root=tmp_path,
            key=str(pkg / "main.py"),
        )
        program = ShapeProgram(
            parse=lambda p: ast.parse(p.read_text())
        )
        loop_mod = program.load_module(info, "core.loop", 0)
        assert loop_mod is not None
        first = program.capability(loop_mod, "a")
        second = program.capability(loop_mod, "a")
        assert first == second  # memoized, recursion did not explode
