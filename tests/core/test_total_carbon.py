"""Tests for tC vs lifetime and crossover analyses (Fig. 5a)."""

import pytest

from repro.core.carbon_intensity import ConstantCarbonIntensity
from repro.core.operational import (
    OperationalCarbonModel,
    OperationalPower,
    UsageScenario,
)
from repro.core.total_carbon import TotalCarbonModel
from repro.errors import CarbonModelError

SCENARIO = UsageScenario(24.0)
US = ConstantCarbonIntensity.from_grid("us")


def make_all_si():
    power = OperationalPower.from_energy_per_cycle(1.42e-12, 18.0e-12, 500e6)
    return TotalCarbonModel(
        embodied_g=3.11,
        operational=OperationalCarbonModel(power, US),
        scenario=SCENARIO,
        name="all-Si",
    )


def make_m3d():
    power = OperationalPower.from_energy_per_cycle(1.42e-12, 15.5e-12, 500e6)
    return TotalCarbonModel(
        embodied_g=3.63,
        operational=OperationalCarbonModel(power, US),
        scenario=SCENARIO,
        name="M3D",
    )


class TestBreakdown:
    def test_components(self):
        model = make_all_si()
        b = model.breakdown(24.0)
        assert b.embodied_g == 3.11
        assert b.operational_g == pytest.approx(5.39, abs=0.02)
        assert b.total_g == pytest.approx(8.50, abs=0.02)

    def test_default_lifetime_from_scenario(self):
        model = make_all_si()
        assert model.total_g() == pytest.approx(model.total_g(24.0))

    def test_embodied_fraction(self):
        model = make_all_si()
        early = model.breakdown(1.0)
        late = model.breakdown(24.0)
        assert early.embodied_fraction > 0.9
        assert late.embodied_fraction < 0.5

    def test_zero_lifetime_is_pure_embodied(self):
        b = make_all_si().breakdown(0.0)
        assert b.operational_g == 0.0
        assert b.total_g == b.embodied_g

    def test_negative_embodied_rejected(self):
        with pytest.raises(CarbonModelError):
            TotalCarbonModel(
                -1.0, make_all_si().operational, SCENARIO
            )


class TestDominanceCrossover:
    def test_all_si_dominance_at_14_months(self):
        """Paper: C_embodied dominates until ~14 months for all-Si."""
        months = make_all_si().operational_dominance_months()
        assert months == pytest.approx(13.85, abs=0.5)

    def test_m3d_dominance_at_19_months(self):
        """Paper: C_embodied dominates until ~19 months for M3D."""
        months = make_m3d().operational_dominance_months()
        assert months == pytest.approx(18.55, abs=0.7)

    def test_no_dominance_for_zero_power(self):
        model = TotalCarbonModel(
            3.0,
            OperationalCarbonModel(OperationalPower(), US),
            SCENARIO,
        )
        assert model.operational_dominance_months() is None

    def test_dominance_respects_max_months(self):
        model = make_all_si()
        assert model.operational_dominance_months(max_months=5.0) is None


class TestDesignCrossover:
    def test_m3d_overtakes_all_si(self):
        """tC lines cross where the M3D energy benefit repays its
        embodied premium: (3.63-3.11)/(0.2246-0.1957) ~ 18 months."""
        si, m3d = make_all_si(), make_m3d()
        months = si.crossover_months(m3d)
        assert months == pytest.approx(18.0, abs=0.5)
        # Symmetric query gives the same lifetime.
        assert m3d.crossover_months(si) == pytest.approx(months)

    def test_before_crossover_m3d_higher(self):
        si, m3d = make_all_si(), make_m3d()
        assert m3d.total_g(6.0) > si.total_g(6.0)

    def test_after_crossover_all_si_higher(self):
        si, m3d = make_all_si(), make_m3d()
        assert m3d.total_g(24.0) < si.total_g(24.0)

    def test_parallel_lines_never_cross(self):
        si = make_all_si()
        clone = make_all_si()
        clone.embodied_g = 5.0
        assert si.crossover_months(clone) is None

    def test_series_matches_point_queries(self):
        model = make_m3d()
        months = [1.0, 18.0, 24.0]
        series = model.series(months)
        for m, b in zip(months, series):
            assert b.total_g == pytest.approx(model.total_g(m))
