"""A compact nonlinear circuit simulator (MNA + Newton).

This package stands in for the SPICE simulations of Sec. III-B step 2:
the paper validates eDRAM timing "using SPICE circuit simulations, with
compact device models for Si CMOS, CNFETs, and IGZO FETs".  The simulator
implements:

- modified nodal analysis with voltage-source branch currents;
- Newton-Raphson DC operating point with gmin regularization, damping,
  and source stepping;
- fixed-step backward-Euler / trapezoidal transient analysis;
- waveform post-processing (threshold crossings, delays, energies).

It is a dense-matrix simulator intended for the bit-cell and sub-array
netlists of this reproduction (tens of nodes), not a general-purpose
SPICE replacement.
"""

from repro.spice.netlist import Circuit
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    FetElement,
    Resistor,
    VoltageSource,
)
from repro.spice.waveform import Waveform, PieceWiseLinear, Pulse, Dc
from repro.spice.dc import dc_operating_point
from repro.spice.transient import TransientResult, transient

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "FetElement",
    "Waveform",
    "Dc",
    "Pulse",
    "PieceWiseLinear",
    "dc_operating_point",
    "transient",
    "TransientResult",
]
