"""Required data-retention analysis from memory-access traces.

Sec. III-B step 4 of the paper: the .vcd waveforms are used to
"determine the exact number of memory accesses and required data
retention times (by analyzing reads/writes to specific memory
addresses)".  This module reproduces that analysis on the ISS: for every
word address it tracks the cycle of the last write and, at every read,
the elapsed write-to-read interval — the retention the eDRAM cell must
deliver for that datum.

The result answers the case study's key memory question: matmul-int
writes its matrices once and reads them for the whole ~40 ms run, so the
required retention (~run length) far exceeds the Si 3T cell's ~0.8 ms —
the all-Si design *must* refresh — while the IGZO cell's >1000 s covers
it outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import CpuError


@dataclass
class RetentionRequirement:
    """Aggregate write-to-read interval statistics for one region."""

    max_interval_cycles: int = 0
    total_intervals: int = 0
    sum_interval_cycles: int = 0
    reads_of_unwritten: int = 0

    @property
    def mean_interval_cycles(self) -> float:
        if self.total_intervals == 0:
            return 0.0
        return self.sum_interval_cycles / self.total_intervals

    def required_retention_s(self, clock_hz: float) -> float:
        """The retention time the memory must guarantee, in seconds."""
        if clock_hz <= 0:
            raise CpuError(f"clock must be > 0, got {clock_hz}")
        return self.max_interval_cycles / clock_hz


class AccessRecorder:
    """Records per-word-address write/read cycles on a memory map.

    Attach with :meth:`repro.cpu.memory.MemoryMap` regions via
    ``CortexM0(..., recorder=...)``; the simulator advances
    :attr:`current_cycle` every step.
    """

    def __init__(self) -> None:
        self.current_cycle = 0
        self._last_write: Dict[str, Dict[int, int]] = {}
        self._requirements: Dict[str, RetentionRequirement] = {}

    def _region(self, name: str) -> RetentionRequirement:
        if name not in self._requirements:
            self._requirements[name] = RetentionRequirement()
            self._last_write[name] = {}
        return self._requirements[name]

    def record(
        self, region: str, address: int, size: int, is_write: bool
    ) -> None:
        """Record one access; sub-word accesses count per word touched."""
        requirement = self._region(region)
        writes = self._last_write[region]
        word = address & ~3
        last_word = (address + size - 1) & ~3
        while word <= last_word:
            if is_write:
                writes[word] = self.current_cycle
            else:
                written_at = writes.get(word)
                if written_at is None:
                    requirement.reads_of_unwritten += 1
                else:
                    interval = self.current_cycle - written_at
                    requirement.total_intervals += 1
                    requirement.sum_interval_cycles += interval
                    if interval > requirement.max_interval_cycles:
                        requirement.max_interval_cycles = interval
            word += 4
    def requirement(self, region: str) -> RetentionRequirement:
        """Requirement stats for a region (empty stats if untouched)."""
        return self._requirements.get(region, RetentionRequirement())

    @property
    def regions(self) -> "tuple[str, ...]":
        return tuple(self._requirements)

    def words_live(self, region: str) -> int:
        """Number of distinct words ever written in a region."""
        return len(self._last_write.get(region, {}))


def analyze_workload_retention(
    workload,
    clock_hz: float = 500e6,
    max_cycles: int = 500_000_000,
) -> Dict[str, RetentionRequirement]:
    """Run a workload with retention recording; returns per-region stats.

    Note: recording every access is slow; use reduced workload
    configurations (the access *pattern* does not change with repeat
    counts, only the max interval grows with run length).
    """
    from repro.cpu import CortexM0, MemoryMap, assemble

    recorder = AccessRecorder()
    cpu = CortexM0(MemoryMap.embedded_system(), recorder=recorder)
    cpu.load_program(assemble(workload.source))
    cpu.run(max_cycles=max_cycles)
    return {
        region: recorder.requirement(region) for region in recorder.regions
    }
