"""Persistent content-addressed cache of workload results.

An ISS run is a pure function of the assembly source, the cycle budget,
and the simulator semantics.  This module memoizes
:class:`~repro.workloads.suite.WorkloadResult` on disk keyed by a
SHA-256 over exactly those inputs, so figure regeneration and repeated
benchmark builds reuse prior runs.

Cache directory resolution (first match wins):

1. the ``root`` argument to :class:`ResultCache`,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``~/.cache/repro-iss``.

Entries are single JSON files named ``<key>.json``.  A corrupted or
incomplete file is treated as a miss and deleted.  Bump
:data:`ISS_VERSION` whenever simulator semantics change observably —
every old entry then misses by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.workloads.suite import Workload, WorkloadResult, run_workload


def _cache_event(
    prefix: str, kind: str, bytes_read: int = 0, bytes_written: int = 0
) -> None:
    """Fold one cache access into the global metrics (one flag check)."""
    metrics = obs.get_metrics()
    if not metrics.enabled:
        return
    metrics.counter(f"{prefix}.{kind}").inc()
    if bytes_read:
        metrics.counter(f"{prefix}.bytes_read").inc(bytes_read)
    if bytes_written:
        metrics.counter(f"{prefix}.bytes_written").inc(bytes_written)

#: Version tag folded into every cache key.  Bump on any change to the
#: simulator, assembler, or result fields that alters observable output.
ISS_VERSION = "iss-1-fastpath"

#: Version tag for memoized analysis sweeps (Monte Carlo grids etc.).
#: Bump whenever sweep evaluation semantics change observably.
SWEEP_VERSION = "sweep-1"

_ENV_VAR = "REPRO_CACHE_DIR"

#: The numeric result fields persisted per entry (name -> type).
_RESULT_FIELDS = (
    ("checksum", int),
    ("cycles", int),
    ("instructions", int),
    ("program_reads", int),
    ("data_reads", int),
    ("data_writes", int),
    ("activity_factor", float),
)


def default_cache_dir() -> Path:
    """The cache root honoring ``REPRO_CACHE_DIR``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-iss"


def cache_key(
    workload: Workload, max_cycles: int, version: str = ISS_VERSION
) -> str:
    """SHA-256 hex digest identifying one (workload, budget, ISS) run.

    ``data_words`` joins the key only when non-empty: data-parameterized
    lane variants share source text and *must* key on their parameter
    words, while every pre-existing workload keeps its existing key.
    """
    fields = {
        "name": workload.name,
        "source": workload.source,
        "expected_checksum": workload.expected_checksum,
        "max_cycles": max_cycles,
        "iss_version": version,
    }
    if workload.data_words:
        fields["data_words"] = list(workload.data_words)
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed memoization of workload results.

    Thread/process-safe for concurrent writers of the *same* entry: the
    payload is deterministic, and writes go through an atomic rename.
    """

    def __init__(
        self, root: Optional[Path] = None, version: str = ISS_VERSION
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = version
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, workload: Workload, max_cycles: int) -> Path:
        return self.root / (
            cache_key(workload, max_cycles, self.version) + ".json"
        )

    # ------------------------------------------------------------------
    def get(
        self, workload: Workload, max_cycles: int
    ) -> Optional[WorkloadResult]:
        """The cached result, or ``None`` on miss.

        The returned result wraps the *requested* workload object; only
        the numeric outcome fields come from disk.  Corrupted entries
        count as misses and are removed.
        """
        path = self._path(workload, max_cycles)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            _cache_event("cache.iss", "misses")
            return None
        try:
            payload = json.loads(raw)
            fields = {}
            for name, typ in _RESULT_FIELDS:
                value = payload["result"][name]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    raise ValueError(f"bad field {name!r}")
                fields[name] = typ(value)
        except (ValueError, KeyError, TypeError):
            # Corrupted or stale-schema entry: drop it and miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            _cache_event("cache.iss", "corrupt", bytes_read=len(raw))
            _cache_event("cache.iss", "misses")
            return None
        self.hits += 1
        _cache_event("cache.iss", "hits", bytes_read=len(raw))
        return WorkloadResult(workload=workload, **fields)

    # ------------------------------------------------------------------
    def put(
        self, result: WorkloadResult, max_cycles: int
    ) -> Optional[Path]:
        """Persist a result; returns the entry path.

        Best-effort: an unwritable cache directory returns ``None``
        instead of failing the run the cache was meant to speed up.
        """
        path = self._path(result.workload, max_cycles)
        payload = {
            "schema": "repro-iss-result/1",
            "iss_version": self.version,
            "workload": result.workload.name,
            "max_cycles": max_cycles,
            "result": {
                name: getattr(result, name) for name, _ in _RESULT_FIELDS
            },
        }
        blob = json.dumps(payload, indent=2, sort_keys=True)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            return None
        _cache_event("cache.iss", "writes", bytes_written=len(blob))
        return path

    # ------------------------------------------------------------------
    def invalidate(self, workload: Workload, max_cycles: int) -> bool:
        """Drop one entry; ``True`` if it existed."""
        try:
            self._path(workload, max_cycles).unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry under the root; returns the count removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def sweep_key(payload: Dict[str, Any], version: str = SWEEP_VERSION) -> str:
    """SHA-256 hex digest over a canonical-JSON key payload.

    ``numpy`` arrays in the payload are keyed by shape + raw bytes so two
    sweeps over bit-identical inputs share an entry.
    """

    def canonical(value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return {
                "__ndarray__": hashlib.sha256(
                    np.ascontiguousarray(value).tobytes()
                ).hexdigest(),
                "shape": list(value.shape),
                "dtype": str(value.dtype),
            }
        if isinstance(value, dict):
            return {k: canonical(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [canonical(v) for v in value]
        return value

    blob = json.dumps(
        {"version": version, "payload": canonical(payload)}, sort_keys=True
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """Disk-backed memoization of analysis sweep grids.

    Same contract as :class:`ResultCache`, but the value is a single
    ``numpy`` array (e.g. a Monte Carlo win-probability grid) and the key
    is a caller-supplied payload of everything the grid depends on —
    scenario parameters, grid axes, and the drawn samples.  Entries are
    JSON files under ``<cache root>/sweeps``; corrupted entries miss and
    are removed.
    """

    def __init__(
        self, root: Optional[Path] = None, version: str = SWEEP_VERSION
    ) -> None:
        base = Path(root) if root is not None else default_cache_dir()
        self.root = base / "sweeps"
        self.version = version
        self.hits = 0
        self.misses = 0

    def _path(self, payload: Dict[str, Any]) -> Path:
        return self.root / (sweep_key(payload, self.version) + ".json")

    def get(self, payload: Dict[str, Any]) -> Optional[np.ndarray]:
        """The cached grid, or ``None`` on miss."""
        path = self._path(payload)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            _cache_event("cache.sweep", "misses")
            return None
        try:
            entry = json.loads(raw)
            grid = np.asarray(entry["grid"], dtype=entry["dtype"])
            grid = grid.reshape([int(n) for n in entry["shape"]])
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            _cache_event("cache.sweep", "corrupt", bytes_read=len(raw))
            _cache_event("cache.sweep", "misses")
            return None
        self.hits += 1
        _cache_event("cache.sweep", "hits", bytes_read=len(raw))
        return grid

    def put(
        self, payload: Dict[str, Any], grid: np.ndarray
    ) -> Optional[Path]:
        """Persist a grid; best-effort like :meth:`ResultCache.put`."""
        path = self._path(payload)
        entry = {
            "schema": "repro-sweep-grid/1",
            "version": self.version,
            "shape": list(grid.shape),
            "dtype": str(grid.dtype),
            "grid": np.asarray(grid).ravel().tolist(),
        }
        blob = json.dumps(entry)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            return None
        _cache_event("cache.sweep", "writes", bytes_written=len(blob))
        return path


def run_workload_cached(
    workload: Workload,
    max_cycles: int = 500_000_000,
    cache: Optional[ResultCache] = None,
) -> Tuple[WorkloadResult, bool]:
    """Run a workload through the cache.

    Returns ``(result, was_hit)``.  On a miss the workload executes on
    the ISS and the outcome is persisted before returning.
    """
    if cache is None:
        cache = ResultCache()
    cached = cache.get(workload, max_cycles)
    if cached is not None:
        return cached, True
    result = run_workload(workload, max_cycles=max_cycles)
    cache.put(result, max_cycles)
    return result, False
