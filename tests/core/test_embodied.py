"""Tests for MPA, GPA, and the Equation 2/5 embodied-carbon model.

The headline assertions reproduce Fig. 2c and the embodied rows of
Table II.
"""

import pytest

from repro.core.embodied import EmbodiedCarbonModel
from repro.core.gas import GasEmissionsModel
from repro.core.materials import MaterialContribution, MaterialsModel
from repro.errors import CarbonModelError
from repro.fab import build_all_si_process, build_m3d_process


@pytest.fixture(scope="module")
def all_si_model():
    return EmbodiedCarbonModel(
        build_all_si_process(), materials=MaterialsModel.for_all_si()
    )


@pytest.fixture(scope="module")
def m3d_model():
    return EmbodiedCarbonModel(
        build_m3d_process(), materials=MaterialsModel.for_m3d()
    )


class TestMaterialsModel:
    def test_si_wafer_footprint(self):
        """MPA = 500 g/cm^2 -> 3.5e5 g per 300 mm wafer (Sec. II-B)."""
        m = MaterialsModel.for_all_si()
        assert m.per_wafer_g() == pytest.approx(3.5e5, rel=0.02)

    def test_cnt_contribution_is_negligible(self):
        """Picograms of CNT x 14 kg/g is far below a milligram of CO2e."""
        m3d = MaterialsModel.for_m3d()
        breakdown = m3d.breakdown_g()
        assert breakdown["carbon nanotubes (2 tiers)"] < 1e-3
        assert breakdown["Si wafer"] > 1e5

    def test_duplicate_material_rejected(self):
        m = MaterialsModel()
        c = MaterialContribution("x", 1.0, 1.0)
        m.add_material(c)
        with pytest.raises(CarbonModelError, match="duplicate"):
            m.add_material(c)

    def test_custom_material_raises_mpa(self):
        m = MaterialsModel()
        base = m.mpa_g_per_cm2()
        m.add_material(MaterialContribution("exotic", 10.0, 1000.0))
        assert m.mpa_g_per_cm2() > base


class TestGasModel:
    def test_equation3_scaling(self):
        gas = GasEmissionsModel()
        si = build_all_si_process()
        m3d = build_m3d_process()
        assert gas.scaling_ratio(si.total_energy_kwh()) == pytest.approx(
            0.79, rel=1e-6
        )
        assert gas.scaling_ratio(m3d.total_energy_kwh()) == pytest.approx(
            1.22, rel=1e-6
        )

    def test_gpa_values(self):
        gas = GasEmissionsModel()
        assert gas.gpa_for_flow_g_per_cm2(
            build_all_si_process()
        ) == pytest.approx(0.79 * 200.0, rel=1e-6)

    def test_reference_gpa_recovered_at_reference_epa(self):
        gas = GasEmissionsModel()
        assert gas.gpa_g_per_cm2(885.0) == pytest.approx(200.0)

    def test_negative_epa_rejected(self):
        with pytest.raises(CarbonModelError):
            GasEmissionsModel().gpa_g_per_cm2(-1.0)


class TestEmbodiedWaferCarbon:
    """Fig. 2c: embodied carbon per wafer across grids."""

    def test_us_grid_all_si(self, all_si_model):
        result = all_si_model.evaluate("us")
        assert result.per_wafer_kg == pytest.approx(837.0, rel=0.005)

    def test_us_grid_m3d(self, m3d_model):
        result = m3d_model.evaluate("us")
        assert result.per_wafer_kg == pytest.approx(1100.0, rel=0.005)

    def test_average_ratio_is_1_31(self, all_si_model, m3d_model):
        """Headline result: M3D is on average 1.31x per wafer."""
        ratios = []
        for grid in ("us", "coal", "solar", "taiwan"):
            si = all_si_model.evaluate(grid).per_wafer_g
            m3d = m3d_model.evaluate(grid).per_wafer_g
            ratios.append(m3d / si)
        assert sum(ratios) / len(ratios) == pytest.approx(1.31, abs=0.02)

    def test_ratio_grows_with_grid_intensity(self, all_si_model, m3d_model):
        """Dirtier fab grid amplifies the M3D energy overhead."""
        def ratio(grid):
            return (
                m3d_model.evaluate(grid).per_wafer_g
                / all_si_model.evaluate(grid).per_wafer_g
            )

        assert ratio("solar") < ratio("us") < ratio("taiwan") < ratio("coal")

    def test_breakdown_sums_to_total(self, m3d_model):
        result = m3d_model.evaluate("us")
        parts = result.breakdown_per_wafer_g()
        assert sum(parts.values()) == pytest.approx(result.per_wafer_g)

    def test_facility_overhead_applied(self, all_si_model):
        result = all_si_model.evaluate("us")
        assert result.epa_facility_kwh_per_wafer == pytest.approx(
            result.epa_kwh_per_wafer * 1.4
        )

    def test_numeric_and_named_grid_agree(self, all_si_model):
        assert all_si_model.evaluate(380.0).per_wafer_g == pytest.approx(
            all_si_model.evaluate("us").per_wafer_g
        )

    def test_solar_fab_nearly_halves_m3d_footprint(self, m3d_model):
        dirty = m3d_model.evaluate("us").per_wafer_g
        clean = m3d_model.evaluate("solar").per_wafer_g
        assert clean < 0.6 * dirty

    def test_per_wafer_by_grid_covers_all_grids(self, all_si_model):
        results = all_si_model.per_wafer_by_grid()
        assert set(results) == {"us", "coal", "solar", "taiwan"}


class TestPerDieCarbon:
    """Equation 5 and the Table II per-good-die rows."""

    def test_good_die_all_si(self, all_si_model):
        result = all_si_model.evaluate("us")
        # Paper: 299,127 dies/wafer, 90% yield -> 3.11 g per good die.
        assert result.per_good_die_g(299127, 0.90) == pytest.approx(
            3.11, abs=0.01
        )

    def test_good_die_m3d(self, m3d_model):
        result = m3d_model.evaluate("us")
        # Paper: 606,238 dies/wafer, 50% yield -> 3.63 g per good die.
        assert result.per_good_die_g(606238, 0.50) == pytest.approx(
            3.63, abs=0.01
        )

    def test_good_die_ratio_1_17(self, all_si_model, m3d_model):
        si = all_si_model.evaluate("us").per_good_die_g(299127, 0.90)
        m3d = m3d_model.evaluate("us").per_good_die_g(606238, 0.50)
        assert m3d / si == pytest.approx(1.17, abs=0.01)

    def test_yield_validation(self, all_si_model):
        result = all_si_model.evaluate("us")
        with pytest.raises(CarbonModelError):
            result.per_good_die_g(1000, 0.0)
        with pytest.raises(CarbonModelError):
            result.per_good_die_g(1000, 1.5)
        with pytest.raises(CarbonModelError):
            result.per_die_g(0)

    def test_for_area_scales_linearly(self, all_si_model):
        result = all_si_model.evaluate("us")
        assert result.for_area(2.0) == pytest.approx(2 * result.for_area(1.0))
        with pytest.raises(CarbonModelError):
            result.for_area(-1.0)


class TestModelValidation:
    def test_facility_overhead_below_one_rejected(self):
        with pytest.raises(CarbonModelError):
            EmbodiedCarbonModel(build_all_si_process(), facility_overhead=0.9)
