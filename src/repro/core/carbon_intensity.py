"""Carbon-intensity models (CI_fab and CI_use).

Carbon intensity is expressed in gCO2e per kWh, the unit in which grid data
is published (Fig. 2c of the paper).  Two kinds of profile are provided:

- :class:`ConstantCarbonIntensity` — a fixed grid value (used for CI_fab
  and as the simplest CI_use model);
- :class:`DailyWindowProfile` — a day-periodic profile with per-window
  values, supporting the paper's 8-to-10 pm usage-window analysis
  (the indicator function of Equation 6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro import units
from repro.errors import CarbonModelError

#: Grid carbon intensities used in the paper (gCO2e/kWh): US, coal-heavy,
#: solar, and Taiwanese grids (Fig. 2c, refs [4], [20]).
GRIDS: Dict[str, float] = {
    "us": 380.0,
    "coal": 820.0,
    "solar": 48.0,
    "taiwan": 563.0,
}


def grid_intensity(name: str) -> float:
    """Look up a named grid's carbon intensity in gCO2e/kWh."""
    try:
        return GRIDS[name.lower()]
    except KeyError:
        raise CarbonModelError(
            f"unknown grid {name!r}; known grids: {sorted(GRIDS)}"
        ) from None


class CarbonIntensity(abc.ABC):
    """Time-varying carbon intensity CI(t), in gCO2e/kWh."""

    @abc.abstractmethod
    def at(self, t_seconds: float) -> float:
        """CI value at absolute time ``t_seconds`` (from system birth)."""

    @abc.abstractmethod
    def mean_over_window(
        self, window_start_hour: float, window_end_hour: float
    ) -> float:
        """Average CI over a daily [start, end) hour-of-day window."""

    def integrate_power(
        self,
        power_watts: float,
        t_life_seconds: float,
        active_windows: Sequence[Tuple[float, float]],
    ) -> float:
        """Equation 1/7: integrate CI(t) * P(t) dt over the lifetime.

        ``P(t)`` is ``power_watts`` inside the daily ``active_windows``
        (hour-of-day pairs) and zero outside — the indicator-function form
        of Equation 6.  Returns grams CO2e.
        """
        if np.any(power_watts < 0):
            raise CarbonModelError(f"power must be >= 0, got {power_watts}")
        if np.any(t_life_seconds < 0):
            raise CarbonModelError(f"lifetime must be >= 0, got {t_life_seconds}")
        total_g = 0.0
        # The accumulation runs over the daily-window *table*, not over
        # batched model lanes; each term broadcasts over an array-valued
        # ``power_watts``, so the scalar fold is shape-stable.
        for start_h, end_h in active_windows:  # repro-lint: disable=RPL015 - sums the window table; terms broadcast over power_watts
            if (
                np.any(start_h < 0.0)
                or np.any(end_h < start_h)
                or np.any(end_h > 24.0)
            ):
                raise CarbonModelError(
                    f"bad daily window ({start_h}, {end_h}); need "
                    f"0 <= start <= end <= 24"
                )
            hours_per_day = end_h - start_h
            mean_ci = self.mean_over_window(start_h, end_h)  # g/kWh
            active_seconds = t_life_seconds * hours_per_day / 24.0
            energy_kwh = power_watts * active_seconds / units.KWH
            total_g += mean_ci * energy_kwh
        return total_g


@dataclass(frozen=True)
class ConstantCarbonIntensity(CarbonIntensity):
    """A constant CI(t) = value (gCO2e/kWh)."""

    value_g_per_kwh: float
    name: str = ""

    def __post_init__(self) -> None:
        if np.any(self.value_g_per_kwh < 0):
            raise CarbonModelError(
                f"carbon intensity must be >= 0, got {self.value_g_per_kwh}"
            )

    @classmethod
    def from_grid(cls, grid: str) -> "ConstantCarbonIntensity":
        return cls(grid_intensity(grid), name=grid)

    def at(self, t_seconds: float) -> float:
        return self.value_g_per_kwh

    def mean_over_window(
        self, window_start_hour: float, window_end_hour: float
    ) -> float:
        return self.value_g_per_kwh

    def scaled(self, factor: float) -> "ConstantCarbonIntensity":
        """A new profile scaled by ``factor`` (for uncertainty sweeps)."""
        if factor < 0:
            raise CarbonModelError(f"scale factor must be >= 0, got {factor}")
        suffix = f"x{factor:g}" if self.name else ""
        return ConstantCarbonIntensity(
            self.value_g_per_kwh * factor, name=f"{self.name}{suffix}"
        )


class DailyWindowProfile(CarbonIntensity):
    """Day-periodic CI profile defined by hourly breakpoints.

    Args:
        breakpoints: Sequence of ``(start_hour, ci_value)`` pairs sorted by
            hour; each value holds until the next breakpoint (wrapping at
            24 h).  Example — a grid that is dirtier in the evening::

                DailyWindowProfile([(0, 350.0), (18, 450.0), (22, 380.0)])
    """

    def __init__(
        self, breakpoints: Sequence[Tuple[float, float]], name: str = ""
    ) -> None:
        if not breakpoints:
            raise CarbonModelError("need at least one breakpoint")
        hours = [h for h, _v in breakpoints]
        if hours != sorted(hours) or len(set(hours)) != len(hours):
            raise CarbonModelError("breakpoint hours must be strictly increasing")
        if hours[0] != 0.0:  # repro-lint: disable=RPL004 - literal-input check
            raise CarbonModelError("first breakpoint must be at hour 0")
        if any(not (0.0 <= h < 24.0) for h in hours):
            raise CarbonModelError("breakpoint hours must lie in [0, 24)")
        if any(v < 0 for _h, v in breakpoints):
            raise CarbonModelError("carbon intensity values must be >= 0")
        self._breakpoints = list(breakpoints)
        self._starts = np.array([h for h, _v in self._breakpoints])
        self._values = np.array([v for _h, v in self._breakpoints])
        self.name = name

    def at(self, t_seconds: "float | np.ndarray") -> "float | np.ndarray":
        """CI at time(s) ``t_seconds``; accepts scalars or arrays.

        Pure selection (``searchsorted`` against the breakpoint hours),
        so array lanes are bit-identical to per-element scalar calls.
        """
        hour = (np.asarray(t_seconds, dtype=float) / units.HOUR) % 24.0
        idx = np.searchsorted(self._starts, hour, side="right") - 1
        value = self._values[idx]
        return float(value) if np.isscalar(t_seconds) else value

    def mean_over_window(
        self, window_start_hour: float, window_end_hour: float
    ) -> float:
        """Exact time-weighted mean over a daily hour-of-day window."""
        if window_end_hour <= window_start_hour:
            raise CarbonModelError("window end must be after start")
        edges = [h for h, _v in self._breakpoints] + [24.0]
        total = 0.0
        for i, (start_h, value) in enumerate(self._breakpoints):
            seg_start, seg_end = start_h, edges[i + 1]
            lo = max(seg_start, window_start_hour)
            hi = min(seg_end, window_end_hour)
            if hi > lo:
                total += value * (hi - lo)
        return total / (window_end_hour - window_start_hour)
