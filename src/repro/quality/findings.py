"""Finding and severity types shared by every repro-lint rule.

A :class:`Finding` is one diagnostic anchored to a file position.  Its
:meth:`Finding.fingerprint` deliberately excludes the line *number* —
baselined findings stay suppressed when unrelated edits shift code up
or down, and resurface only when the flagged line itself changes.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


class Severity(enum.Enum):
    """Per-rule severity; the CLI maps these to exit codes."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule.

    ``path`` is repo-relative (POSIX separators) whenever the linted
    file sits under the lint root, so fingerprints are stable across
    checkouts.  ``snippet`` is the stripped source line the finding
    anchors to; it doubles as the fingerprint's position-independent
    anchor.
    """

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR
    snippet: str = ""
    symbol: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Position-independent identity used for baseline matching."""
        blob = "\x1f".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line ``path:line:col: RULE [severity] message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
