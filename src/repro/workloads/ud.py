"""ud: software unsigned-division stress (after Embench's ``ud``).

The Cortex-M0 has no hardware divider, so division-heavy embedded code
spends its time in ``__aeabi_uidiv``-style shift-subtract routines.  This
kernel sums ``n / d`` and ``n % d`` over LCG operand pairs using a
restoring shift-subtract divider.
"""

from __future__ import annotations

from repro.workloads.suite import Workload

PAIRS = 256
REPEATS = 4
LCG_SEED = 1111
LCG_MUL = 1664525
LCG_ADD = 1013904223

_TEMPLATE = """
_start:
    movs r7, #{repeats}
    movs r6, #0
repeat_loop:
    bl divsum
    adds r6, r6, r0
    subs r7, r7, #1
    bne repeat_loop
    mov r0, r6
    bkpt #0

@ r0 = sum of (n/d + n%d) over LCG pairs.
divsum:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, ={seed}       @ LCG state
    movs r5, #0           @ checksum
    ldr r6, ={pairs}      @ counter
pair_loop:
    @ n = next LCG >> 8 ; d = (next LCG >> 20) + 1
    ldr r0, ={lcg_mul}
    muls r4, r0
    ldr r0, ={lcg_add}
    adds r4, r4, r0
    lsrs r0, r4, #8       @ n
    push {{r0}}
    ldr r1, ={lcg_mul}
    muls r4, r1
    ldr r1, ={lcg_add}
    adds r4, r4, r1
    lsrs r1, r4, #20
    adds r1, r1, #1       @ d >= 1
    pop {{r0}}
    bl udivmod            @ r0 = n/d, r1 = n%d
    adds r5, r5, r0
    adds r5, r5, r1
    subs r6, r6, #1
    bne pair_loop
    mov r0, r5
    pop {{r4, r5, r6, r7, pc}}

@ Restoring shift-subtract divider: (r0, r1) = (r0 / r1, r0 % r1).
udivmod:
    push {{r4, r5, r6, lr}}
    movs r2, #0           @ quotient
    movs r3, #0           @ remainder
    movs r4, #32          @ bit counter
ud_loop:
    lsls r3, r3, #1       @ remainder <<= 1
    lsls r0, r0, #1       @ shift out top bit of n, C = bit
    bcc ud_nocarry
    adds r3, r3, #1
ud_nocarry:
    lsls r2, r2, #1       @ quotient <<= 1
    cmp r3, r1
    blo ud_next
    subs r3, r3, r1
    adds r2, r2, #1
ud_next:
    subs r4, r4, #1
    bne ud_loop
    mov r0, r2
    mov r1, r3
    pop {{r4, r5, r6, pc}}
"""


def source(pairs: int = PAIRS, repeats: int = REPEATS) -> str:
    return _TEMPLATE.format(
        pairs=pairs,
        repeats=repeats,
        seed=LCG_SEED,
        lcg_mul=LCG_MUL,
        lcg_add=LCG_ADD,
    )


def golden_checksum(pairs: int = PAIRS, repeats: int = REPEATS) -> int:
    x = LCG_SEED
    total = 0
    for _ in range(pairs):
        x = (x * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        n = x >> 8
        x = (x * LCG_MUL + LCG_ADD) & 0xFFFFFFFF
        d = (x >> 20) + 1
        total = (total + n // d + n % d) & 0xFFFFFFFF
    return (total * repeats) & 0xFFFFFFFF


def workload(pairs: int = PAIRS, repeats: int = REPEATS) -> Workload:
    return Workload(
        name="ud",
        description=f"software udiv/umod over {pairs} pairs, {repeats} repeats",
        source=source(pairs, repeats),
        expected_checksum=golden_checksum(pairs, repeats),
    )
