"""Fabrication-process modeling substrate.

This package models semiconductor fabrication flows as sequences of process
steps, each belonging to one of six *process areas* (Sec. II-C of the
paper): dry etch, lithography, metallization, metrology, wet etch, and
deposition.  Electrical energy per area (EPA) is obtained by multiplying a
step-count matrix by a per-step energy vector (Equation 4).

Public entry points:

- :func:`repro.fab.processes.build_all_si_process` — baseline 7 nm all-Si
  CMOS flow (9 metal layers, ASAP7-style pitches).
- :func:`repro.fab.processes.build_m3d_process` — M3D flow with two CNFET
  tiers and one IGZO tier in the BEOL (15 metal layers).
- :class:`repro.fab.flow.ProcessFlow` — the flow container with
  ``total_energy_kwh()``, ``step_count_matrix()`` and segment accounting.
"""

from repro.fab.steps import LithographyMethod, ProcessArea, ProcessStep
from repro.fab.flow import FlowSegment, ProcessFlow
from repro.fab.processes import (
    build_all_si_process,
    build_m3d_process,
)

__all__ = [
    "LithographyMethod",
    "ProcessArea",
    "ProcessStep",
    "FlowSegment",
    "ProcessFlow",
    "build_all_si_process",
    "build_m3d_process",
]
