"""repro-lint: an AST-based correctness linter for this repository.

The model's credibility rests on invariants the test suite cannot see:
every quantity is SI-with-suffix (``_j``, ``_mm2``, ``_kg`` per
:mod:`repro.units`), every artifact must be bit-reproducible under a
fixed seed, and every cached function must be pure.  This package
checks those invariants statically:

- :mod:`repro.quality.dimensions` — suffix -> dimension/scale table
  (simple and ``_per_`` composite rates) derived from :mod:`repro.units`;
- :mod:`repro.quality.flow` — dataflow unit-inference engine: a
  ``(dimension, scale)`` abstract interpretation over each function
  plus cross-module return-unit propagation, feeding RPL006-RPL008;
- :mod:`repro.quality.concurrency` — the concurrency analysis layer:
  blocking-call classification with transitive witnesses and per-class
  lock-discipline inference, feeding RPL009-RPL012;
- :mod:`repro.quality.shapes` — shape/broadcast abstract
  interpretation: an ``(is_array_capable, broadcast_shape)`` lattice
  over model-data parameters with cross-module capability inference,
  feeding the vectorization-safety rules RPL013-RPL016;
- :mod:`repro.quality.vectorcheck` — the dynamic complement
  (``repro vectorcheck``): scalar-vs-array differential execution of
  every public model function, committed as
  ``benchmarks/output/VECTOR_capability.json``;
- :mod:`repro.quality.rules` — the rule set (RPL001-RPL016);
- :mod:`repro.quality.engine` — file walking, pragma suppression,
  reporting, and the ``--jobs`` process-parallel fan-out;
- :mod:`repro.quality.baseline` — committed grandfathered findings
  (``repro-lint-baseline.json``);
- :mod:`repro.quality.pragmas` — ``# repro-lint: disable=...`` and
  ``# repro-lint: cache-pure`` inline pragmas;
- :mod:`repro.quality.pragma_audit` — stale/unknown pragma detection
  (``repro lint --audit-pragmas``);
- :mod:`repro.quality.sarif` — SARIF 2.1.0 export
  (``repro lint --format sarif``);
- :mod:`repro.quality.sanitizer` — the tsan-lite *runtime* race
  harness (``repro sanitize``), the dynamic complement to RPL011.

Run it as ``repro lint`` (or ``python -m repro lint``); see the README
"Static analysis" section for the rule table and baseline workflow.
"""

from repro.quality.baseline import BASELINE_FILENAME, Baseline
from repro.quality.dimensions import (
    SUFFIX_TABLE,
    CompositeUnit,
    UnitSuffix,
    composite_of,
    resolve_unit,
    suffix_of,
)
from repro.quality.engine import (
    FileContext,
    LintEngine,
    LintReport,
    find_package_root,
    iter_python_files,
    lint_paths,
)
from repro.quality.findings import Finding, Severity
from repro.quality.pragma_audit import (
    PragmaAuditEntry,
    audit_paths,
    render_audit,
)
from repro.quality.pragmas import PragmaMap, parse_pragmas
from repro.quality.rules import RULE_REGISTRY, Rule, default_rules
from repro.quality.sanitizer import (
    Sanitizer,
    SanitizerReport,
    run_pytest as sanitize_pytest,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "SUFFIX_TABLE",
    "CompositeUnit",
    "UnitSuffix",
    "composite_of",
    "resolve_unit",
    "suffix_of",
    "FileContext",
    "LintEngine",
    "LintReport",
    "find_package_root",
    "iter_python_files",
    "lint_paths",
    "Finding",
    "Severity",
    "PragmaAuditEntry",
    "audit_paths",
    "render_audit",
    "PragmaMap",
    "parse_pragmas",
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "Sanitizer",
    "SanitizerReport",
    "sanitize_pytest",
]
