"""Monte Carlo cell-to-cell variation for the eDRAM bit cell.

Process variation shifts each cell's write-FET threshold voltage
(random dopant/trap fluctuation; sigma ~20-40 mV at these dimensions).
V_T variation moves both sides of the cell's central trade-off:

- retention: higher V_T -> exponentially *less* hold leakage (longer
  retention); lower V_T -> shorter retention;
- write delay: higher V_T -> less overdrive -> slower writes.

This module samples cell populations, reports the distribution tails,
and estimates the fraction of cells violating either the cycle budget
or the refresh interval — the variation component behind the paper's
conservative yield assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.edram.bitcell import BitcellDesign, m3d_bitcell
from repro.edram.retention import retention_time_s
from repro.edram.subarray import SubArrayDesign
from repro.edram.timing import simulate_write
from repro.errors import AnalysisError


def _with_vt_shift(cell: BitcellDesign, shift_v: float) -> BitcellDesign:
    """A cell whose write FET V_T is shifted by ``shift_v``."""
    original_factory = cell.write_fet

    def shifted_factory(name: str, width: float):
        fet = original_factory(name, width)
        fet.params = replace(fet.params, vt0_v=fet.params.vt0_v + shift_v)
        return fet

    return replace(cell, write_fet=shifted_factory)


@dataclass
class VariationResult:
    """Monte Carlo population statistics."""

    vt_sigma_v: float
    n_samples: int
    retention_s: np.ndarray
    write_delay_s: np.ndarray
    write_budget_s: float
    refresh_interval_s: float

    @property
    def write_failure_fraction(self) -> float:
        return float(np.mean(self.write_delay_s > self.write_budget_s))

    @property
    def retention_failure_fraction(self) -> float:
        return float(np.mean(self.retention_s < self.refresh_interval_s))

    @property
    def cell_failure_fraction(self) -> float:
        fails = (self.write_delay_s > self.write_budget_s) | (
            self.retention_s < self.refresh_interval_s
        )
        return float(np.mean(fails))

    def retention_percentile_s(self, percentile: float) -> float:
        return float(np.percentile(self.retention_s, percentile))


def monte_carlo_cell_variation(
    cell: Optional[BitcellDesign] = None,
    vt_sigma_v: float = 0.03,
    n_samples: int = 500,
    clock_hz: float = 500e6,
    write_budget_fraction: float = 0.8,
    refresh_interval_s_target: float = 60.0,
    rng: Optional[np.random.Generator] = None,
    nominal_write_delay_s: Optional[float] = None,
) -> VariationResult:
    """Sample a cell population over write-FET V_T variation.

    Retention uses the exact closed form per sample.  Write delay uses
    the nominal SPICE-simulated delay scaled by the drive-current ratio
    at the mid-write operating point — accurate to a few percent and
    ~10^4x faster than per-sample transients (the nominal point is
    simulated once).

    Args:
        cell: Bit cell (default: the M3D cell).
        vt_sigma_v: Per-cell V_T standard deviation.
        n_samples: Population size.
        clock_hz: System clock (write budget = fraction / clock).
        write_budget_fraction: Fraction of the period available to the
            cell write (the rest is decode/drive, as in BitcellTiming).
        refresh_interval_s_target: Retention every cell must meet (the
            array refresh period).
        rng: Random generator (seeded for reproducibility by default).
        nominal_write_delay_s: Skip the nominal SPICE run by supplying
            the delay (used by tests).
    """
    if vt_sigma_v < 0:
        raise AnalysisError("V_T sigma must be >= 0")
    if n_samples <= 0:
        raise AnalysisError("need at least one sample")
    design = cell if cell is not None else m3d_bitcell()
    generator = rng if rng is not None else np.random.default_rng(1)

    if nominal_write_delay_s is None:
        nominal_write_delay_s, _wave = simulate_write(SubArrayDesign(design))

    # Nominal mid-write drive current.
    nominal_fet = design.make_write_fet()
    v_mid = design.vdd_v / 2.0
    i_nominal = nominal_fet.ids(design.v_wwl_v - v_mid, design.vdd_v - v_mid)
    if i_nominal <= 0:
        raise AnalysisError("nominal write FET does not conduct")

    shifts = generator.normal(0.0, vt_sigma_v, size=n_samples)
    retention = np.empty(n_samples)
    write_delay = np.empty(n_samples)
    for i, shift in enumerate(shifts):
        shifted = _with_vt_shift(design, float(shift))
        retention[i] = retention_time_s(shifted)
        fet = shifted.make_write_fet()
        current = fet.ids(
            design.v_wwl_v - v_mid, design.vdd_v - v_mid
        )
        write_delay[i] = nominal_write_delay_s * i_nominal / max(
            current, 1e-30
        )
    return VariationResult(
        vt_sigma_v=vt_sigma_v,
        n_samples=n_samples,
        retention_s=retention,
        write_delay_s=write_delay,
        write_budget_s=write_budget_fraction / clock_hz,
        refresh_interval_s=refresh_interval_s_target,
    )
