"""Tests for gate cells, netlists, and static timing analysis."""

import pytest

from repro.errors import PhysicalDesignError
from repro.physical.gates import (
    GATE_TYPES,
    gate_delay_s,
    gate_energy_j,
    gate_tau_s,
)
from repro.physical.netlist_sta import GateNetlist, build_row_decoder
from repro.physical.stdcells import VtFlavor


class TestGateDelay:
    def test_delay_linear_in_load(self):
        inv = GATE_TYPES["INV"]
        d1 = gate_delay_s(inv, VtFlavor.RVT, 1e-15)
        d2 = gate_delay_s(inv, VtFlavor.RVT, 2e-15)
        d3 = gate_delay_s(inv, VtFlavor.RVT, 3e-15)
        assert d3 - d2 == pytest.approx(d2 - d1, rel=1e-9)

    def test_upsizing_reduces_delay(self):
        nand = GATE_TYPES["NAND2"]
        assert gate_delay_s(nand, VtFlavor.RVT, 5e-15, size=4.0) < gate_delay_s(
            nand, VtFlavor.RVT, 5e-15, size=1.0
        )

    def test_flavor_speed_ordering(self):
        inv = GATE_TYPES["INV"]
        delays = [
            gate_delay_s(inv, flavor, 2e-15)
            for flavor in VtFlavor.ordered()
        ]
        assert delays == sorted(delays, reverse=True)  # HVT slowest

    def test_nand_slower_than_inv_at_same_load(self):
        load = 2e-15
        assert gate_delay_s(
            GATE_TYPES["NAND2"], VtFlavor.RVT, load
        ) > gate_delay_s(GATE_TYPES["INV"], VtFlavor.RVT, load)

    def test_energy_includes_load(self):
        inv = GATE_TYPES["INV"]
        assert gate_energy_j(inv, 2e-15) > gate_energy_j(inv, 0.0)

    def test_validation(self):
        inv = GATE_TYPES["INV"]
        with pytest.raises(PhysicalDesignError):
            gate_delay_s(inv, VtFlavor.RVT, 1e-15, size=0.0)
        with pytest.raises(PhysicalDesignError):
            gate_delay_s(inv, VtFlavor.RVT, -1e-15)

    def test_tau_positive(self):
        assert gate_tau_s(VtFlavor.RVT) > 0


class TestGateNetlist:
    def _inverter_chain(self, n=4):
        netlist = GateNetlist("chain")
        netlist.add_input("in")
        prev = "in"
        for i in range(n):
            out = f"n{i}"
            netlist.add_gate(f"inv{i}", "INV", [prev], out)
            prev = out
        netlist.add_output(prev)
        return netlist

    def test_chain_delay_accumulates(self):
        short = self._inverter_chain(2).sta()
        long = self._inverter_chain(6).sta()
        assert long.critical_delay_s > short.critical_delay_s

    def test_critical_path_is_whole_chain(self):
        report = self._inverter_chain(4).sta()
        assert report.critical_path == ["inv0", "inv1", "inv2", "inv3"]

    def test_parallel_paths_take_max(self):
        netlist = GateNetlist("diamond")
        netlist.add_input("in")
        netlist.add_gate("fast", "INV", ["in"], "a")
        netlist.add_gate("slow1", "INV", ["in"], "b0")
        netlist.add_gate("slow2", "INV", ["b0"], "b1")
        netlist.add_gate("slow3", "INV", ["b1"], "b")
        netlist.add_gate("merge", "NAND2", ["a", "b"], "out")
        netlist.add_output("out")
        report = netlist.sta()
        assert "slow3" in report.critical_path
        assert "fast" not in report.critical_path

    def test_two_drivers_rejected(self):
        netlist = GateNetlist()
        netlist.add_input("in")
        netlist.add_gate("g1", "INV", ["in"], "out")
        with pytest.raises(PhysicalDesignError, match="two drivers"):
            netlist.add_gate("g2", "INV", ["in"], "out")

    def test_undriven_net_detected(self):
        netlist = GateNetlist()
        netlist.add_input("in")
        netlist.add_gate("g1", "NAND2", ["in", "ghost"], "out")
        netlist.add_output("out")
        with pytest.raises(PhysicalDesignError, match="undriven"):
            netlist.sta()

    def test_combinational_loop_detected(self):
        netlist = GateNetlist()
        netlist.add_input("in")
        netlist.add_gate("g1", "NAND2", ["in", "b"], "a")
        netlist.add_gate("g2", "INV", ["a"], "b")
        netlist.add_output("b")
        with pytest.raises(PhysicalDesignError, match="loop"):
            netlist.sta()

    def test_unknown_gate_type(self):
        netlist = GateNetlist()
        netlist.add_input("in")
        with pytest.raises(PhysicalDesignError, match="unknown gate type"):
            netlist.add_gate("g", "FLUXCAP", ["in"], "out")

    def test_net_load_slows_path(self):
        light = self._inverter_chain(3)
        heavy = self._inverter_chain(3)
        heavy.set_net_load("n2", 50e-15)
        assert heavy.sta().critical_delay_s > light.sta().critical_delay_s

    def test_energy_and_area_positive(self):
        netlist = self._inverter_chain(5)
        assert netlist.total_energy_j() > 0
        assert netlist.total_area_um2() > 0
        with pytest.raises(PhysicalDesignError):
            netlist.total_energy_j(activity=2.0)

    def test_slack_and_meets(self):
        report = self._inverter_chain(3).sta()
        assert report.meets(100e6)
        assert not report.meets(1e14)


class TestRowDecoder:
    def test_decoder_fits_cycle_margin(self):
        """The 128-row decoder must fit in the non-access fraction
        (20%) of the 2 ns cycle — the paper's timing-budget split."""
        decoder = build_row_decoder(address_bits=7)
        report = decoder.sta(VtFlavor.RVT)
        assert report.critical_delay_s < 0.2 * 2e-9

    def test_more_address_bits_slower(self):
        d7 = build_row_decoder(7).sta().critical_delay_s
        d10 = build_row_decoder(10).sta().critical_delay_s
        assert d10 > d7

    def test_wordline_driver_on_critical_path(self):
        report = build_row_decoder(7).sta()
        assert report.critical_path[-1] == "wldrv"

    def test_heavier_wordline_slower(self):
        light = build_row_decoder(7, wordline_cap_f=5e-15).sta()
        heavy = build_row_decoder(7, wordline_cap_f=80e-15).sta()
        assert heavy.critical_delay_s > light.critical_delay_s

    def test_validation(self):
        with pytest.raises(PhysicalDesignError):
            build_row_decoder(address_bits=1)

    def test_hvt_decoder_still_fits(self):
        """Periphery uses HVT for leakage; it must still make timing."""
        report = build_row_decoder(7).sta(VtFlavor.HVT)
        assert report.critical_delay_s < 0.3 * 2e-9
