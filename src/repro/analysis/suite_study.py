"""Beyond the paper: the PPAtC comparison across the whole workload suite.

The paper's case study quantifies one workload (matmul-int).  Its
framework, however, is application-dependent by construction — the eDRAM
energy follows the access profile, the core energy follows the activity
factor.  This module runs every Embench-style workload through the same
flow and reports the per-workload carbon-efficiency verdict.

Because both designs run the same binary for the same cycle count, the
tCDP ratio per workload reduces to the tC ratio, driven by how
memory-intensive the workload is: more accesses per cycle widen the M3D
design's energy advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.case_study import (
    build_all_si_system,
    build_m3d_system,
)
from repro.core.operational import UsageScenario
from repro.workloads import (
    crc32, edn, fib, matmul_int, primecount, sort, st, ud,
)
from repro.workloads.suite import Workload


def default_study_configs() -> List[Workload]:
    """Reduced-length configurations (access *rates* are length-stable)."""
    return [
        matmul_int.workload(repeats=2, tune=1, pads=0),
        crc32.workload(length=512, repeats=2),
        edn.workload(length=128, taps=16, repeats=2),
        primecount.workload(limit=2048, repeats=2),
        fib.workload(k=48, repeats=16),
        ud.workload(pairs=128, repeats=2),
        st.workload(length=128, repeats=4),
        sort.workload(length=64, repeats=2),
    ]


def seed_variant_configs(n_variants: int = 8) -> List[Workload]:
    """Seed-parameterized matmul variants sharing one program text.

    Every variant differs only in its data word, so the vector runner
    executes the whole set as a single N-lane lockstep group — the
    multi-configuration sweep the vector engine was built for.
    """
    return [
        matmul_int.seed_variant(12345 + 7919 * i, repeats=2, tune=1)
        for i in range(n_variants)
    ]


@dataclass
class WorkloadStudyRow:
    """One workload's PPAtC outcome."""

    name: str
    cycles: int
    cpi: float
    accesses_per_cycle: float
    si_memory_energy_pj: float
    m3d_memory_energy_pj: float
    si_power_mw: float
    m3d_power_mw: float
    tcdp_ratio_m3d_over_si: float
    crossover_months: Optional[float]

    @property
    def m3d_wins(self) -> bool:
        return self.tcdp_ratio_m3d_over_si < 1.0


def run_suite_study(
    lifetime_months: float = 24.0,
    clock_hz: float = 500e6,
    configs: Optional[List[Workload]] = None,
    grid: str = "us",
    jobs: Optional[int] = None,
    cache=None,
    vector: bool = False,
) -> List[WorkloadStudyRow]:
    """Run the whole suite through the PPAtC flow at one lifetime.

    ISS runs go through :func:`repro.runtime.parallel.run_workloads`:
    previously-seen workloads resolve from the persistent result cache,
    and cache misses fan out over worker processes.

    Args:
        jobs: ISS worker processes (``None`` auto-sizes to the CPU
            count, ``1`` forces serial).
        cache: A :class:`~repro.runtime.cache.ResultCache`, ``None``
            for the default persistent cache, or ``False`` to disable
            result caching.
        vector: Route ISS runs through
            :func:`~repro.runtime.parallel.run_workloads_vector`, which
            executes workloads sharing a program text as one N-lane
            lockstep group (see :func:`seed_variant_configs`).  Results
            are bit-identical either way.
    """
    from repro.runtime.parallel import run_workloads, run_workloads_vector

    scenario = UsageScenario(lifetime_months)
    workloads = configs if configs is not None else default_study_configs()
    runner = run_workloads_vector if vector else run_workloads
    report = runner(workloads, jobs=jobs, cache=cache)
    rows: List[WorkloadStudyRow] = []
    for workload, result in zip(workloads, report.results):
        profile = result.access_profile()
        si = build_all_si_system(
            clock_hz=clock_hz,
            profile=profile,
            n_cycles=result.cycles,
            scenario=scenario,
            grid=grid,
        )
        m3d = build_m3d_system(
            clock_hz=clock_hz,
            profile=profile,
            n_cycles=result.cycles,
            scenario=scenario,
            grid=grid,
        )
        ratio = m3d.tcdp(lifetime_months) / si.tcdp(lifetime_months)
        rows.append(
            WorkloadStudyRow(
                name=workload.name,
                cycles=result.cycles,
                cpi=result.cpi,
                accesses_per_cycle=profile.accesses_per_cycle,
                si_memory_energy_pj=si.memory_energy_per_cycle_j * 1e12,
                m3d_memory_energy_pj=m3d.memory_energy_per_cycle_j * 1e12,
                si_power_mw=si.operational_power_w * 1e3,
                m3d_power_mw=m3d.operational_power_w * 1e3,
                tcdp_ratio_m3d_over_si=ratio,
                crossover_months=si.total_carbon.crossover_months(
                    m3d.total_carbon
                ),
            )
        )
    return rows


def render_suite_study(rows: List[WorkloadStudyRow]) -> str:
    """Text table of the per-workload study."""
    lines = [
        "SUITE STUDY - PER-WORKLOAD PPAtC (24-month lifetime, US grid)",
        "-" * 96,
        f"{'workload':12s} {'acc/cyc':>8s} {'E_mem si':>9s} {'E_mem 3d':>9s} "
        f"{'P si':>8s} {'P m3d':>8s} {'tCDP ratio':>11s} {'crossover':>10s} "
        f"{'winner':>8s}",
    ]
    for row in rows:
        crossover = (
            f"{row.crossover_months:6.1f} mo"
            if row.crossover_months
            else "    never"
        )
        lines.append(
            f"{row.name:12s} {row.accesses_per_cycle:>8.3f} "
            f"{row.si_memory_energy_pj:>8.1f}p {row.m3d_memory_energy_pj:>8.1f}p "
            f"{row.si_power_mw:>6.2f}mW {row.m3d_power_mw:>6.2f}mW "
            f"{row.tcdp_ratio_m3d_over_si:>11.4f} {crossover:>10s} "
            f"{'M3D' if row.m3d_wins else 'all-Si':>8s}"
        )
    return "\n".join(lines)
