"""Dataflow unit-inference engine: propagate units through code.

RPL001 reads units off identifier suffixes *at the point of use*, so
``eol = lifetime_months; total = eol + use_hours`` sails through — the
intermediate ``eol`` carries no suffix.  This module follows values
instead of names:

- **Lattice.**  Each tracked value is an :class:`Inferred` — a
  ``(dimension, scale)`` unit (simple :class:`~repro.quality.dimensions.
  UnitSuffix` or rate :class:`~repro.quality.dimensions.CompositeUnit`)
  plus a *witness chain* recording how the unit was derived.  ``None``
  is the lattice top (nothing known); joining incompatible units at a
  control-flow merge drops back to ``None``.

- **Intraprocedural abstract interpretation.**  :class:`FlowAnalyzer`
  walks a function body in program order with an environment mapping
  local names to lattice values.  Assignments, augmented assignments,
  tuple unpacking, and arithmetic propagate units; ``if``/``try``
  branches are walked on environment copies and joined; units are
  seeded from suffixed names (params and locals), from literals scaled
  by :mod:`repro.units` constants (``3 * units.KWH`` is an energy in
  joules), and from call-site return units.

- **Conversion algebra.**  Multiplying or dividing by a
  :mod:`repro.units` constant rescales within a dimension
  (``e_kwh * units.KWH`` -> joules, ``e_j / units.KWH`` -> kWh);
  composite rates cancel against their denominator
  (``ci_gco2_per_kwh * energy_kwh`` -> gCO2e); a small product/quotient
  table handles the physical identities the models lean on
  (power x time -> energy, energy / time -> power, mass / area ->
  a per-area rate).

- **Interprocedural call graph.**  :class:`Program` memoizes per-module
  :class:`ModuleInfo` and per-function return units, resolving
  ``from repro.x import f`` imports through the same on-disk package
  walk RPL005 uses, so ``total_j = source_energy_j(...) + standby_kwh``
  is checked even when ``source_energy_j`` lives two modules away.

Rules RPL006 (inferred-unit mismatch) and RPL007 (lossy rebinding) in
:mod:`repro.quality.rules.flow_units` consume the recorded
:class:`OperandCheck` / :class:`RebindEvent` streams.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.quality.dimensions import (
    CONSTANT_TABLE,
    CompositeUnit,
    UnitLike,
    UnitSuffix,
    resolve_unit,
    suffix_for,
)

#: Recursion budget for call-graph return-unit inference.
MAX_CALL_DEPTH = 3

#: Witness chains are capped at this many rendered steps.
MAX_CHAIN_STEPS = 4


# ---------------------------------------------------------------------------
# Lattice values
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Step:
    """One link in a witness chain: how a unit moved or originated."""

    note: str
    line: int

    def render(self) -> str:
        return f"{self.note} [line {self.line}]"


@dataclass(frozen=True)
class Inferred:
    """A lattice value: a unit plus the derivation that produced it.

    ``chain`` is most-recent-step-first.  ``fuzzy`` marks values whose
    scale passed through a bare numeric literal (``x_kg * 1000`` may be
    a quantity scaling *or* a manual unit conversion); fuzzy values
    still participate in dimension checks but are exempt from
    same-dimension *scale* mismatch findings.
    """

    unit: UnitLike
    chain: Tuple[Step, ...] = ()
    fuzzy: bool = False

    def derived(self, note: str, line: int, fuzzy: bool = False) -> "Inferred":
        return Inferred(
            unit=self.unit,
            chain=(Step(note, line),) + self.chain,
            fuzzy=self.fuzzy or fuzzy,
        )

    def with_unit(self, unit: UnitLike, note: str, line: int) -> "Inferred":
        return Inferred(
            unit=unit,
            chain=(Step(note, line),) + self.chain,
            fuzzy=self.fuzzy,
        )

    # ------------------------------------------------------------------
    def compatible(self, other: "Inferred") -> bool:
        return units_compatible(self.unit, other.unit)

    def same_dimension(self, other: "Inferred") -> bool:
        return dimension_of(self.unit) == dimension_of(other.unit)

    def describe(self) -> str:
        """``_kwh: suffix of 'standby_kwh' [line 4] <- ...`` witness."""
        steps = " <- ".join(
            step.render() for step in self.chain[:MAX_CHAIN_STEPS]
        )
        if len(self.chain) > MAX_CHAIN_STEPS:
            steps += " <- ..."
        return f"_{self.unit.suffix} via {steps}" if steps else (
            f"_{self.unit.suffix}"
        )


@dataclass(frozen=True)
class Conversion:
    """A :mod:`repro.units` constant used as a scale factor.

    ``unit`` is the table suffix the constant scales: ``units.KWH`` is
    3.6e6 (joules per kilowatt-hour), i.e. the scale of ``_kwh``.
    """

    name: str
    unit: UnitSuffix


_Value = Optional[Union[Inferred, Conversion]]


def dimension_of(unit: UnitLike) -> str:
    return unit.dimension


def units_compatible(a: UnitLike, b: UnitLike) -> bool:
    """Addable/comparable: same dimension at the same scale."""
    if isinstance(a, UnitSuffix) and isinstance(b, UnitSuffix):
        return a.compatible(b)
    if isinstance(a, CompositeUnit) and isinstance(b, CompositeUnit):
        return a.compatible(b)
    return False


# ---------------------------------------------------------------------------
# Physical identities used by the product/quotient algebra
# ---------------------------------------------------------------------------
#: (dim_a, dim_b) -> resulting dimension for ``a * b`` (symmetric pairs
#: are both listed).
_PRODUCTS: Dict[Tuple[str, str], str] = {
    ("power", "time"): "energy",
    ("time", "power"): "energy",
    ("length", "length"): "area",
}

#: (numerator_dim, denominator_dim) -> resulting dimension for ``a / b``.
_QUOTIENTS: Dict[Tuple[str, str], str] = {
    ("energy", "time"): "power",
    ("energy", "power"): "time",
    ("area", "length"): "length",
}


# ---------------------------------------------------------------------------
# Events recorded for the rules
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OperandCheck:
    """A ``+``/``-``/comparison whose operand units were evaluated."""

    node: ast.AST
    op: str
    left_node: ast.AST
    right_node: ast.AST
    left: Optional[Inferred]
    right: Optional[Inferred]


@dataclass(frozen=True)
class RebindEvent:
    """A name whose inferred unit changed across an assignment."""

    node: ast.AST
    name: str
    old: Inferred
    new: Inferred
    converted: bool


@dataclass(frozen=True)
class TargetMismatch:
    """A suffixed assignment target receiving an incompatible value."""

    node: ast.AST
    name: str
    declared: UnitLike
    value: Inferred
    value_node: ast.AST
    converted: bool


@dataclass
class FunctionFlow:
    """Everything the flow rules need about one analyzed scope."""

    name: str
    declared: Optional[UnitLike]
    checks: List[OperandCheck] = field(default_factory=list)
    rebindings: List[RebindEvent] = field(default_factory=list)
    target_mismatches: List[TargetMismatch] = field(default_factory=list)
    returns: List[Tuple[ast.Return, Optional[Inferred]]] = field(
        default_factory=list
    )


# ---------------------------------------------------------------------------
# Module metadata and the cross-module program
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ImportedSymbol:
    """``from <module> import <original> as <local>`` (level dots kept)."""

    module: Optional[str]
    level: int
    original: str


_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class ModuleInfo:
    """Per-module facts the analyzer needs: defs, imports, aliases."""

    key: str
    path: Optional[Path]
    tree: ast.Module
    package_root: Optional[Path]
    functions: Dict[str, _FuncDef] = field(default_factory=dict)
    imports: Dict[str, ImportedSymbol] = field(default_factory=dict)
    #: local alias -> dotted module path (``import repro.units as u``,
    #: ``from repro import units``).
    module_aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        tree: ast.Module,
        path: Optional[Path] = None,
        package_root: Optional[Path] = None,
        key: Optional[str] = None,
    ) -> "ModuleInfo":
        info = cls(
            key=key or (str(path) if path is not None else f"<mem:{id(tree)}>"),
            path=path,
            tree=tree,
            package_root=package_root,
        )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(
                        "."
                    )[0]
                    info.module_aliases[local] = dotted
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = ImportedSymbol(
                        module=stmt.module,
                        level=stmt.level,
                        original=alias.name,
                    )
                    # ``from repro import units`` binds a *module*; track
                    # it as an alias too so ``units.KWH`` resolves.
                    dotted = (
                        f"{stmt.module}.{alias.name}"
                        if stmt.module
                        else alias.name
                    )
                    info.module_aliases.setdefault(local, dotted)
        return info

    def is_units_alias(self, name: str) -> bool:
        dotted = self.module_aliases.get(name)
        if dotted is None:
            return False
        return dotted == "units" or dotted.endswith(".units")


class Program:
    """Cross-module unit summaries, shared across one lint run.

    Holds a parse cache (usually the engine's shared ``_ModuleCache``),
    per-module :class:`ModuleInfo`, and memoized per-function return
    units so repo-wide runs stay linear in file count.
    """

    def __init__(self, parse=None) -> None:
        self._parse = parse  # callable: Path -> Optional[ast.Module]
        self._infos: Dict[str, ModuleInfo] = {}
        self._returns: Dict[Tuple[str, str], Optional[UnitLike]] = {}

    # ------------------------------------------------------------------
    def info_for(
        self,
        tree: ast.Module,
        path: Optional[Path] = None,
        package_root: Optional[Path] = None,
    ) -> ModuleInfo:
        key = str(path) if path is not None else f"<mem:{id(tree)}>"
        info = self._infos.get(key)
        if info is None:
            info = ModuleInfo.build(
                tree, path=path, package_root=package_root, key=key
            )
            self._infos[key] = info
        return info

    # ------------------------------------------------------------------
    def load_module(
        self, origin: ModuleInfo, module: Optional[str], level: int
    ) -> Optional[ModuleInfo]:
        """Resolve an import to a :class:`ModuleInfo`, if on disk."""
        if self._parse is None or origin.path is None:
            return None
        if level > 0:
            base = origin.path.parent
            for _ in range(level - 1):
                base = base.parent
        elif origin.package_root is not None:
            base = origin.package_root
        else:
            return None
        if module:
            base = base.joinpath(*module.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                tree = self._parse(candidate)
                if tree is None:
                    return None
                root = origin.package_root
                if level > 0 or root is None:
                    from repro.quality.engine import find_package_root

                    root = find_package_root(candidate)
                return self.info_for(
                    tree, path=candidate.resolve(), package_root=root
                )
        return None

    # ------------------------------------------------------------------
    def return_unit(
        self, info: ModuleInfo, func_name: str, depth: int = 0
    ) -> Optional[UnitLike]:
        """The unit a function returns, following imports and bodies.

        A suffix on the function name is authoritative (it is the
        declared contract RPL001 already enforces at return sites);
        otherwise the body is analyzed and a unit is reported only when
        every ``return`` expression agrees.
        """
        memo_key = (info.key, func_name)
        if memo_key in self._returns:
            return self._returns[memo_key]
        self._returns[memo_key] = None  # cycle guard
        unit = self._return_unit_uncached(info, func_name, depth)
        self._returns[memo_key] = unit
        return unit

    def _return_unit_uncached(
        self, info: ModuleInfo, func_name: str, depth: int
    ) -> Optional[UnitLike]:
        func = info.functions.get(func_name)
        if func is not None:
            declared = resolve_unit(func.name)
            if declared is not None:
                return declared
            if depth >= MAX_CALL_DEPTH:
                return None
            analyzer = FlowAnalyzer(info, self, depth=depth + 1)
            flow = analyzer.analyze_function(func)
            units = [inf.unit for _, inf in flow.returns if inf is not None]
            if not units or len(units) != len(flow.returns):
                return None
            first = units[0]
            if all(units_compatible(first, u) for u in units[1:]):
                return first
            return None
        symbol = info.imports.get(func_name)
        if symbol is not None:
            target = self.load_module(info, symbol.module, symbol.level)
            if target is not None:
                return self.return_unit(target, symbol.original, depth)
            return resolve_unit(func_name)
        return None


def get_program(ctx) -> Program:
    """The per-run :class:`Program`, cached on the engine's module cache."""
    extras = getattr(ctx.modules, "extras", None)
    if extras is None:
        return Program(parse=ctx.modules.parse)
    program = extras.get("flow.program")
    if program is None:
        program = Program(parse=ctx.modules.parse)
        extras["flow.program"] = program
    return program


def context_info(ctx, program: Program) -> ModuleInfo:
    """The :class:`ModuleInfo` for an engine :class:`FileContext`."""
    path = ctx.path if ctx.path.is_file() else None
    return program.info_for(
        ctx.tree,
        path=path.resolve() if path is not None else None,
        package_root=ctx.package_root,
    )


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------
_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _is_number(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _expr_text(node: ast.AST, limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


class FlowAnalyzer:
    """Walk one scope in program order, tracking units per local name."""

    def __init__(
        self, info: ModuleInfo, program: Program, depth: int = 0
    ) -> None:
        self.info = info
        self.program = program
        self.depth = depth
        self._flow: FunctionFlow = FunctionFlow(name="<none>", declared=None)
        #: names whose tracking is abandoned (``global``/``nonlocal``).
        self._untracked: set = set()

    # ------------------------------------------------------------------
    def analyze_function(self, func: _FuncDef) -> FunctionFlow:
        self._flow = FunctionFlow(
            name=func.name, declared=resolve_unit(func.name)
        )
        self._untracked = set()
        env: Dict[str, Inferred] = {}
        args = func.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            unit = resolve_unit(arg.arg)
            if unit is not None:
                env[arg.arg] = Inferred(
                    unit, (Step(f"parameter '{arg.arg}'", arg.lineno),)
                )
        self._walk_body(func.body, env)
        return self._flow

    def analyze_module(self) -> FunctionFlow:
        self._flow = FunctionFlow(name="<module>", declared=None)
        self._untracked = set()
        env: Dict[str, Inferred] = {}
        self._walk_body(self.info.tree.body, env)
        return self._flow

    # ------------------------------------------------------------------
    # Statement walking
    # ------------------------------------------------------------------
    def _walk_body(
        self, stmts: Sequence[ast.stmt], env: Dict[str, Inferred]
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, env)

    def _walk_stmt(self, stmt: ast.stmt, env: Dict[str, Inferred]) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value, env)
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_expr(stmt.value, env)
                value = self._eval(stmt.value, env)
                self._assign(stmt.target, stmt.value, value, env, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._check_expr(stmt.value, env)
            self._aug_assign(stmt, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, env)
                value = self._eval(stmt.value, env)
                self._flow.returns.append(
                    (stmt, value if isinstance(value, Inferred) else None)
                )
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.test, env)
            env_body = dict(env)
            env_else = dict(env)
            self._walk_body(stmt.body, env_body)
            self._walk_body(stmt.orelse, env_else)
            self._merge(env, self._join(env_body, env_else))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, env)
            env_body = dict(env)
            iter_value = self._eval(stmt.iter, env)
            seeded = (
                iter_value.derived("loop over iterable", stmt.lineno)
                if isinstance(iter_value, Inferred)
                else None
            )
            self._assign(stmt.target, stmt.iter, seeded, env_body, stmt)
            self._walk_body(stmt.body, env_body)
            self._walk_body(stmt.orelse, env_body)
            self._merge(env, self._join(env, env_body))
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.test, env)
            env_body = dict(env)
            self._walk_body(stmt.body, env_body)
            self._walk_body(stmt.orelse, env_body)
            self._merge(env, self._join(env, env_body))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars, item.context_expr, None, env, stmt
                    )
            self._walk_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            env_body = dict(env)
            self._walk_body(stmt.body, env_body)
            branches = [env_body]
            for handler in stmt.handlers:
                env_handler = dict(env)
                self._walk_body(handler.body, env_handler)
                branches.append(env_handler)
            joined = branches[0]
            for branch in branches[1:]:
                joined = self._join(joined, branch)
            self._merge(env, joined)
            self._walk_body(stmt.orelse, env)
            self._walk_body(stmt.finalbody, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env.pop(name, None)
                self._untracked.add(name)
        else:
            # Assert, Raise, Expr, ... — check any embedded arithmetic.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._check_expr(child, env)

    # ------------------------------------------------------------------
    def _merge(
        self, env: Dict[str, Inferred], joined: Dict[str, Inferred]
    ) -> None:
        env.clear()
        env.update(joined)

    def _join(
        self, a: Dict[str, Inferred], b: Dict[str, Inferred]
    ) -> Dict[str, Inferred]:
        """Lattice join: keep names whose units agree on both paths."""
        out: Dict[str, Inferred] = {}
        for name, value in a.items():
            other = b.get(name)
            if other is not None and value.compatible(other):
                out[name] = value
        return out

    # ------------------------------------------------------------------
    def _assign(
        self,
        target: ast.expr,
        value_node: ast.expr,
        value: _Value,
        env: Dict[str, Inferred],
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                elements = value_node.elts
            else:
                elements = [None] * len(target.elts)
            for sub_target, sub_value in zip(target.elts, elements):
                sub = self._eval(sub_value, env) if sub_value is not None else None
                self._assign(
                    sub_target,
                    sub_value if sub_value is not None else target,
                    sub,
                    env,
                    stmt,
                )
            return
        if not isinstance(target, ast.Name):
            return  # attribute/subscript stores are not tracked
        name = target.id
        if name in self._untracked:
            return
        inferred = value if isinstance(value, Inferred) else None
        declared = resolve_unit(name)
        converted = self._mentions_units(value_node)
        if inferred is not None:
            if declared is not None and not units_compatible(
                declared, inferred.unit
            ):
                self._flow.target_mismatches.append(
                    TargetMismatch(
                        node=stmt,
                        name=name,
                        declared=declared,
                        value=inferred,
                        value_node=value_node,
                        converted=converted,
                    )
                )
            old = env.get(name)
            if (
                old is not None
                and declared is None
                and not old.same_dimension(inferred)
            ):
                self._flow.rebindings.append(
                    RebindEvent(
                        node=stmt,
                        name=name,
                        old=old,
                        new=inferred,
                        converted=converted,
                    )
                )
            env[name] = inferred.derived(
                f"'{name}' = {_expr_text(value_node)}",
                getattr(stmt, "lineno", target.lineno),
            )
            return
        # Unknown RHS: the target's own suffix (if any) re-seeds it.
        if declared is not None:
            env[name] = Inferred(
                declared,
                (Step(f"suffix of '{name}'", target.lineno),),
            )
        else:
            env.pop(name, None)

    def _aug_assign(
        self, stmt: ast.AugAssign, env: Dict[str, Inferred]
    ) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        value = self._eval(stmt.value, env)
        current = env.get(stmt.target.id)
        if current is None:
            unit = resolve_unit(stmt.target.id)
            if unit is not None:
                current = Inferred(
                    unit,
                    (Step(f"suffix of '{stmt.target.id}'", stmt.lineno),),
                )
        if isinstance(stmt.op, (ast.Add, ast.Sub)) and isinstance(
            value, Inferred
        ):
            self._flow.checks.append(
                OperandCheck(
                    node=stmt,
                    op="+=" if isinstance(stmt.op, ast.Add) else "-=",
                    left_node=stmt.target,
                    right_node=stmt.value,
                    left=current,
                    right=value,
                )
            )

    # ------------------------------------------------------------------
    # Expression checking (records OperandChecks for the rules)
    # ------------------------------------------------------------------
    def _check_expr(self, expr: ast.expr, env: Dict[str, Inferred]) -> None:
        for node in self._walk_expr(expr):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = self._eval(node.left, env)
                right = self._eval(node.right, env)
                self._flow.checks.append(
                    OperandCheck(
                        node=node,
                        op="+" if isinstance(node.op, ast.Add) else "-",
                        left_node=node.left,
                        right_node=node.right,
                        left=left if isinstance(left, Inferred) else None,
                        right=right if isinstance(right, Inferred) else None,
                    )
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
                    if not isinstance(op, _CMP_OPS):
                        continue
                    left = self._eval(lhs, env)
                    right = self._eval(rhs, env)
                    self._flow.checks.append(
                        OperandCheck(
                            node=node,
                            op="comparison",
                            left_node=lhs,
                            right_node=rhs,
                            left=left if isinstance(left, Inferred) else None,
                            right=(
                                right if isinstance(right, Inferred) else None
                            ),
                        )
                    )

    def _walk_expr(self, expr: ast.expr) -> Iterator[ast.AST]:
        """All nodes of an expression, not descending into lambdas."""
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.Lambda):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # Expression evaluation (the abstract transfer function)
    # ------------------------------------------------------------------
    def _eval(self, node: Optional[ast.expr], env: Dict[str, Inferred]) -> _Value:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            conversion = self._conversion_for_name(node.id)
            if conversion is not None:
                return conversion
            if node.id in self._untracked:
                return None
            unit = resolve_unit(node.id)
            if unit is not None:
                return Inferred(
                    unit, (Step(f"suffix of '{node.id}'", node.lineno),)
                )
            return None
        if isinstance(node, ast.Attribute):
            conversion = self._conversion_for_attribute(node)
            if conversion is not None:
                return conversion
            unit = resolve_unit(node.attr)
            if unit is not None:
                return Inferred(
                    unit,
                    (Step(f"suffix of attribute '.{node.attr}'", node.lineno),),
                )
            return None
        if isinstance(node, ast.Subscript):
            return self._eval(node.value, env)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.UAdd, ast.USub)
        ):
            return self._eval(node.operand, env)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name) and isinstance(
                value, Inferred
            ):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.IfExp):
            body = self._eval(node.body, env)
            orelse = self._eval(node.orelse, env)
            if (
                isinstance(body, Inferred)
                and isinstance(orelse, Inferred)
                and body.compatible(orelse)
            ):
                return body
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        return None

    # ------------------------------------------------------------------
    def _eval_binop(self, node: ast.BinOp, env: Dict[str, Inferred]) -> _Value:
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                isinstance(left, Inferred)
                and isinstance(right, Inferred)
                and left.compatible(right)
            ):
                return left
            return None
        if isinstance(node.op, ast.Mult):
            return self._eval_mult(node, left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return self._eval_div(node, left, right)
        return None

    def _eval_mult(self, node: ast.BinOp, left: _Value, right: _Value) -> _Value:
        # Literal scaling keeps the unit but marks it fuzzy: ``x_kg *
        # 1000`` may be quantity scaling or a manual conversion.
        if isinstance(left, Inferred) and right is None:
            if _is_number(node.right):
                return left.derived(
                    f"scaled by {_expr_text(node.right)}",
                    node.lineno,
                    fuzzy=_literal_value(node.right) != 1,
                )
            return None
        if isinstance(right, Inferred) and left is None:
            if _is_number(node.left):
                return right.derived(
                    f"scaled by {_expr_text(node.left)}",
                    node.lineno,
                    fuzzy=_literal_value(node.left) != 1,
                )
            return None
        if isinstance(right, Conversion):
            return self._mul_conversion(node, left, right)
        if isinstance(left, Conversion):
            return self._mul_conversion(node, right, left)
        if isinstance(left, Inferred) and isinstance(right, Inferred):
            return self._unit_product(node, left, right)
        return None

    def _mul_conversion(
        self, node: ast.BinOp, value: _Value, conv: Conversion
    ) -> _Value:
        factor = conv.unit
        note = f"x units.{conv.name}"
        if not isinstance(value, Inferred):
            # ``3 * units.KWH``: the literal is implicitly in the
            # constant's unit; the product is in SI base units.
            base = suffix_for(factor.dimension, 1.0)
            if base is None:
                return None
            return Inferred(base, (Step(note, node.lineno),))
        unit = value.unit
        if isinstance(unit, UnitSuffix):
            if unit.dimension == factor.dimension:
                rescaled = suffix_for(unit.dimension, unit.scale / factor.scale)
                if rescaled is None:
                    return None
                return value.with_unit(rescaled, note, node.lineno)
            # Cross-dimension: the constant acts as a base-scale quantity
            # (``power_w * units.HOUR`` is an energy in joules).
            as_quantity = suffix_for(factor.dimension, 1.0)
            if as_quantity is None:
                return None
            return self._unit_product(
                node, value, Inferred(as_quantity, (Step(note, node.lineno),))
            )
        if isinstance(unit, CompositeUnit):
            if unit.denominator.dimension != factor.dimension:
                return None
            if unit.numerator is None:
                return None
            scale = unit.scale * factor.scale
            result = suffix_for(unit.numerator.dimension, scale)
            if result is None:
                return None
            return value.with_unit(result, note, node.lineno)
        return None

    def _unit_product(
        self, node: ast.BinOp, left: Inferred, right: Inferred
    ) -> _Value:
        a, b = left.unit, right.unit
        note = "product"
        # Rate x matching denominator cancels: gCO2e/kWh x kWh -> gCO2e.
        for composite, simple, source in (
            (a, b, left),
            (b, a, right),
        ):
            if isinstance(composite, CompositeUnit) and isinstance(
                simple, UnitSuffix
            ):
                if composite.denominator.dimension != simple.dimension:
                    return None
                if composite.numerator is None:
                    return None
                scale = composite.scale * simple.scale
                result = suffix_for(composite.numerator.dimension, scale)
                if result is None:
                    return None
                merged = Inferred(
                    result,
                    (Step(note, node.lineno),)
                    + source.chain[: MAX_CHAIN_STEPS - 1],
                    fuzzy=left.fuzzy or right.fuzzy,
                )
                return merged
        if isinstance(a, UnitSuffix) and isinstance(b, UnitSuffix):
            target = _PRODUCTS.get((a.dimension, b.dimension))
            if target is None:
                return None
            result = suffix_for(target, a.scale * b.scale)
            if result is None:
                return None
            return Inferred(
                result,
                (Step(note, node.lineno),) + left.chain[: MAX_CHAIN_STEPS - 1],
                fuzzy=left.fuzzy or right.fuzzy,
            )
        return None

    def _eval_div(self, node: ast.BinOp, left: _Value, right: _Value) -> _Value:
        if isinstance(left, Inferred) and right is None and _is_number(
            node.right
        ):
            return left.derived(
                f"divided by {_expr_text(node.right)}",
                node.lineno,
                fuzzy=_literal_value(node.right) != 1,
            )
        if isinstance(right, Conversion):
            factor = right.unit
            note = f"/ units.{right.name}"
            if not isinstance(left, Inferred):
                if left is None and _is_number(node.left):
                    return None  # a bare ratio like 2 / units.KWH
                return None
            unit = left.unit
            if isinstance(unit, UnitSuffix) and (
                unit.dimension == factor.dimension
            ):
                rescaled = suffix_for(
                    unit.dimension, unit.scale * factor.scale
                )
                if rescaled is None:
                    return None
                return left.with_unit(rescaled, note, node.lineno)
            return None
        if isinstance(left, Inferred) and isinstance(right, Inferred):
            a, b = left.unit, right.unit
            if units_compatible(a, b):
                return None  # dimensionless ratio
            if isinstance(a, UnitSuffix) and isinstance(b, UnitSuffix):
                target = _QUOTIENTS.get((a.dimension, b.dimension))
                if target is not None:
                    result = suffix_for(target, a.scale / b.scale)
                    if result is not None:
                        return Inferred(
                            result,
                            (Step("quotient", node.lineno),)
                            + left.chain[: MAX_CHAIN_STEPS - 1],
                            fuzzy=left.fuzzy or right.fuzzy,
                        )
                if a.dimension == b.dimension:
                    return None  # same dimension, different scale: murky
                return Inferred(
                    CompositeUnit(numerator=a, denominator=b),
                    (Step("ratio", node.lineno),)
                    + left.chain[: MAX_CHAIN_STEPS - 1],
                    fuzzy=left.fuzzy or right.fuzzy,
                )
            return None
        return None

    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> _Value:
        func = node.func
        if isinstance(func, ast.Name):
            unit = self._callable_unit(func.id)
            if unit is not None:
                return Inferred(
                    unit,
                    (Step(f"return of {func.id}()", node.lineno),),
                )
            return None
        if isinstance(func, ast.Attribute):
            # ``module_alias.func(...)``: resolve through the alias.
            if isinstance(func.value, ast.Name):
                dotted = self.info.module_aliases.get(func.value.id)
                if dotted is not None and self.info.path is not None:
                    target = self.program.load_module(self.info, dotted, 0)
                    if target is not None:
                        unit = self.program.return_unit(
                            target, func.attr, self.depth
                        )
                        if unit is not None:
                            return Inferred(
                                unit,
                                (
                                    Step(
                                        f"return of {func.value.id}."
                                        f"{func.attr}()",
                                        node.lineno,
                                    ),
                                ),
                            )
                        return None
            unit = resolve_unit(func.attr)
            if unit is not None:
                return Inferred(
                    unit,
                    (Step(f"return of .{func.attr}()", node.lineno),),
                )
        return None

    def _callable_unit(self, name: str) -> Optional[UnitLike]:
        if name in self.info.functions or name in self.info.imports:
            return self.program.return_unit(self.info, name, self.depth)
        return resolve_unit(name)

    # ------------------------------------------------------------------
    # units.py constant recognition
    # ------------------------------------------------------------------
    def _conversion_for_name(self, name: str) -> Optional[Conversion]:
        """``from repro.units import KWH`` -> Conversion for bare KWH."""
        symbol = self.info.imports.get(name)
        if symbol is None or not symbol.module:
            return None
        if symbol.module != "units" and not symbol.module.endswith(".units"):
            return None
        entry = CONSTANT_TABLE.get(symbol.original)
        if entry is None:
            return None
        return Conversion(name=symbol.original, unit=entry)

    def _conversion_for_attribute(
        self, node: ast.Attribute
    ) -> Optional[Conversion]:
        """``units.KWH`` / ``repro.units.KWH`` -> Conversion."""
        entry = CONSTANT_TABLE.get(node.attr)
        if entry is None:
            return None
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "units" or self.info.is_units_alias(base.id):
                return Conversion(name=node.attr, unit=entry)
            return None
        if isinstance(base, ast.Attribute) and base.attr == "units":
            return Conversion(name=node.attr, unit=entry)
        return None

    def _mentions_units(self, node: ast.expr) -> bool:
        """True when the expression references :mod:`repro.units` at all.

        Used as the "explicit conversion" escape hatch for RPL007: a
        rebinding that goes through a units constant or helper
        (``x * units.MONTH``, ``units.joules_to_kwh(x)``) is deliberate.
        """
        for sub in self._walk_expr(node):
            if isinstance(sub, ast.Attribute):
                base = sub.value
                if isinstance(base, ast.Name) and (
                    base.id == "units" or self.info.is_units_alias(base.id)
                ):
                    return True
                if isinstance(base, ast.Attribute) and base.attr == "units":
                    return True
            elif isinstance(sub, ast.Name):
                symbol = self.info.imports.get(sub.id)
                if symbol is not None and symbol.module and (
                    symbol.module == "units"
                    or symbol.module.endswith(".units")
                ):
                    return True
        return False


def _literal_value(node: ast.AST) -> object:
    return node.value if isinstance(node, ast.Constant) else None


def analyze_scopes(ctx) -> List[FunctionFlow]:
    """Analyze every scope of a file: module body + each function.

    The shared per-run :class:`Program` comes from the engine's module
    cache, so cross-module summaries are computed once per lint run.
    """
    program = get_program(ctx)
    info = context_info(ctx, program)
    analyzer = FlowAnalyzer(info, program)
    flows = [analyzer.analyze_module()]
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            flows.append(analyzer.analyze_function(node))
    return flows
