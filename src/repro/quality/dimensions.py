"""Unit-suffix dimensional analysis table, derived from :mod:`repro.units`.

The repo's naming convention encodes units in identifier suffixes:
``energy_j``, ``die_area_cm2``, ``lifetime_months``.  This module maps
each recognized suffix to a *dimension* (energy, area, time, ...) and a
*scale* pulled from the corresponding constant in :mod:`repro.units`,
so RPL001 can tell that ``_j`` and ``_kwh`` measure the same dimension
at different scales (adding them is a bug) while ``_j`` and ``_g`` do
not even share a dimension.

Keeping the scales as ``getattr(units, ...)`` lookups — rather than
literals repeated here — means the table cannot drift from the library:
``tests/quality/test_dimensions.py`` asserts every entry resolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro import units

#: suffix -> (dimension name, constant in units.py providing the scale).
_SUFFIX_SPEC: Dict[str, tuple] = {
    # time ------------------------------------------------------------
    "s": ("time", "SECOND"),
    "ms": ("time", "MILLISECOND"),
    "us": ("time", "MICROSECOND"),
    "ns": ("time", "NANOSECOND"),
    "ps": ("time", "PICOSECOND"),
    "minutes": ("time", "MINUTE"),
    "hours": ("time", "HOUR"),
    "days": ("time", "DAY"),
    "months": ("time", "MONTH"),
    "years": ("time", "YEAR"),
    # frequency -------------------------------------------------------
    "hz": ("frequency", "HZ"),
    "khz": ("frequency", "KHZ"),
    "mhz": ("frequency", "MHZ"),
    "ghz": ("frequency", "GHZ"),
    # energy ----------------------------------------------------------
    "j": ("energy", "JOULE"),
    "mj": ("energy", "MILLIJOULE"),
    "uj": ("energy", "MICROJOULE"),
    "nj": ("energy", "NANOJOULE"),
    "pj": ("energy", "PICOJOULE"),
    "fj": ("energy", "FEMTOJOULE"),
    "kwh": ("energy", "KWH"),
    # power -----------------------------------------------------------
    "w": ("power", "WATT"),
    "mw": ("power", "MILLIWATT"),
    "uw": ("power", "MICROWATT"),
    "nw": ("power", "NANOWATT"),
    # area ------------------------------------------------------------
    "m2": ("area", "M2"),
    "cm2": ("area", "CM2"),
    "mm2": ("area", "MM2"),
    "um2": ("area", "UM2"),
    # length ----------------------------------------------------------
    "cm": ("length", "CENTIMETER"),
    "mm": ("length", "MILLIMETER"),
    "um": ("length", "MICROMETER"),
    "nm": ("length", "NANOMETER"),
    # electrical ------------------------------------------------------
    "v": ("voltage", "VOLT"),
    "mv": ("voltage", "MILLIVOLT"),
    "ma": ("current", "MILLIAMP"),
    "ua": ("current", "MICROAMP"),
    "na": ("current", "NANOAMP"),
    "pf": ("capacitance", "PICOFARAD"),
    "ff": ("capacitance", "FEMTOFARAD"),
    "af": ("capacitance", "ATTOFARAD"),
    "ohm": ("resistance", "OHM"),
    "kohm": ("resistance", "KILOOHM"),
    # mass / carbon ---------------------------------------------------
    "g": ("mass", "GRAM"),
    "kg": ("mass", "KILOGRAM"),
    "mg": ("mass", "MILLIGRAM"),
    "pg": ("mass", "PICOGRAM"),
    # carbon (gCO2e) --------------------------------------------------
    # A dimension of its own: mixing grams of material with grams of
    # CO2-equivalent is a modeling bug even though both are "grams".
    "gco2": ("carbon", "GCO2E"),
    "kgco2": ("carbon", "KGCO2E"),
}


@dataclass(frozen=True)
class UnitSuffix:
    """One recognized identifier suffix with its dimension and SI scale."""

    suffix: str
    dimension: str
    scale: float

    def compatible(self, other: "UnitSuffix") -> bool:
        """True when quantities may be added/subtracted/compared directly.

        Same dimension *and* same scale: ``_j`` + ``_j`` is fine,
        ``_j`` + ``_kwh`` (same dimension, different scale) and
        ``_j`` + ``_g`` (different dimension) both are not.
        """
        return self.dimension == other.dimension and self.scale == other.scale


def _build_table() -> Dict[str, UnitSuffix]:
    table = {}
    for suffix, (dimension, constant) in _SUFFIX_SPEC.items():
        table[suffix] = UnitSuffix(
            suffix=suffix,
            dimension=dimension,
            scale=float(getattr(units, constant)),
        )
    return table


#: The canonical suffix table, keyed by lowercase suffix.
SUFFIX_TABLE: Dict[str, UnitSuffix] = _build_table()


def suffix_of(name: str) -> Optional[UnitSuffix]:
    """The unit suffix encoded in an identifier, if any.

    Returns ``None`` for names without a recognized ``_<suffix>`` tail,
    bare suffixes with no stem (a variable literally named ``s``), and
    rate-style names containing ``_per_`` (``g_per_kwh`` is a ratio of
    two dimensions, not either one).
    """
    lowered = name.lower()
    # "_per_" marks the trailing unit as a denominator (g_per_kwh is a
    # rate, not an energy); a leading "per_" stem (per_wafer_g) leaves
    # the suffix as the numerator unit and stays checkable.
    if "_per_" in lowered:
        return None
    stem, sep, tail = lowered.rpartition("_")
    if not sep or not stem:
        return None
    return SUFFIX_TABLE.get(tail)


# ---------------------------------------------------------------------------
# Composite (rate) units: ``_g_per_kwh``, ``_kwh_per_cm2``, ``_per_cm2``
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompositeUnit:
    """A ratio unit ``numerator / denominator`` encoded in a name.

    ``numerator`` is ``None`` for count-style rates (``defects_per_cm2``
    is a pure count divided by an area).  The paper's carbon chains are
    built from exactly these: EPA in kWh/cm^2, MPA/GPA in gCO2e/cm^2,
    grid carbon intensity in gCO2e/kWh.
    """

    numerator: Optional[UnitSuffix]
    denominator: UnitSuffix

    @property
    def dimension(self) -> str:
        num = self.numerator.dimension if self.numerator else "count"
        return f"{num}/{self.denominator.dimension}"

    @property
    def scale(self) -> float:
        num = self.numerator.scale if self.numerator else 1.0
        return num / self.denominator.scale

    @property
    def suffix(self) -> str:
        num = self.numerator.suffix if self.numerator else ""
        return f"{num}_per_{self.denominator.suffix}".lstrip("_")

    def compatible(self, other: object) -> bool:
        """Same dimension ratio at the same scale (addable/comparable)."""
        if not isinstance(other, CompositeUnit):
            return False
        return (
            self.dimension == other.dimension and self.scale == other.scale
        )


def composite_of(name: str) -> Optional[CompositeUnit]:
    """The composite rate unit encoded in an identifier, if any.

    ``ci_gco2_per_kwh`` -> gCO2e/kWh; ``epa_kwh_per_cm2`` -> kWh/cm^2;
    ``defect_density_per_cm2`` -> (count)/cm^2.  The denominator must be
    a single recognized suffix token; the numerator is the identifier
    component immediately before ``_per_`` when that component is itself
    a recognized suffix, else ``None`` (a count rate).
    """
    lowered = name.lower()
    head, sep, tail = lowered.rpartition("_per_")
    if not sep:
        return None
    denominator = SUFFIX_TABLE.get(tail)
    if denominator is None:
        return None
    num_token = head.rpartition("_")[2]
    numerator = SUFFIX_TABLE.get(num_token)
    if numerator is None and not head:
        return None  # a bare "per_cm2" has no stem at all
    return CompositeUnit(numerator=numerator, denominator=denominator)


def resolve_unit(name: str) -> Optional["UnitLike"]:
    """Simple or composite unit encoded in ``name`` (flow-engine entry).

    Unlike :func:`suffix_of` — which RPL001 uses and which deliberately
    exempts ``_per_`` rate names — this resolves rates to
    :class:`CompositeUnit` so the dataflow engine can propagate them
    through multiplications (``ci_gco2_per_kwh * energy_kwh`` is a
    carbon mass).
    """
    simple = suffix_of(name)
    if simple is not None:
        return simple
    return composite_of(name)


#: Either a simple suffix unit or a composite rate unit.
UnitLike = Union[UnitSuffix, CompositeUnit]


def _build_reverse_tables() -> Tuple[
    Dict[str, UnitSuffix], Dict[Tuple[str, float], UnitSuffix]
]:
    by_constant: Dict[str, UnitSuffix] = {}
    by_dim_scale: Dict[Tuple[str, float], UnitSuffix] = {}
    for suffix, (dimension, constant) in _SUFFIX_SPEC.items():
        entry = SUFFIX_TABLE[suffix]
        by_constant.setdefault(constant, entry)
        by_dim_scale.setdefault((dimension, entry.scale), entry)
    return by_constant, by_dim_scale


#: units.py constant name -> the suffix it scales (``"KWH"`` -> ``_kwh``).
CONSTANT_TABLE: Dict[str, UnitSuffix]
_DIM_SCALE_TABLE: Dict[Tuple[str, float], UnitSuffix]
CONSTANT_TABLE, _DIM_SCALE_TABLE = _build_reverse_tables()


def suffix_for(dimension: str, scale: float) -> Optional[UnitSuffix]:
    """The table suffix measuring ``dimension`` at ``scale``, if any.

    Scales produced by conversion arithmetic carry float rounding, so
    matching is tolerant to a relative epsilon.
    """
    exact = _DIM_SCALE_TABLE.get((dimension, scale))
    if exact is not None:
        return exact
    for (dim, s), entry in _DIM_SCALE_TABLE.items():
        if dim == dimension and abs(s - scale) <= 1e-9 * max(
            abs(s), abs(scale)
        ):
            return entry
    return None
