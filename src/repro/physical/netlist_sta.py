"""Gate netlists and static timing analysis (STA).

A :class:`GateNetlist` is a DAG of gate instances between primary inputs
and outputs.  STA propagates arrival times in topological order —
exactly what the paper's "specify timing constraints in automated VLSI
design flows" step checks for the eDRAM decoder and refresh controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PhysicalDesignError
from repro.physical.gates import (
    GATE_TYPES,
    GateType,
    gate_delay_s,
    gate_energy_j,
)
from repro.physical.stdcells import VtFlavor


@dataclass
class GateInstance:
    """One placed gate: a type, a name, input nets, one output net."""

    name: str
    gate_type: GateType
    inputs: Tuple[str, ...]
    output: str
    size: float = 1.0

    def __post_init__(self) -> None:
        if len(self.inputs) != self.gate_type.n_inputs:
            raise PhysicalDesignError(
                f"{self.name}: {self.gate_type.name} needs "
                f"{self.gate_type.n_inputs} inputs, got {len(self.inputs)}"
            )
        if self.size <= 0:
            raise PhysicalDesignError(f"{self.name}: size must be > 0")


@dataclass
class TimingReport:
    """STA result: per-net arrival times and the critical path."""

    arrival_s: Dict[str, float]
    critical_path: List[str]  # gate names, input to output
    critical_delay_s: float

    def slack_s(self, clock_hz: float) -> float:
        return 1.0 / clock_hz - self.critical_delay_s

    def meets(self, clock_hz: float) -> bool:
        return self.slack_s(clock_hz) >= 0.0


class GateNetlist:
    """A combinational gate network."""

    def __init__(self, name: str = "block") -> None:
        self.name = name
        self._gates: List[GateInstance] = []
        self._gate_names: set = set()
        self._driver_of: Dict[str, GateInstance] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        #: Extra capacitive load per net (wires, macro pins).
        self.net_loads_f: Dict[str, float] = {}

    # -- construction ----------------------------------------------------
    def add_input(self, net: str) -> None:
        if net in self.primary_inputs:
            raise PhysicalDesignError(f"duplicate input {net!r}")
        self.primary_inputs.append(net)

    def add_output(self, net: str) -> None:
        if net in self.primary_outputs:
            raise PhysicalDesignError(f"duplicate output {net!r}")
        self.primary_outputs.append(net)

    def add_gate(
        self,
        name: str,
        type_name: str,
        inputs: Sequence[str],
        output: str,
        size: float = 1.0,
    ) -> GateInstance:
        if name in self._gate_names:
            raise PhysicalDesignError(f"duplicate gate {name!r}")
        if type_name not in GATE_TYPES:
            raise PhysicalDesignError(
                f"unknown gate type {type_name!r}; "
                f"available: {sorted(GATE_TYPES)}"
            )
        if output in self._driver_of:
            raise PhysicalDesignError(f"net {output!r} has two drivers")
        gate = GateInstance(
            name, GATE_TYPES[type_name], tuple(inputs), output, size
        )
        self._gates.append(gate)
        self._gate_names.add(name)
        self._driver_of[output] = gate
        return gate

    def set_net_load(self, net: str, cap_f: float) -> None:
        if cap_f < 0:
            raise PhysicalDesignError("net load must be >= 0")
        self.net_loads_f[net] = cap_f

    @property
    def gates(self) -> Tuple[GateInstance, ...]:
        return tuple(self._gates)

    # -- analysis ------------------------------------------------------------
    def _fanout_cap(self, net: str) -> float:
        cap = self.net_loads_f.get(net, 0.0)
        for gate in self._gates:
            for pin in gate.inputs:
                if pin == net:
                    cap += gate.gate_type.input_cap_f * gate.size
        return cap

    def _topological(self) -> List[GateInstance]:
        ready = set(self.primary_inputs)
        remaining = list(self._gates)
        ordered: List[GateInstance] = []
        while remaining:
            progress = False
            still: List[GateInstance] = []
            for gate in remaining:
                if all(pin in ready for pin in gate.inputs):
                    ordered.append(gate)
                    ready.add(gate.output)
                    progress = True
                else:
                    still.append(gate)
            if not progress:
                dangling = sorted(
                    pin
                    for gate in still
                    for pin in gate.inputs
                    if pin not in ready and pin not in self._driver_of
                )
                if dangling:
                    raise PhysicalDesignError(
                        f"{self.name}: undriven nets {dangling[:5]}"
                    )
                raise PhysicalDesignError(
                    f"{self.name}: combinational loop among "
                    f"{[g.name for g in still[:5]]}"
                )
            remaining = still
        return ordered

    def sta(self, flavor: VtFlavor = VtFlavor.RVT) -> TimingReport:
        """Propagate arrival times; returns the critical path."""
        if not self._gates:
            raise PhysicalDesignError(f"{self.name}: empty netlist")
        arrival: Dict[str, float] = {net: 0.0 for net in self.primary_inputs}
        worst_input: Dict[str, Optional[GateInstance]] = {}
        for gate in self._topological():
            input_arrival = max(arrival[pin] for pin in gate.inputs)
            delay = gate_delay_s(
                gate.gate_type,
                flavor,
                self._fanout_cap(gate.output),
                gate.size,
            )
            arrival[gate.output] = input_arrival + delay
            worst_input[gate.output] = gate
        ends = self.primary_outputs or [
            net for net in arrival if net not in self.primary_inputs
        ]
        missing = [net for net in ends if net not in arrival]
        if missing:
            raise PhysicalDesignError(
                f"{self.name}: outputs never driven: {missing}"
            )
        critical_net = max(ends, key=lambda net: arrival[net])
        # Walk the critical path backwards.
        path: List[str] = []
        net = critical_net
        while net in worst_input and worst_input[net] is not None:
            gate = worst_input[net]
            path.append(gate.name)
            net = max(gate.inputs, key=lambda pin: arrival[pin])
        path.reverse()
        return TimingReport(
            arrival_s=arrival,
            critical_path=path,
            critical_delay_s=arrival[critical_net],
        )

    def total_energy_j(
        self, activity: float = 0.5, vdd_v: float = 0.7
    ) -> float:
        """Switching energy per cycle at a uniform activity factor."""
        if not (0.0 <= activity <= 1.0):
            raise PhysicalDesignError("activity must be in [0, 1]")
        total = 0.0
        for gate in self._gates:
            total += gate_energy_j(
                gate.gate_type,
                self._fanout_cap(gate.output),
                vdd_v,
                gate.size,
            )
        return total * activity

    def total_area_um2(self) -> float:
        return sum(g.gate_type.area_um2 * g.size for g in self._gates)


def build_row_decoder(
    address_bits: int = 7, wordline_cap_f: float = 20e-15
) -> GateNetlist:
    """A 2^n-row decoder: predecode NAND2 pairs + final NAND3/INV stage.

    This is the sub-array row decoder (128 rows = 7 address bits) whose
    delay must fit in the non-access part of the paper's 2 ns cycle.
    Only the critical decode slice (one wordline) is instantiated — STA
    of one slice equals STA of the full decoder.
    """
    if address_bits < 2:
        raise PhysicalDesignError("need >= 2 address bits")
    netlist = GateNetlist(f"rowdec{address_bits}")
    for bit in range(address_bits):
        netlist.add_input(f"a{bit}")
    # Buffer each address bit (drives many predecoders in the real array).
    for bit in range(address_bits):
        netlist.add_gate(f"abuf{bit}", "BUF", [f"a{bit}"], f"ab{bit}", size=2.0)
    # Predecode in pairs.
    pairs = []
    bit = 0
    while bit + 1 < address_bits:
        net = f"pd{bit}"
        netlist.add_gate(
            f"pre{bit}", "NAND2", [f"ab{bit}", f"ab{bit+1}"], net
        )
        netlist.add_gate(f"prei{bit}", "INV", [net], f"{net}n")
        pairs.append(f"{net}n")
        bit += 2
    if bit < address_bits:  # odd bit passes through a buffer
        netlist.add_gate(f"odd{bit}", "BUF", [f"ab{bit}"], f"pd{bit}n")
        pairs.append(f"pd{bit}n")
    # Combine predecoded terms with a NAND tree + wordline driver.
    level = 0
    current = pairs
    while len(current) > 1:
        nxt: List[str] = []
        for i in range(0, len(current) - 1, 2):
            net = f"t{level}_{i}"
            netlist.add_gate(
                f"and{level}_{i}", "NAND2", [current[i], current[i + 1]], net
            )
            netlist.add_gate(f"andi{level}_{i}", "INV", [net], f"{net}n")
            nxt.append(f"{net}n")
        if len(current) % 2:
            nxt.append(current[-1])
        current = nxt
        level += 1
    netlist.add_gate("wldrv", "BUF", [current[0]], "wl", size=8.0)
    netlist.add_output("wl")
    netlist.set_net_load("wl", wordline_cap_f)
    return netlist
