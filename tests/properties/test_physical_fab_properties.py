"""Property-based tests for physical-design and fabrication models."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.physical.die import DieGeometry, dies_per_wafer
from repro.physical.stdcells import VtFlavor, all_libraries
from repro.physical.timing import TimingClosure
from repro.physical.yields import FixedYield, MurphyYield, PoissonYield

die_dims = st.floats(min_value=0.1, max_value=20.0)
defect_densities = st.floats(min_value=0.0, max_value=5.0)
areas = st.floats(min_value=0.0, max_value=10.0)
clocks = st.floats(min_value=5e7, max_value=2e9)


class TestDieProperties:
    @given(die_dims, die_dims)
    @settings(max_examples=40, deadline=None)
    def test_count_positive_for_reasonable_dies(self, h, w):
        assert dies_per_wafer(DieGeometry(h, w)) > 0

    @given(die_dims, die_dims, st.floats(min_value=1.05, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_bigger_die_fewer_dies(self, h, w, scale):
        small = dies_per_wafer(DieGeometry(h, w))
        big = dies_per_wafer(DieGeometry(h * scale, w * scale))
        assert big < small

    @given(die_dims, die_dims)
    @settings(max_examples=40, deadline=None)
    def test_count_bounded_by_area(self, h, w):
        geometry = DieGeometry(h, w)
        count = dies_per_wafer(geometry)
        usable_area = math.pi * (geometry.usable_diameter_mm / 2) ** 2
        assert count * geometry.scribed_area_mm2 <= usable_area

    @given(die_dims, die_dims)
    @settings(max_examples=30, deadline=None)
    def test_rotation_symmetry_of_analytic_count(self, h, w):
        """The analytic formula only sees the scribed area."""
        assert dies_per_wafer(DieGeometry(h, w)) == dies_per_wafer(
            DieGeometry(w, h)
        )


class TestYieldProperties:
    @given(defect_densities, areas)
    @settings(max_examples=50, deadline=None)
    def test_yields_in_unit_interval(self, d0, area):
        for model in (PoissonYield(d0), MurphyYield(d0)):
            y = model.yield_fraction(area)
            assert 0.0 < y <= 1.0

    @given(defect_densities, areas, areas)
    @settings(max_examples=50, deadline=None)
    def test_yield_monotone_decreasing_in_area(self, d0, a, b):
        lo, hi = sorted((a, b))
        for model in (PoissonYield(d0), MurphyYield(d0)):
            assert model.yield_fraction(hi) <= model.yield_fraction(lo) + 1e-12

    @given(defect_densities, areas)
    @settings(max_examples=50, deadline=None)
    def test_murphy_at_least_poisson(self, d0, area):
        assert MurphyYield(d0).yield_fraction(area) >= PoissonYield(
            d0
        ).yield_fraction(area) - 1e-12

    @given(st.floats(min_value=0.01, max_value=1.0), areas)
    @settings(max_examples=30, deadline=None)
    def test_fixed_yield_constant(self, value, area):
        assert FixedYield(value).yield_fraction(area) == value


class TestTimingProperties:
    @given(clocks, st.sampled_from(list(VtFlavor)))
    @settings(max_examples=60, deadline=None)
    def test_met_timing_iff_within_fmax(self, clock, flavor):
        tc = TimingClosure()
        library = all_libraries()[flavor]
        result = tc.close(library, clock)
        fmax = tc.max_clock_hz(library)
        assert result.met == (clock <= fmax * (1 + 1e-9))

    @given(clocks, clocks, st.sampled_from(list(VtFlavor)))
    @settings(max_examples=40, deadline=None)
    def test_sizing_monotone_in_clock(self, c1, c2, flavor):
        tc = TimingClosure()
        library = all_libraries()[flavor]
        lo, hi = sorted((c1, c2))
        r_lo, r_hi = tc.close(library, lo), tc.close(library, hi)
        assume(r_lo.met and r_hi.met)
        assert r_hi.sizing_factor >= r_lo.sizing_factor - 1e-12

    @given(st.floats(min_value=0.5, max_value=8.0), st.sampled_from(list(VtFlavor)))
    @settings(max_examples=40, deadline=None)
    def test_delay_decreasing_in_sizing(self, sizing, flavor):
        tc = TimingClosure()
        library = all_libraries()[flavor]
        assert tc.delay_s(library, sizing * 1.1) < tc.delay_s(library, sizing)


class TestFlowProperties:
    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_m3d_energy_affine_in_tiers(self, tiers):
        from repro.fab import build_m3d_process

        e0 = build_m3d_process(n_cnfet_tiers=0).total_energy_kwh()
        e1 = build_m3d_process(n_cnfet_tiers=1).total_energy_kwh()
        en = build_m3d_process(n_cnfet_tiers=tiers).total_energy_kwh()
        assert math.isclose(en, e0 + tiers * (e1 - e0), rel_tol=1e-12)

    @given(st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=30, deadline=None)
    def test_embodied_monotone_in_grid_intensity(self, ci):
        from repro.core.embodied import EmbodiedCarbonModel
        from repro.fab import build_all_si_process

        model = EmbodiedCarbonModel(build_all_si_process())
        assert (
            model.evaluate(ci * 1.5).per_wafer_g
            > model.evaluate(ci).per_wafer_g
        )
