"""RPL011 — lock-discipline inference over thread-shared classes.

The observability layer (:class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.metrics.MetricsRegistry`) and the serve batcher are
mutated from multiple threads, and they defend themselves with a
``self._lock``.  A lock only works when *every* write to a protected
field goes through it: one unguarded ``self._records.append(...)`` next
to ten guarded ones is a data race that corrupts state on exactly the
run where it matters — and tools cannot bisect a race after the fact.

For every class that owns a lock attribute (``self._lock =
threading.Lock()`` / ``RLock`` / ``Condition`` / ``Semaphore``), the
rule builds the map of instance attributes written under
``with self._lock:`` versus outside it, and flags each attribute
written **both ways**.  The finding cites the guarded site as the
witness — the class itself established the discipline the unguarded
write breaks:

    'Tracer._records' is written under self._lock in _record() [line
    62] but without it in reset() [line 88]

Deliberate exceptions exist — reads-mostly fields published with a
single atomic store, ``__init__`` bodies (excluded automatically: the
instance is not shared during construction), GIL-atomic flag flips —
and should carry a ``# repro-lint: disable=RPL011`` pragma naming the
invariant that makes the unguarded write safe.  Classes without any
lock attribute are never flagged: the rule infers the discipline a
class declared for itself, it does not impose one.
"""

from __future__ import annotations

from typing import Iterator

from repro.quality.concurrency import analyze_lock_discipline
from repro.quality.findings import Finding, Severity
from repro.quality.rules.base import Rule, register


@register
class LockDisciplineRule(Rule):
    """Fields guarded somewhere must be guarded everywhere."""

    rule_id = "RPL011"
    severity = Severity.ERROR
    summary = "attributes written under a lock must not be written outside it"

    def check(self, ctx) -> Iterator[Finding]:
        if "Lock" not in ctx.source and "Semaphore" not in ctx.source:
            return
        for discipline in analyze_lock_discipline(ctx.tree):
            for attr in sorted(discipline.guarded_attrs()):
                guarded = discipline.guarded_example(attr)
                if guarded is None:
                    continue
                guarded_line = getattr(guarded.node, "lineno", 0)
                for write in discipline.unguarded(attr):
                    yield self.finding(
                        ctx,
                        write.node,
                        (
                            f"unguarded write: "
                            f"'{discipline.class_name}.{attr}' is written "
                            f"under the lock in {guarded.method}() [line "
                            f"{guarded_line}] but without it here in "
                            f"{write.method}() — a data race on the "
                            f"thread-shared field"
                        ),
                        symbol=f"{discipline.class_name}.{write.method}",
                    )
