"""End-to-end instrumentation: ISS, caches, parallel map, MC, artifacts.

The load-bearing guarantee is *differential*: switching observability on
must change nothing about the simulation results — only add spans and
metrics on the side.  Every section here runs the same operation with
obs off and on and compares the outputs bit-for-bit.
"""

import numpy as np
import pytest

from repro import obs
from repro.analysis.artifacts import (
    PipelineConfig,
    render_manifest,
    run_artifact_pipeline,
    strip_timing_fields,
)
from repro.core.uncertainty import (
    ScenarioParameters,
    monte_carlo_win_probability,
)
from repro.runtime.cache import ResultCache, SweepCache
from repro.runtime.parallel import map_parallel
from repro.workloads.suite import get_workload, run_workload


@pytest.fixture
def nominal():
    """Paper case-study parameters at 24 months, US grid."""
    return ScenarioParameters(
        candidate_wafer_g=1100300.0,
        candidate_dies_per_wafer=606238.0,
        candidate_yield=0.50,
        candidate_op_per_month_g=0.1957,
        baseline_wafer_g=837060.0,
        baseline_dies_per_wafer=299127.0,
        baseline_yield=0.50,
        baseline_op_per_month_g=0.2246,
        lifetime_months=24.0,
    )


def _result_tuple(result):
    return (
        result.checksum,
        result.cycles,
        result.instructions,
        result.program_reads,
        result.data_reads,
        result.data_writes,
        result.activity_factor,
    )


class TestISSInstrumentation:
    def test_tracing_does_not_change_results(self, clean_obs):
        """The differential gate: bit-identical run with obs on."""
        workload = get_workload("fib")
        baseline = run_workload(workload, engine="fast")
        with obs.enabled_scope():
            traced = run_workload(workload, engine="fast")
        assert _result_tuple(traced) == _result_tuple(baseline)

    def test_run_span_and_metrics(self, clean_obs):
        workload = get_workload("fib")
        with obs.enabled_scope():
            result = run_workload(workload, engine="fast")
        (span,) = [
            r for r in obs.get_tracer().spans if r.name == "iss.run"
        ]
        assert span.args["workload"] == "fib"
        assert span.args["engine"] == "fast"
        assert span.args["cycles"] == result.cycles
        assert span.args["instructions"] == result.instructions

        snap = obs.get_metrics().snapshot()["counters"]
        assert snap["iss.runs"] == 1
        assert snap["iss.instructions"] == result.instructions
        assert snap["iss.cycles"] == result.cycles
        # The instruction mix sums to the run's instruction count.
        mix = {
            k: v for k, v in snap.items() if k.startswith("iss.mix.")
        }
        assert mix
        assert sum(mix.values()) == result.instructions
        # The fast engine accounted every executed step somewhere.
        assert (
            snap["iss.fastpath.fast_steps"]
            + snap["iss.fastpath.fallback_steps"]
        ) == result.instructions

    def test_disabled_records_nothing(self, clean_obs):
        run_workload(get_workload("fib"), engine="fast")
        assert obs.get_tracer().spans == []
        # Registrations from other tests survive reset(); all that
        # matters is that the disabled run moved none of them.
        counters = obs.get_metrics().snapshot()["counters"]
        assert all(v == 0 for v in counters.values())


class TestCacheCounters:
    def test_result_cache_hit_miss_counters(self, clean_obs, tmp_path):
        cache = ResultCache(root=tmp_path)
        workload = get_workload("fib")
        result = run_workload(workload, engine="fast")
        with obs.enabled_scope():
            assert cache.get(workload, 500_000_000) is None
            cache.put(result, 500_000_000)
            assert cache.get(workload, 500_000_000) is not None
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["cache.iss.misses"] == 1
        assert counters["cache.iss.hits"] == 1
        assert counters["cache.iss.writes"] == 1
        assert counters["cache.iss.bytes_written"] > 0
        assert counters["cache.iss.bytes_read"] > 0

    def test_sweep_cache_counters_and_silence(self, clean_obs, tmp_path):
        cache = SweepCache(root=tmp_path)
        payload = {"k": 1}
        grid = np.arange(6, dtype=float).reshape(2, 3)
        # Disabled: the cache's own tallies move, the registry does not.
        assert cache.get(payload) is None
        cache.put(payload, grid)
        assert cache.misses == 1
        silent = obs.get_metrics().snapshot()["counters"]
        assert all(v == 0 for v in silent.values())
        with obs.enabled_scope():
            hit = cache.get(payload)
        np.testing.assert_array_equal(hit, grid)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["cache.sweep.hits"] == 1
        assert counters["cache.sweep.bytes_read"] > 0


class TestParallelTracing:
    def test_traced_map_matches_untraced(self, clean_obs):
        payloads = list(range(7))
        baseline = map_parallel(abs, payloads, jobs=2)
        with obs.enabled_scope():
            traced = map_parallel(abs, payloads, jobs=2, label="chunk")
        assert traced == baseline == payloads

    def test_map_span_and_chunk_replay(self, clean_obs):
        with obs.enabled_scope():
            map_parallel(abs, [1, 2, 3], jobs=2, label="chunk")
        spans = obs.get_tracer().spans
        (map_span,) = [
            r for r in spans if r.name == "parallel.map.chunk"
        ]
        assert map_span.args["items"] == 3
        chunk_spans = [r for r in spans if r.name == "chunk"]
        assert len(chunk_spans) == 3
        assert sorted(r.args["index"] for r in chunk_spans) == [0, 1, 2]
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["parallel.maps"] == 1
        assert counters["parallel.chunks"] == 3

    def test_serial_map_traced(self, clean_obs):
        with obs.enabled_scope():
            out = map_parallel(abs, [-4, 5], jobs=1, label="chunk")
        assert out == [4, 5]
        spans = obs.get_tracer().spans
        assert [r.name for r in spans if r.name == "chunk"] == [
            "chunk", "chunk",
        ]


class TestMonteCarloTracing:
    GRID = (np.array([0.8, 1.0, 1.2]), np.array([0.9, 1.1]))

    def test_tracing_does_not_change_grid(self, clean_obs, nominal):
        emb, op = self.GRID
        baseline = monte_carlo_win_probability(
            nominal, emb, op, n_samples=40,
            rng=np.random.default_rng(0),
        )
        with obs.enabled_scope():
            traced = monte_carlo_win_probability(
                nominal, emb, op, n_samples=40,
                rng=np.random.default_rng(0),
            )
        np.testing.assert_array_equal(traced, baseline)

    def test_batch_spans_and_sample_counter(self, clean_obs, nominal):
        emb, op = self.GRID
        with obs.enabled_scope():
            monte_carlo_win_probability(
                nominal, emb, op, n_samples=40, chunk_size=16,
                rng=np.random.default_rng(0),
            )
        spans = obs.get_tracer().spans
        (top,) = [r for r in spans if r.name == "mc.win_probability"]
        assert top.args["samples"] == 40
        batches = [r for r in spans if r.name == "mc.batch"]
        assert len(batches) == top.args["batches"] == 3  # ceil(40/16)
        counters = obs.get_metrics().snapshot()["counters"]
        assert counters["mc.samples"] == 40
        assert counters["mc.batches"] == 3

    def test_cache_hit_marked_on_span(self, clean_obs, nominal, tmp_path):
        emb, op = self.GRID
        cache = SweepCache(root=tmp_path)
        kwargs = dict(
            n_samples=30, cache=cache, rng=np.random.default_rng(0)
        )
        monte_carlo_win_probability(nominal, emb, op, **kwargs)
        with obs.enabled_scope():
            kwargs["rng"] = np.random.default_rng(0)
            monte_carlo_win_probability(nominal, emb, op, **kwargs)
        (top,) = [
            r
            for r in obs.get_tracer().spans
            if r.name == "mc.win_probability"
        ]
        assert top.args.get("cache") == "hit"


class TestArtifactPipelineInstrumentation:
    CONFIG = PipelineConfig(seed=0, mc_samples=30)
    SUBSET = ["fig2c", "monte_carlo_map"]

    def test_spans_and_manifest_metrics(self, clean_obs, tmp_path):
        with obs.enabled_scope():
            manifest = run_artifact_pipeline(
                tmp_path, config=self.CONFIG, artifacts=self.SUBSET
            )
        spans = obs.get_tracer().spans
        names = {r.name for r in spans}
        assert "artifacts.pipeline" in names
        for artifact in self.SUBSET:
            assert f"artifact.{artifact}" in names
        # The manifest carries the metrics snapshot when obs is on ...
        assert manifest["metrics"]["counters"]["artifacts.built"] == 2
        hist = manifest["metrics"]["histograms"]["artifacts.build_seconds"]
        assert hist["count"] == 2

    def test_metrics_key_absent_when_disabled(self, clean_obs, tmp_path):
        manifest = run_artifact_pipeline(
            tmp_path, config=self.CONFIG, artifacts=["fig2c"]
        )
        assert "metrics" not in manifest

    def test_timing_strip_removes_obs_fields(self, clean_obs, tmp_path):
        cache = SweepCache(root=tmp_path / "cache")
        with obs.enabled_scope():
            manifest = run_artifact_pipeline(
                tmp_path / "out",
                config=self.CONFIG,
                artifacts=self.SUBSET,
                sweep_cache=cache,
            )
        stripped = strip_timing_fields(manifest)
        assert "metrics" not in stripped
        assert all(
            "sweep_cache" not in e
            for e in stripped["artifacts"].values()
        )
        # ... so content_hash / determinism checks ignore them.
        assert stripped["content_hash"] == manifest["content_hash"]

    def test_per_artifact_cache_attribution(self, clean_obs, tmp_path):
        cache = SweepCache(root=tmp_path / "cache")
        cold = run_artifact_pipeline(
            tmp_path / "a",
            config=self.CONFIG,
            artifacts=self.SUBSET,
            sweep_cache=cache,
        )
        warm = run_artifact_pipeline(
            tmp_path / "b",
            config=self.CONFIG,
            artifacts=self.SUBSET,
            sweep_cache=cache,
        )
        mc_cold = cold["artifacts"]["monte_carlo_map"]["sweep_cache"]
        mc_warm = warm["artifacts"]["monte_carlo_map"]["sweep_cache"]
        assert mc_cold == {"hits": 0, "misses": 1}
        assert mc_warm == {"hits": 1, "misses": 0}
        # fig2c never touches the sweep cache.
        assert cold["artifacts"]["fig2c"]["sweep_cache"] == {
            "hits": 0, "misses": 0,
        }

    def test_render_manifest_cache_column(self, clean_obs, tmp_path):
        cache = SweepCache(root=tmp_path / "cache")
        manifest = run_artifact_pipeline(
            tmp_path / "out",
            config=self.CONFIG,
            artifacts=self.SUBSET,
            sweep_cache=cache,
        )
        text = render_manifest(manifest)
        assert "cache h/m" in text
        assert "0/1" in text  # the cold monte_carlo_map build
        # Without a cache the column disappears entirely.
        plain = run_artifact_pipeline(
            tmp_path / "plain", config=self.CONFIG, artifacts=["fig2c"]
        )
        assert "cache h/m" not in render_manifest(plain)


class TestPerfcountersShim:
    def test_shim_reexports_obs_perf(self):
        from repro.obs import perf
        from repro.runtime import perfcounters

        assert perfcounters.RunPerf is perf.RunPerf
        assert perfcounters.stopwatch is perf.stopwatch
        assert perfcounters.render_perf_table is perf.render_perf_table
