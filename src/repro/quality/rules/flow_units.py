"""RPL006 / RPL007 — dataflow unit rules built on :mod:`repro.quality.flow`.

RPL006 (*inferred-unit mismatch*) is the dataflow generalization of
RPL001: where RPL001 needs a unit suffix on both operands at the point
of use, RPL006 follows values through assignments, tuple unpacking,
arithmetic, and (cross-module) call returns, then checks the same
add/subtract/compare/return contracts against the *inferred* units.
Each finding carries a witness chain naming the defining assignments so
the derivation can be audited at a glance:

    eol = lifetime_months
    total = eol + use_hours      # RPL006: '+' mixes time scales _months
                                 # and _hours: left 'eol' =
                                 # lifetime_months [line 1] <- suffix of
                                 # 'lifetime_months' [line 1]; ...

Pairs where *both* operands carry a directly readable suffix are left
to RPL001 so one bug never double-reports.

RPL007 (*lossy rebinding*) flags a variable whose inferred dimension
changes across an assignment without an explicit conversion through a
:mod:`repro.units` constant or helper — the classic shape of a silent
kWh/J or months/seconds slip:

    budget = energy_kwh
    budget = lifetime_months          # RPL007: time overwrote energy
    budget = energy_kwh * units.KWH   # ok: explicit conversion
"""

from __future__ import annotations

from typing import Iterator

from repro.quality.findings import Finding, Severity
from repro.quality.flow import (
    FunctionFlow,
    Inferred,
    analyze_scopes,
    dimension_of,
    units_compatible,
)
from repro.quality.rules.base import Rule, register
from repro.quality.rules.units_rule import _infer_suffix


def _mix_text(a: Inferred, b: Inferred) -> str:
    ua, ub = a.unit, b.unit
    if dimension_of(ua) != dimension_of(ub):
        return (
            f"mixes dimensions {dimension_of(ua)} (_{ua.suffix}) and "
            f"{dimension_of(ub)} (_{ub.suffix})"
        )
    return (
        f"mixes {dimension_of(ua)} scales _{ua.suffix} and _{ub.suffix} "
        f"(convert explicitly first)"
    )


def _flaggable(a: Inferred, b: Inferred) -> bool:
    """Incompatible, and solid enough to report.

    Cross-dimension mixes always count; same-dimension scale mixes are
    suppressed when either side passed through a bare numeric literal
    (``x_kg * 1000`` may be a deliberate manual conversion).
    """
    if units_compatible(a.unit, b.unit):
        return False
    if dimension_of(a.unit) != dimension_of(b.unit):
        return True
    return not (a.fuzzy or b.fuzzy)


@register
class InferredUnitRule(Rule):
    """Flag arithmetic whose *inferred* operand units disagree."""

    rule_id = "RPL006"
    severity = Severity.ERROR
    summary = "dataflow-inferred unit mismatch (with witness chain)"

    def check(self, ctx) -> Iterator[Finding]:
        for flow in analyze_scopes(ctx):
            yield from self._check_operands(ctx, flow)
            yield from self._check_returns(ctx, flow)
            yield from self._check_targets(ctx, flow)

    # ------------------------------------------------------------------
    def _check_operands(self, ctx, flow: FunctionFlow) -> Iterator[Finding]:
        for check in flow.checks:
            if check.left is None or check.right is None:
                continue
            if not _flaggable(check.left, check.right):
                continue
            if (
                _infer_suffix(check.left_node) is not None
                and _infer_suffix(check.right_node) is not None
            ):
                continue  # both directly suffixed: RPL001 territory
            yield self.finding(
                ctx,
                check.node,
                f"'{check.op}' {_mix_text(check.left, check.right)}: "
                f"left {check.left.describe()}; "
                f"right {check.right.describe()}",
                symbol=flow.name,
            )

    # ------------------------------------------------------------------
    def _check_returns(self, ctx, flow: FunctionFlow) -> Iterator[Finding]:
        declared = flow.declared
        if declared is None:
            return
        for node, inferred in flow.returns:
            if inferred is None:
                continue
            if units_compatible(declared, inferred.unit):
                continue
            if _infer_suffix(node.value) is not None:
                continue  # RPL001 already checks directly suffixed returns
            if (
                dimension_of(declared) == dimension_of(inferred.unit)
                and inferred.fuzzy
            ):
                continue
            yield self.finding(
                ctx,
                node,
                f"function '{flow.name}' declares _{declared.suffix} but "
                f"returns {inferred.describe()}",
                symbol=flow.name,
            )

    # ------------------------------------------------------------------
    def _check_targets(self, ctx, flow: FunctionFlow) -> Iterator[Finding]:
        for mismatch in flow.target_mismatches:
            if mismatch.converted:
                continue
            if (
                dimension_of(mismatch.declared)
                == dimension_of(mismatch.value.unit)
                and mismatch.value.fuzzy
            ):
                continue
            yield self.finding(
                ctx,
                mismatch.node,
                f"'{mismatch.name}' declares _{mismatch.declared.suffix} "
                f"but is assigned {mismatch.value.describe()}",
                symbol=mismatch.name,
            )


@register
class LossyRebindingRule(Rule):
    """Flag a variable whose inferred dimension silently changes."""

    rule_id = "RPL007"
    severity = Severity.WARNING
    summary = (
        "lossy rebinding: dimension changes without a units.py conversion"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for flow in analyze_scopes(ctx):
            for event in flow.rebindings:
                if event.converted:
                    continue
                yield self.finding(
                    ctx,
                    event.node,
                    f"'{event.name}' rebound from "
                    f"{dimension_of(event.old.unit)} "
                    f"(_{event.old.unit.suffix}) to "
                    f"{dimension_of(event.new.unit)} "
                    f"(_{event.new.unit.suffix}) without a units.py "
                    f"conversion: was {event.old.describe()}; "
                    f"now {event.new.describe()}",
                    symbol=event.name,
                )
