"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough protocol for the PPAtC query server: request-line + header
parsing with hard size limits, ``Content-Length`` bodies (chunked
transfer encoding is rejected — no client of a JSON point-query API
needs it), and keep-alive by default as HTTP/1.1 specifies.  Kept
deliberately tiny and dependency-free so the serving stack stays within
the repo's stdlib-only discipline and every parsing branch is unit
testable with hand-written byte fixtures.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

#: Hard cap on the request line + headers block.
MAX_HEADER_BYTES = 16 * 1024

#: Hard cap on a request body (grid tiles with explicit axes fit easily).
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for the statuses the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the response status.

    ``keep_alive`` is False for framing-level failures where the
    connection byte stream can no longer be trusted (oversized or
    malformed heads) and True for semantic failures (bad JSON, unknown
    route) where the connection remains usable.
    """

    def __init__(
        self, status: int, message: str, keep_alive: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.keep_alive = keep_alive


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the client wants the connection reused afterwards."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json_body(self) -> dict:
        """The body decoded as a JSON object; raises 400 otherwise."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError):
            raise HttpError(
                400, "request body is not valid JSON", keep_alive=True
            )
        if not isinstance(payload, dict):
            raise HttpError(
                400, "request body must be a JSON object", keep_alive=True
            )
        return payload


async def read_request(
    reader: asyncio.StreamReader,
    max_header_bytes: int = MAX_HEADER_BYTES,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for protocol violations; the caller turns
    that into an error response (and drops the connection when the
    stream position is no longer trustworthy).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the stream limit")
    if len(head) > max_header_bytes:
        raise HttpError(431, "request head too large")
    lines = head[:-4].split(b"\r\n")
    request_line, header_lines = lines[0], lines[1:]
    try:
        method_b, target_b, version_b = request_line.split(b" ")
        method = method_b.decode("ascii")
        target = target_b.decode("ascii")
        version = version_b.decode("ascii")
    except (ValueError, UnicodeDecodeError):
        raise HttpError(400, "malformed request line")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    for raw in header_lines:
        name, sep, value = raw.partition(b":")
        if not sep or not name:
            raise HttpError(400, "malformed header line")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        except UnicodeDecodeError:
            raise HttpError(400, "malformed header line")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body")
    return HttpRequest(method, target, version, headers, body)


def response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    """Serialize one response, ready for ``writer.write``."""
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"content-type: {content_type}",
        f"content-length: {len(body)}",
        f"connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


def json_response(
    status: int,
    payload: dict,
    keep_alive: bool = True,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    """A JSON response with compact separators (payloads stay canonical)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return response_bytes(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def text_response(
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    keep_alive: bool = True,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    """A plain-text response (Prometheus exposition, profiler dumps)."""
    return response_bytes(
        status,
        text.encode("utf-8"),
        content_type=content_type,
        keep_alive=keep_alive,
        extra_headers=extra_headers,
    )


def error_response(error: HttpError) -> bytes:
    """The standard error envelope for an :class:`HttpError`."""
    return json_response(
        error.status,
        {"error": error.message, "status": error.status},
        keep_alive=error.keep_alive,
    )
