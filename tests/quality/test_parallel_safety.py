"""RPL008 fixtures: picklability and share-nothing for pool callables."""

import textwrap
from pathlib import Path

import pytest

from repro.quality import Baseline, LintEngine


def lint(source, rel_path="core/snippet.py"):
    from repro.quality import RULE_REGISTRY

    engine = LintEngine(
        rules=[RULE_REGISTRY["RPL008"]()], baseline=Baseline()
    )
    return engine.lint_source(textwrap.dedent(source), rel_path=rel_path)


@pytest.mark.smoke
class TestPicklability:
    def test_inline_lambda_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            def run(payloads):
                return map_parallel(lambda p: p + 1, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "lambda" in findings[0].message

    def test_name_bound_to_lambda_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            def run(payloads):
                scale = lambda p: p * 3
                return map_parallel(scale, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "'scale'" in findings[0].message

    def test_nested_def_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            def run(payloads):
                def inner(p):
                    return p
                return map_parallel(inner, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "nested function" in findings[0].message

    def test_partial_over_lambda_flagged(self):
        findings, _ = lint(
            """
            from functools import partial
            from repro.runtime.parallel import map_parallel

            def run(payloads):
                f = lambda p, k: p * k
                return map_parallel(partial(f, k=2), payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]

    def test_executor_map_lambda_flagged(self):
        findings, _ = lint(
            """
            from concurrent.futures import ProcessPoolExecutor

            def run(payloads):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda p: p, payloads))
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]


class TestSharedState:
    def test_module_level_mutable_closure_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            _RESULTS = []

            def _worker(payload):
                _RESULTS.append(payload)
                return payload

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "_RESULTS" in findings[0].message

    def test_live_cache_closure_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.cache import ResultCache
            from repro.runtime.parallel import map_parallel

            _CACHE = ResultCache("workloads")

            def _worker(payload):
                return _CACHE.get(payload)

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "_CACHE" in findings[0].message

    def test_read_only_module_table_ok(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            _TABLE = {"a": 1}

            def _worker(payload):
                return _TABLE.get(payload, 0)

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert findings == []

    def test_top_level_pure_worker_ok(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            def _worker(payload):
                total = payload * 2
                return total

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert findings == []

    def test_callable_parameter_skipped(self):
        # The caller's call site owns the check; `map_parallel` itself
        # hands its `func` parameter to pool.map and must stay clean.
        findings, _ = lint(
            """
            def fan_out(func, payloads, pool):
                return list(pool.map(func, payloads))
            """
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings, suppressed = lint(
            """
            from repro.runtime.parallel import map_parallel

            def run(payloads):
                return map_parallel(lambda p: p, payloads)  # repro-lint: disable=RPL008
            """
        )
        assert findings == []
        assert suppressed == 1


class TestVectorWorkers:
    """Vector-engine callables crossing the pool boundary."""

    def test_module_level_vector_engine_closure_flagged(self):
        findings, _ = lint(
            """
            from repro.cpu.vector_engine import VectorEngine
            from repro.runtime.parallel import map_parallel

            _ENGINE = VectorEngine(None, 8)

            def _worker(payload):
                return _ENGINE.run(payload)

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "_ENGINE" in findings[0].message

    def test_module_level_cpu_closure_flagged(self):
        findings, _ = lint(
            """
            from repro.cpu import CortexM0, MemoryMap
            from repro.runtime.parallel import map_parallel

            _CPU = CortexM0(MemoryMap.embedded_system())

            def _worker(payload):
                _CPU.load_program(payload)
                return _CPU.run()

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "_CPU" in findings[0].message

    def test_journal_mutation_flagged(self):
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            _JOURNAL = []

            def _worker(payload):
                _JOURNAL.append(payload)
                return payload

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert [f.rule for f in findings] == ["RPL008"]
        assert "_JOURNAL" in findings[0].message

    def test_per_call_engine_construction_ok(self):
        # The share-nothing pattern run_workloads_vector uses for its
        # singleton groups: the worker builds every bit of simulator
        # state inside the call, nothing crosses the boundary but the
        # payload.
        findings, _ = lint(
            """
            from repro.runtime.parallel import map_parallel

            def _worker(payload):
                from repro.cpu.vector_engine import run_lanes

                source, lane_words = payload
                return run_lanes(source, lane_words=lane_words)

            def run(payloads):
                return map_parallel(_worker, payloads)
            """
        )
        assert findings == []


class TestLiveCallSites:
    def test_every_existing_src_call_site_passes(self):
        """Acceptance: RPL008 is clean over the real runtime + core."""
        from repro.quality import RULE_REGISTRY

        repo = Path(__file__).resolve().parents[2]
        engine = LintEngine(
            rules=[RULE_REGISTRY["RPL008"]()], baseline=Baseline()
        )
        report = engine.lint_paths([repo / "src"], root=repo)
        assert report.findings == []
