"""Simulator-facing FET interface.

A :class:`FET` maps terminal voltages to a drain current and exposes the
figure-of-merit queries the paper's Table I contrasts: effective drive
current (I_EFF), on-current, and off-current.  Sign conventions follow
SPICE: drain current flows into the drain for NMOS in forward operation;
PMOS devices are handled by polarity reflection.
"""

from __future__ import annotations

import abc
import enum
from typing import Tuple


class Polarity(enum.Enum):
    """Channel polarity."""

    NMOS = 1
    PMOS = -1


class FET(abc.ABC):
    """Abstract FET: a width-normalized compact model times a width.

    Subclasses implement :meth:`_ids_forward` for VGS/VDS >= 0 in NMOS
    convention; this base class handles polarity reflection and
    source/drain symmetry so the circuit simulator can apply arbitrary
    terminal voltages.
    """

    def __init__(self, name: str, polarity: Polarity, width_um: float) -> None:
        if width_um <= 0:
            raise ValueError(f"{name}: width must be > 0, got {width_um}")
        self.name = name
        self.polarity = polarity
        self.width_um = width_um

    # -- to be provided by subclasses -----------------------------------
    @abc.abstractmethod
    def _ids_forward_per_um(self, vgs: float, vds: float) -> float:
        """Drain current (A/um) for NMOS-convention vgs, vds >= 0."""

    @abc.abstractmethod
    def gate_capacitance_f(self) -> float:
        """Total gate capacitance (F), bias-independent approximation."""

    @property
    @abc.abstractmethod
    def vdd_v(self) -> float:
        """Nominal supply voltage of the technology."""

    # -- terminal-level current ------------------------------------------
    def ids(self, vgs: float, vds: float) -> float:
        """Drain-source current (A) for arbitrary terminal voltages.

        Handles PMOS reflection and reverse (vds < 0) operation through
        source/drain exchange: I(vgs, vds<0) = -I(vgs - vds, -vds).
        """
        sign = self.polarity.value
        vgs_n, vds_n = sign * vgs, sign * vds
        if vds_n >= 0:
            current = self._ids_forward_per_um(vgs_n, vds_n)
        else:
            # Exchange source and drain: gate-to-(new)source = vgs - vds.
            current = -self._ids_forward_per_um(vgs_n - vds_n, -vds_n)
        return sign * current * self.width_um

    # -- figures of merit --------------------------------------------------
    def on_current_a(self) -> float:
        """|I_ON|: full-on current at |VGS| = |VDS| = VDD."""
        v = self.vdd_v
        return abs(self._ids_forward_per_um(v, v)) * self.width_um

    def off_current_a(self) -> float:
        """|I_OFF|: leakage at VGS = 0, |VDS| = VDD."""
        return abs(self._ids_forward_per_um(0.0, self.vdd_v)) * self.width_um

    def effective_current_a(self) -> float:
        """I_EFF = (I_H + I_L) / 2, the standard effective drive current.

        I_H = I(VGS=VDD, VDS=VDD/2); I_L = I(VGS=VDD/2, VDS=VDD).
        """
        v = self.vdd_v
        i_h = self._ids_forward_per_um(v, v / 2.0)
        i_l = self._ids_forward_per_um(v / 2.0, v)
        return (i_h + i_l) / 2.0 * self.width_um

    def on_off_ratio(self) -> float:
        """I_ON / I_OFF; infinite off-currents are guarded upstream."""
        off = self.off_current_a()
        if off == 0.0:  # repro-lint: disable=RPL004 - division-by-zero guard
            return float("inf")
        return self.on_current_a() / off

    def subthreshold_slope_mv_per_dec(
        self, vds: float | None = None, v_lo: float = 0.02, v_hi: float = 0.10
    ) -> float:
        """Extract SS (mV/decade) from two subthreshold bias points."""
        import math

        vds_n = self.vdd_v if vds is None else vds
        i1 = abs(self._ids_forward_per_um(v_lo, vds_n))
        i2 = abs(self._ids_forward_per_um(v_hi, vds_n))
        if i1 <= 0 or i2 <= 0 or i1 == i2:
            raise ValueError("cannot extract SS: currents not exponential")
        decades = math.log10(i2 / i1)
        return (v_hi - v_lo) * 1000.0 / decades

    def iv_curve(
        self, vgs: float, vds_points: "list[float]"
    ) -> "list[Tuple[float, float]]":
        """(vds, ids) pairs at fixed vgs — for characterization plots."""
        return [(vds, self.ids(vgs, vds)) for vds in vds_points]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self.polarity.name}, W={self.width_um} um)"
        )
