"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        # Trigger help text generation to validate subparser wiring.
        text = parser.format_help()
        for command in (
            "table1", "table2", "fig2c", "fig2d", "fig4",
            "fig5", "fig6a", "fig6b", "workloads", "optimize",
        ):
            assert command in text

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_grid(self):
        with pytest.raises(SystemExit):
            main(["table2", "--grid", "mars"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "I_EFF" in out and "igzo" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "20,047,348" in out and "837" in out

    def test_fig2c(self, capsys):
        assert main(["fig2c"]) == 0
        out = capsys.readouterr().out
        assert "1100" in out

    def test_fig2d(self, capsys):
        assert main(["fig2d"]) == 0
        assert "lithography" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        assert "RVT" in capsys.readouterr().out

    def test_fig5_with_options(self, capsys):
        assert main(["fig5", "--lifetime", "6", "--grid", "taiwan"]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_fig6a(self, capsys):
        assert main(["fig6a"]) == 0
        assert "nominal" in capsys.readouterr().out

    def test_fig6b(self, capsys):
        assert main(["fig6b"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("matmul-int", "crc32", "edn", "primecount", "fib", "ud"):
            assert name in out

    def test_optimize(self, capsys):
        assert main(["optimize", "--lifetime", "12"]) == 0
        out = capsys.readouterr().out
        assert "tCDP-optimal" in out

    def test_process_dump_and_load(self, capsys, tmp_path):
        path = str(tmp_path / "flow.json")
        assert main(["process", "--dump", path, "--builtin", "m3d"]) == 0
        assert main(["process", "--load", path]) == 0
        out = capsys.readouterr().out
        assert "1079.70 kWh/wafer" in out
        assert "kg/wafer" in out

    def test_process_requires_action(self, capsys):
        assert main(["process"]) == 1
