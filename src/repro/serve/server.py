"""The PPAtC query server: asyncio front door over the model stack.

Routes:

- ``POST /v1/tcdp``    — one design-point query (``ppatc-point/1``);
  point queries ride the request batcher, so concurrent clients are
  coalesced into single tensor evaluations.
- ``POST /v1/grid``    — one trade-off-map tile (``ppatc-grid/1``);
  already a tensor evaluation, dispatched inline, Monte Carlo overlays
  memoized through the shared warm ``SweepCache``.
- ``GET /healthz``     — liveness + readiness (bases warmed), SLO
  burn rates, and the process's own live operational gCO2e.
- ``GET /metricz``     — the ``repro.obs`` metrics snapshot; content
  negotiation serves Prometheus text 0.0.4 to ``Accept: text/plain``
  scrapers and OpenMetrics (with request-id exemplars) to
  ``Accept: application/openmetrics-text``; JSON stays the default.
- ``GET /debugz``      — the flight recorder's tail-sampled dump: the
  last N requests in full, plus every retained error and the slowest-K.
- ``GET /profilez``    — live continuous-profiler snapshot (enabled
  with ``--profile-hz``); collapsed flamegraph text via
  ``Accept: text/plain``, JSON folded stacks otherwise.

Operational behavior: bounded batcher queue with HTTP 429 shedding,
per-request ``serve.request`` spans, a flush-per-record JSON-lines
access log carrying live queue depth, HTTP/1.1 keep-alive, SIGUSR2
flight-recorder dumps to disk, periodic carbon self-telemetry sampling
(``serve.carbon.*`` gauges), and graceful drain — SIGTERM/SIGINT stop
the listener, let in-flight requests finish (draining the batcher
queue), then close.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro import obs
from repro.core.carbon_intensity import grid_intensity
from repro.obs.carbon import CarbonSelfTelemetry
from repro.obs.exposition import (
    CONTENT_TYPE_OPENMETRICS,
    CONTENT_TYPE_TEXT,
    negotiate_format,
    render_prometheus,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.slo import SloObjective, SloTracker
from repro.serve.flight import FlightRecorder
from repro.serve.http import (
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
    text_response,
)
from repro.serve.model import (
    SUPPORTED_GRIDS,
    GridQuery,
    ModelContext,
    PointQuery,
    QueryError,
    evaluate_grid,
    evaluate_point_scalar,
    evaluate_points_batched,
)
from repro.serve.batcher import QueueFullError, RequestBatcher

__all__ = ["ServerConfig", "PpatcServer", "run_server"]

#: Request-latency histogram buckets, in seconds.
_LATENCY_BOUNDS = (
    0.0005, 0.001, 0.002, 0.005, 0.010, 0.025, 0.050, 0.100, 0.250, 1.0
)


@dataclass(frozen=True)
class ServerConfig:
    """Everything `repro serve` can tune."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 = ephemeral (the bound port is on PpatcServer)
    grids: Sequence[str] = SUPPORTED_GRIDS
    clock_mhz: float = 500.0
    serial: bool = False  # bypass the batcher (the bench's control arm)
    batch_window_s: float = 0.002
    max_batch: int = 128
    max_pending: int = 1024
    access_log: Optional[str] = None  # JSON-lines path; None = stderr off
    sweep_cache: bool = True
    # -- observability ----------------------------------------------------
    profile_hz: float = 0.0  # 0 = continuous profiler off
    flight_capacity: int = 256
    flight_slowest: int = 16
    flight_dump_path: Optional[str] = None  # SIGUSR2 target; None = cwd
    carbon_grid: str = "us"  # CI the self-telemetry charges energy at
    carbon_sample_s: float = 5.0
    slo_availability_target: float = 0.999
    slo_latency_target: float = 0.99
    slo_latency_ms: float = 100.0


class PpatcServer:
    """One server instance; start/serve/stop are all asyncio-native."""

    def __init__(
        self, config: ServerConfig, access_log_stream: Optional[TextIO] = None
    ) -> None:
        self.config = config
        cache = None
        if config.sweep_cache:
            from repro.runtime.cache import SweepCache

            cache = SweepCache()
        self.context = ModelContext(
            grids=config.grids,
            clock_mhz=config.clock_mhz,
            sweep_cache=cache,
        )
        self.batcher = RequestBatcher(
            self._evaluate_batch,
            window_s=config.batch_window_s,
            max_batch=config.max_batch,
            max_pending=config.max_pending,
        )
        # Grid tiles are full tensor evaluations; they run on this
        # single-thread executor so they never stall the event loop
        # (RPL009) while staying serialized exactly as they were when
        # dispatched inline — same evaluation order, same SweepCache
        # access pattern, bit-identical responses.
        self._grid_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ppatc-grid"
        )
        self.flight = FlightRecorder(
            capacity=config.flight_capacity,
            slowest_k=config.flight_slowest,
        )
        self.slo = SloTracker(
            [
                SloObjective(
                    "availability", target=config.slo_availability_target
                ),
                SloObjective(
                    "latency",
                    target=config.slo_latency_target,
                    latency_threshold_s=config.slo_latency_ms / 1e3,
                ),
            ]
        )
        self.carbon = CarbonSelfTelemetry(
            ci=None
            if config.carbon_grid == "us"
            else _carbon_ci(config.carbon_grid),
            registry=obs.get_metrics(),
        )
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler(
                hz=config.profile_hz, registry=obs.get_metrics()
            )
            if config.profile_hz > 0
            else None
        )
        self._carbon_task: Optional["asyncio.Task[None]"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._started_at: Optional[float] = None
        self._access_log = access_log_stream
        self._access_log_owned = False
        self.requests_served = 0
        self._request_seq = 0

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Warm the model bases and open the listening socket."""
        obs.enable(tracing=False, metrics=True)
        warmed = self.context.warm()
        obs.get_metrics().gauge("serve.bases.warm").set(warmed)
        if self.config.access_log and self._access_log is None:
            # One-time open before the listener accepts traffic; no
            # requests are in flight yet, so nothing can stall.
            self._access_log = open(  # noqa: SIM115 - closed in stop()  # repro-lint: disable=RPL009 - one-time startup open before the listener accepts traffic
                self.config.access_log, "a", encoding="utf-8"
            )
            self._access_log_owned = True
        if self.profiler is not None:
            self.profiler.start()
        if not self.config.serial:
            self.batcher.start()
        self.carbon.sample()
        self._carbon_task = asyncio.get_running_loop().create_task(
            self._carbon_loop(), name="repro-serve-carbon"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        # time.time() is wall-clock for the uptime report only; it never
        # enters a model result.
        self._started_at = time.time()  # repro-lint: disable=RPL002 - uptime metadata, not model output

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not self.config.serial:
            await self.batcher.stop()
        self._grid_executor.shutdown(wait=True)
        if self._carbon_task is not None:
            self._carbon_task.cancel()
            try:
                await self._carbon_task
            except asyncio.CancelledError:
                pass
            self._carbon_task = None
            self.carbon.sample()  # final accounting up to shutdown
        if self.profiler is not None and self.profiler.running:
            self.profiler.stop()
        if self._access_log is not None:
            self._access_log.flush()
            if self._access_log_owned:
                self._access_log.close()
            self._access_log = None

    async def serve_until_signal(
        self, signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT)
    ) -> None:
        """Run until one of ``signals`` arrives, then drain and return.

        SIGUSR2 (where the platform has it) is additionally wired to
        dump the flight recorder to disk without stopping the server.
        """
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in signals:
            loop.add_signal_handler(sig, stop_event.set)
        usr2 = getattr(signal, "SIGUSR2", None)
        if usr2 is not None:
            loop.add_signal_handler(usr2, self.dump_flight)
        try:
            await stop_event.wait()
        finally:
            for sig in signals:
                loop.remove_signal_handler(sig)
            if usr2 is not None:
                loop.remove_signal_handler(usr2)
            await self.stop()

    def dump_flight(self, path: Optional[str] = None) -> str:
        """Write the flight-recorder dump as JSON; returns the path."""
        target = path or self.config.flight_dump_path
        if target is None:
            target = f"ppatc-flight-{os.getpid()}.json"
        with open(target, "w", encoding="utf-8") as fh:
            json.dump(self.flight.dump(), fh, indent=1)
            fh.write("\n")
        obs.get_metrics().counter("serve.flight.dumps").inc()
        return target

    async def _carbon_loop(self) -> None:
        """Periodically advance the operational-carbon accounting."""
        while True:
            await asyncio.sleep(self.config.carbon_sample_s)
            self.carbon.sample()

    # -- evaluation --------------------------------------------------------
    def _evaluate_batch(
        self, queries: Sequence[PointQuery]
    ) -> List[Dict[str, Any]]:
        return evaluate_points_batched(self.context, queries)

    async def _evaluate_point(self, query: PointQuery) -> Dict[str, Any]:
        if self.config.serial:
            return evaluate_point_scalar(self.context, query)
        try:
            return await self.batcher.submit(query)
        except QueueFullError as exc:
            raise HttpError(429, str(exc), keep_alive=True)

    # -- request handling --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = obs.get_metrics()
        metrics.counter("serve.connections.total").inc()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    metrics.counter("serve.errors.protocol").inc()
                    writer.write(error_response(exc))
                    await writer.drain()
                    if not exc.keep_alive:
                        break
                    continue
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._draining
                keep_alive = await self._respond(request, writer, keep_alive)
                self.requests_served += 1
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            metrics.counter("serve.connections.reset").inc()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        metrics = obs.get_metrics()
        loop = asyncio.get_running_loop()
        self._request_seq += 1
        request_id = f"{self._request_seq:08x}"
        queue_depth = 0 if self.config.serial else self.batcher.pending
        start = loop.time()  # monotonic event-loop clock, RPL002-clean
        status = 200
        with obs.span(
            "serve.request", method=request.method, target=request.target
        ) as span:
            try:
                body = await self._route(request)
                if isinstance(body, bytes):
                    response = body  # pre-rendered (content-negotiated)
                else:
                    response = json_response(
                        200, body, keep_alive=keep_alive
                    )
            except HttpError as exc:
                status = exc.status
                keep_alive = keep_alive and exc.keep_alive
                exc.keep_alive = keep_alive
                response = error_response(exc)
            except Exception:
                status = 500
                keep_alive = False
                metrics.counter("serve.errors.internal").inc()
                response = error_response(
                    HttpError(500, "internal error", keep_alive=False)
                )
            span.set(status=status)
            writer.write(response)
            await writer.drain()
        elapsed = loop.time() - start
        metrics.counter("serve.requests.total").inc()
        metrics.counter(f"serve.status.{status}").inc()
        metrics.histogram("serve.request.seconds", _LATENCY_BOUNDS).observe(
            elapsed, span_id=request_id
        )
        self.slo.record(elapsed, ok=status < 500)
        self.flight.record(
            request_id=request_id,
            method=request.method,
            target=request.target,
            status=status,
            latency_s=elapsed,
            ts=time.time(),  # repro-lint: disable=RPL002 - flight-recorder timestamp, not model output
            queue_depth=queue_depth,
            bytes_in=len(request.body),
        )
        self._log_access(request, status, elapsed, request_id, queue_depth)
        return keep_alive

    async def _route(self, request: HttpRequest) -> Any:
        method, target = request.method, request.target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET", keep_alive=True)
            return self._healthz()
        if target == "/metricz":
            if method != "GET":
                raise HttpError(405, "use GET", keep_alive=True)
            return self._metricz(request)
        if target == "/debugz":
            if method != "GET":
                raise HttpError(405, "use GET", keep_alive=True)
            return self.flight.dump()
        if target == "/profilez":
            if method != "GET":
                raise HttpError(405, "use GET", keep_alive=True)
            return self._profilez(request)
        if target == "/v1/tcdp":
            if method != "POST":
                raise HttpError(405, "use POST", keep_alive=True)
            query = self._parse(PointQuery, request)
            return await self._evaluate_point(query)
        if target == "/v1/grid":
            if method != "POST":
                raise HttpError(405, "use POST", keep_alive=True)
            grid_query = self._parse(GridQuery, request)
            return await asyncio.get_running_loop().run_in_executor(
                self._grid_executor, evaluate_grid, self.context, grid_query
            )
        raise HttpError(404, f"no route for {target}", keep_alive=True)

    def _metricz(self, request: HttpRequest) -> Any:
        """JSON snapshot by default; Prometheus text when asked for."""
        fmt = negotiate_format(request.headers.get("accept"))
        if fmt == "json":
            return obs.get_metrics().snapshot()
        openmetrics = fmt == "openmetrics"
        text = render_prometheus(
            obs.get_metrics(), openmetrics=openmetrics
        )
        content_type = (
            CONTENT_TYPE_OPENMETRICS if openmetrics else CONTENT_TYPE_TEXT
        )
        return text_response(200, text, content_type=content_type)

    def _profilez(self, request: HttpRequest) -> Any:
        if self.profiler is None:
            raise HttpError(
                404,
                "profiler disabled; start the server with --profile-hz",
                keep_alive=True,
            )
        report = self.profiler.snapshot()
        if negotiate_format(request.headers.get("accept")) != "json":
            return text_response(200, report.to_collapsed())
        return report.to_json()

    @staticmethod
    def _parse(query_cls: Any, request: HttpRequest) -> Any:
        try:
            return query_cls.from_payload(request.json_body())
        except QueryError as exc:
            raise HttpError(400, str(exc), keep_alive=True)

    def _healthz(self) -> Dict[str, Any]:
        uptime = 0.0
        if self._started_at is not None:
            uptime = time.time() - self._started_at  # repro-lint: disable=RPL002 - uptime metadata, not model output
        return {
            "status": "draining" if self._draining else "ok",
            "mode": "serial" if self.config.serial else "batched",
            "grids": list(self.context.grids),
            "clock_mhz": self.context.clock_mhz,
            "uptime_s": uptime,
            "requests_served": self.requests_served,
            "queue_depth": (
                0 if self.config.serial else self.batcher.pending
            ),
            "slo": self.slo.report(),
            "carbon": self.carbon.sample(),
            "profiler_hz": (
                self.profiler.hz if self.profiler is not None else 0.0
            ),
            "flight_recorded": self.flight.recorded,
        }

    def _log_access(
        self,
        request: HttpRequest,
        status: int,
        elapsed_s: float,
        request_id: str,
        queue_depth: int,
    ) -> None:
        if self._access_log is None:
            return
        record = {
            "ts": time.time(),  # repro-lint: disable=RPL002 - access-log timestamp, not model output
            "request_id": request_id,
            "method": request.method,
            "target": request.target,
            "status": status,
            "elapsed_ms": round(elapsed_s * 1e3, 3),
            "bytes_in": len(request.body),
            "queue_depth": queue_depth,
            "batch_occupancy": obs.get_metrics()
            .gauge("serve.batch.last_occupancy")
            .value,
        }
        self._access_log.write(json.dumps(record, separators=(",", ":")))
        self._access_log.write("\n")
        # Flush per record: a SIGTERM drain (or a crash right after it)
        # must never lose the lines describing the requests it drained.
        self._access_log.flush()


def _carbon_ci(grid: str) -> Any:
    from repro.core.carbon_intensity import ConstantCarbonIntensity

    return ConstantCarbonIntensity(grid_intensity(grid), name=grid)


async def run_server(
    config: ServerConfig, announce: Optional[TextIO] = None
) -> None:
    """Boot, announce the bound address, and serve until SIGTERM/SIGINT."""
    server = PpatcServer(config)
    await server.start()
    stream = announce if announce is not None else sys.stdout
    mode = "serial" if config.serial else "batched"
    print(
        f"repro-serve listening on http://{config.host}:{server.port} "
        f"({mode} mode, grids: {','.join(server.context.grids)})",
        file=stream,
        flush=True,
    )
    await server.serve_until_signal()
