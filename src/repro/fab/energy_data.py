"""Calibrated fabrication-energy dataset.

The paper builds its EPA (electrical energy per area) model from the
fabrication-energy data of Bardon et al. (IEDM 2020, reference [4] of the
paper), which reports (a) the energy of fabricating a metal/via pair at a
given pitch and lithography method, and (b) for metal-layer fabrication,
the number of steps per process area and the total energy per area
(Fig. 2d of the paper).

That dataset is not public in machine-readable form, so this module ships a
*calibrated* reconstruction.  The calibration anchors are all published in
the paper:

- FEOL + MOL energy of the imec iN7 EUV node: **436 kWh/wafer**.
- Deposition in EUV metal-layer fabrication: **3 steps totalling 4 kWh**
  (1.333 kWh/step — the worked example in Sec. II-C).
- EPA ratios vs the iN7-EUV node: **0.79×** (all-Si flow) and **1.22×**
  (M3D flow), Equation 3.
- Wafer-level embodied carbon on the US grid: **837 kgCO2e** (all-Si) and
  **1100 kgCO2e** (M3D), Table II / Fig. 2c.

Solving those constraints (see DESIGN.md section 3) yields the per-step and
per-pair energies below.  :func:`verify_calibration` re-derives the wafer
totals and raises :class:`repro.errors.CalibrationError` on drift; the test
suite calls it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import CalibrationError
from repro.fab.steps import LithographyMethod, ProcessArea

# ---------------------------------------------------------------------------
# Anchors taken directly from the paper
# ---------------------------------------------------------------------------

#: Front-end-of-line + middle-of-line energy for a 7 nm EUV node
#: (imec iN7), kWh per 300 mm wafer.  Both processes share this segment.
FEOL_MOL_ENERGY_KWH = 436.0

#: Total fabrication energy of the iN7-EUV reference node, kWh per wafer.
#: Chosen so the paper's published EPA ratios (0.79x / 1.22x) reproduce the
#: published wafer carbon numbers; see DESIGN.md.
IN7_EUV_TOTAL_ENERGY_KWH = 885.0

#: GPA (gas emissions per area) of the iN7-EUV reference, kgCO2e/cm^2.
IN7_EUV_GPA_KG_PER_CM2 = 0.20

#: Facility overhead multiplier on EPA (2015 ITRS): EPA_f = 1.4 * EPA.
FACILITY_ENERGY_OVERHEAD = 1.4

#: EPA ratios reported by the paper (Equation 3 context).  These are
#: *outputs* of our bottom-up model; kept here for verification only.
EXPECTED_EPA_RATIO_ALL_SI = 0.79
EXPECTED_EPA_RATIO_M3D = 1.22

# ---------------------------------------------------------------------------
# Per-step energies (kWh per 300 mm wafer per step)
# ---------------------------------------------------------------------------

#: Energy of a single EUV exposure step.  Solved from the calibration
#: constraints in DESIGN.md section 3 (24*L + 178.2 = 380.55 kWh).
EUV_LITHO_STEP_KWH = 8.43125

#: Per-step energies by process area.  The deposition value is the paper's
#: own worked example (4 kWh / 3 steps); the others are consistent with the
#: per-area totals of the EUV metal-layer table below.
STEP_ENERGY_KWH: Dict[ProcessArea, float] = {
    ProcessArea.LITHOGRAPHY: EUV_LITHO_STEP_KWH,
    ProcessArea.DRY_ETCH: 1.5,
    ProcessArea.WET_ETCH: 0.6,
    ProcessArea.METALLIZATION: 2.0,
    ProcessArea.DEPOSITION: 4.0 / 3.0,
    ProcessArea.METROLOGY: 0.3,
}


@dataclass(frozen=True)
class MetalLayerRecipe:
    """Step counts per process area for fabricating one EUV metal/via pair.

    Reproduces the shape of Fig. 2d: for each process area, the number of
    steps and (via :attr:`area_energy_kwh`) the total energy incurred.
    A metal/via *pair* needs two exposures (one via mask + one metal mask).
    """

    steps: Dict[ProcessArea, int]

    def area_energy_kwh(self, area: ProcessArea) -> float:
        """Total energy of one process area across the recipe."""
        return self.steps.get(area, 0) * STEP_ENERGY_KWH[area]

    @property
    def total_energy_kwh(self) -> float:
        return sum(self.area_energy_kwh(a) for a in self.steps)

    @property
    def total_steps(self) -> int:
        return sum(self.steps.values())


#: Step breakdown of an EUV-patterned metal/via pair (Fig. 2d shape).
EUV_METAL_VIA_PAIR_RECIPE = MetalLayerRecipe(
    steps={
        ProcessArea.LITHOGRAPHY: 2,
        ProcessArea.DRY_ETCH: 4,
        ProcessArea.WET_ETCH: 3,
        ProcessArea.METALLIZATION: 2,
        ProcessArea.DEPOSITION: 3,
        ProcessArea.METROLOGY: 4,
    }
)

#: Step breakdown of a single EUV metal layer (one exposure), used when a
#: lone metal level (no via) is added.  Half the patterning of a pair.
EUV_METAL_LAYER_RECIPE = MetalLayerRecipe(
    steps={
        ProcessArea.LITHOGRAPHY: 1,
        ProcessArea.DRY_ETCH: 2,
        ProcessArea.WET_ETCH: 2,
        ProcessArea.METALLIZATION: 1,
        ProcessArea.DEPOSITION: 2,
        ProcessArea.METROLOGY: 2,
    }
)

# ---------------------------------------------------------------------------
# Metal/via-pair energies by pitch (kWh per wafer per pair)
# ---------------------------------------------------------------------------

#: Energy of one metal/via pair, keyed by (pitch_nm, lithography).
#: 36 nm pairs are EUV single-patterned and decompose exactly into
#: EUV_METAL_VIA_PAIR_RECIPE.  Coarser pitches use 193 nm immersion
#: patterning; the paper substitutes 42 nm-pitch data for 48 nm-pitch
#: layers, which we mirror.
METAL_VIA_PAIR_ENERGY_KWH: Dict[Tuple[int, LithographyMethod], float] = {
    (36, LithographyMethod.EUV): EUV_METAL_VIA_PAIR_RECIPE.total_energy_kwh,
    (42, LithographyMethod.IMMERSION_193_SADP): 31.0,
    (48, LithographyMethod.IMMERSION_193_SADP): 31.0,  # modeled with 42 nm data
    (64, LithographyMethod.IMMERSION_193): 26.78125,
    (80, LithographyMethod.IMMERSION_193): 23.0,
}


def pair_energy_kwh(pitch_nm: int) -> float:
    """Energy (kWh/wafer) of one metal/via pair at the given pitch.

    The lithography method is implied by the pitch, following the paper:
    36 nm is EUV; 48 nm uses the 42 nm immersion-SADP data; 64 and 80 nm
    use single-exposure immersion patterning.
    """
    for (pitch, _method), energy in METAL_VIA_PAIR_ENERGY_KWH.items():
        if pitch == pitch_nm:
            return energy
    known = sorted({p for (p, _m) in METAL_VIA_PAIR_ENERGY_KWH})
    raise KeyError(
        f"no metal/via pair energy data for pitch {pitch_nm} nm; "
        f"known pitches: {known}"
    )


def lithography_for_pitch(pitch_nm: int) -> LithographyMethod:
    """Patterning method implied by a metal pitch at the 7 nm node."""
    if pitch_nm <= 40:
        return LithographyMethod.EUV
    if pitch_nm <= 48:
        return LithographyMethod.IMMERSION_193_SADP
    return LithographyMethod.IMMERSION_193


# ---------------------------------------------------------------------------
# Grid carbon intensities used in Fig. 2c (gCO2e per kWh)
# ---------------------------------------------------------------------------
GRID_CARBON_INTENSITY: Dict[str, float] = {
    "us": 380.0,
    "coal": 820.0,
    "solar": 48.0,
    "taiwan": 563.0,
}

#: Materials procurement per area for a Si wafer, gCO2e/cm^2 (LCA, ref [30]).
SI_WAFER_MPA_G_PER_CM2 = 500.0

#: CNT synthesis footprint, gCO2e per gram of CNT (average over synthesis
#: methods, ref [31] -> "~14 kgCO2e per gram CNT").
CNT_SYNTHESIS_G_PER_GRAM = 14_000.0

#: Total CNT mass deposited per 300 mm wafer ("on the order of picograms").
CNT_MASS_PER_WAFER_GRAMS = 5e-12

#: IGZO sputter-target footprint per wafer, gCO2e.  The paper notes LCA
#: methods "are needed" for IGZO; the deposited film is ~10 nm thick so the
#: material mass (and footprint) is negligible, like the CNTs.  We carry an
#: explicit tiny term so the accounting is visible.
IGZO_MATERIAL_G_PER_WAFER = 1e-3


def verify_calibration(tolerance: float = 5e-3) -> None:
    """Check that the calibrated dataset reproduces the paper's numbers.

    Re-derives wafer-level EPA for both flows from the step data and
    compares against the published anchors (0.79x/1.22x of the iN7 node).
    Raises :class:`CalibrationError` on drift beyond ``tolerance``
    (relative).
    """
    # Imported here to avoid a circular import at module load time.
    from repro.fab.processes import build_all_si_process, build_m3d_process

    targets = {
        "all_si": EXPECTED_EPA_RATIO_ALL_SI * IN7_EUV_TOTAL_ENERGY_KWH,
        "m3d": EXPECTED_EPA_RATIO_M3D * IN7_EUV_TOTAL_ENERGY_KWH,
    }
    flows = {
        "all_si": build_all_si_process(),
        "m3d": build_m3d_process(),
    }
    for name, flow in flows.items():
        measured = flow.total_energy_kwh()
        target = targets[name]
        rel = abs(measured - target) / target
        if rel > tolerance:
            raise CalibrationError(
                f"{name} flow EPA = {measured:.2f} kWh/wafer, expected "
                f"{target:.2f} (rel. error {rel:.2%} > {tolerance:.2%})"
            )
