"""MPA: materials procurement carbon per area (Sec. II-B).

The dominant term is the starting Si wafer (500 gCO2e/cm^2, i.e.
3.5e5 gCO2e per 300 mm wafer, from wafer LCA data [30]).  Emerging
materials are accounted bottom-up from deposited mass times synthesis
footprint: CNTs at ~14 kgCO2e per gram [31] with picograms deposited per
wafer, and a similarly negligible IGZO sputter-target term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro import units
from repro.errors import CarbonModelError
from repro.fab import energy_data


@dataclass(frozen=True)
class MaterialContribution:
    """One material's procurement footprint for a whole wafer."""

    name: str
    mass_grams: float
    footprint_g_per_gram: float

    @property
    def carbon_g(self) -> float:
        return self.mass_grams * self.footprint_g_per_gram


@dataclass
class MaterialsModel:
    """MPA model: per-wafer materials procurement carbon.

    Attributes:
        si_wafer_g_per_cm2: Base wafer footprint (gCO2e/cm^2).
        extra_materials: Additional bottom-up material contributions
            (CNTs, IGZO, ...), each accounted per wafer.
        wafer_diameter_mm: Wafer diameter (paper: 300 mm).
    """

    si_wafer_g_per_cm2: float = energy_data.SI_WAFER_MPA_G_PER_CM2
    extra_materials: Dict[str, MaterialContribution] = field(default_factory=dict)
    wafer_diameter_mm: float = 300.0

    def __post_init__(self) -> None:
        if self.si_wafer_g_per_cm2 < 0:
            raise CarbonModelError(
                f"MPA must be >= 0, got {self.si_wafer_g_per_cm2}"
            )

    @classmethod
    def for_all_si(cls) -> "MaterialsModel":
        """Materials model for the baseline all-Si process."""
        return cls()

    @classmethod
    def for_m3d(cls) -> "MaterialsModel":
        """Materials model for the M3D process: wafer + CNTs + IGZO.

        The CNT term follows the paper's accounting: deposited CNT mass
        (order of picograms per wafer, two tiers) times the LCA synthesis
        footprint of ~14 kgCO2e/gram.
        """
        model = cls()
        model.add_material(
            MaterialContribution(
                name="carbon nanotubes (2 tiers)",
                mass_grams=2 * energy_data.CNT_MASS_PER_WAFER_GRAMS,
                footprint_g_per_gram=energy_data.CNT_SYNTHESIS_G_PER_GRAM,
            )
        )
        model.add_material(
            MaterialContribution(
                name="IGZO (sputtered film)",
                mass_grams=1.0,
                footprint_g_per_gram=energy_data.IGZO_MATERIAL_G_PER_WAFER,
            )
        )
        return model

    def add_material(self, contribution: MaterialContribution) -> None:
        """Register an extra material; duplicate names are rejected."""
        if contribution.name in self.extra_materials:
            raise CarbonModelError(
                f"duplicate material {contribution.name!r}"
            )
        self.extra_materials[contribution.name] = contribution

    @property
    def wafer_area_cm2(self) -> float:
        return units.wafer_area_cm2(self.wafer_diameter_mm)

    def mpa_g_per_cm2(self) -> float:
        """MPA in gCO2e/cm^2 (wafer term + amortized extra materials)."""
        # Summed in sorted-name order so the float total is bit-stable
        # regardless of registration order (RPL012).
        extra = sum(
            self.extra_materials[name].carbon_g
            for name in sorted(self.extra_materials)
        )
        return self.si_wafer_g_per_cm2 + extra / self.wafer_area_cm2

    def per_wafer_g(self) -> float:
        """Total materials footprint per wafer in gCO2e."""
        return self.mpa_g_per_cm2() * self.wafer_area_cm2

    def breakdown_g(self) -> Dict[str, float]:
        """Per-material footprint (gCO2e/wafer), wafer term included."""
        result = {"Si wafer": self.si_wafer_g_per_cm2 * self.wafer_area_cm2}
        for name, contribution in self.extra_materials.items():
            result[name] = contribution.carbon_g
        return result
