"""Front-end-of-line / middle-of-line segment.

The paper equates the FEOL fabrication energy of both 7 nm processes to the
front- and middle-of-line energy of the imec iN7 EUV node: 436 kWh per
300 mm wafer (Sec. II-C).  The FEOL is therefore carried as a single lumped
segment shared by both flows.
"""

from __future__ import annotations

from repro.fab import energy_data
from repro.fab.flow import FlowSegment


def feol_segment() -> FlowSegment:
    """Si FinFET FEOL + MOL segment (shared by all-Si and M3D flows)."""
    return FlowSegment(
        name="FEOL+MOL (Si FinFET, iN7-EUV equivalent)",
        lumped_energy_kwh=energy_data.FEOL_MOL_ENERGY_KWH,
    )
