"""Tests for unit constants and conversions."""

import math

import pytest

from repro import units


class TestConversions:
    def test_kwh_joules_roundtrip(self):
        assert units.joules_to_kwh(units.kwh_to_joules(2.5)) == pytest.approx(2.5)

    def test_kwh_value(self):
        assert units.KWH == 3.6e6

    def test_wafer_area(self):
        """300 mm wafer = 706.86 cm^2 (the paper's 3.5e5 g at
        500 g/cm^2 checks out)."""
        area = units.wafer_area_cm2(300.0)
        assert area == pytest.approx(math.pi * 15.0**2)
        assert 500.0 * area == pytest.approx(3.5e5, rel=0.02)

    def test_months_seconds_roundtrip(self):
        assert units.seconds_to_months(
            units.months_to_seconds(24.0)
        ) == pytest.approx(24.0)

    def test_month_is_julian_twelfth(self):
        assert units.MONTH * 12 == pytest.approx(units.YEAR)
        assert units.YEAR == pytest.approx(365.25 * 86400)

    def test_si_prefixes_consistent(self):
        assert units.PICOJOULE == 1e-12
        assert units.MHZ * 1000 == units.GHZ
        assert units.FEMTOFARAD * 1000 == units.PICOFARAD

    def test_thermal_voltage(self):
        """kT/q at 300 K ~ 25.85 mV."""
        assert units.THERMAL_VOLTAGE_300K == pytest.approx(0.02585, abs=1e-4)


class TestRegisterFile:
    def test_pc_read_adds_pipeline_offset(self):
        from repro.cpu.registers import PC, RegisterFile

        regs = RegisterFile()
        regs.write(PC, 0x100)
        assert regs.read(PC) == 0x104
        assert regs.read_raw_pc() == 0x100

    def test_masking_to_32_bits(self):
        from repro.cpu.registers import RegisterFile

        regs = RegisterFile()
        regs.write(0, 0x1_FFFF_FFFF)
        assert regs.read(0) == 0xFFFF_FFFF

    def test_to_signed(self):
        from repro.cpu.registers import RegisterFile

        assert RegisterFile.to_signed(0xFFFFFFFF) == -1
        assert RegisterFile.to_signed(0x7FFFFFFF) == 0x7FFFFFFF

    def test_flags_word(self):
        from repro.cpu.registers import RegisterFile

        regs = RegisterFile()
        regs.n, regs.z, regs.c, regs.v = True, False, True, False
        assert regs.flags_word() == 0b1010

    def test_bad_register_index(self):
        from repro.cpu.registers import RegisterFile
        from repro.errors import ExecutionError

        regs = RegisterFile()
        with pytest.raises(ExecutionError):
            regs.read(16)
        with pytest.raises(ExecutionError):
            regs.write(-1, 0)

    def test_dump_format(self):
        from repro.cpu.registers import RegisterFile

        regs = RegisterFile()
        regs.write(3, 0xDEADBEEF)
        dump = regs.dump()
        assert "r3 =deadbeef" in dump
        assert "N=0" in dump

    def test_condition_codes(self):
        from repro.cpu.registers import RegisterFile, condition_passed
        from repro.errors import ExecutionError

        regs = RegisterFile()
        regs.z = True
        assert condition_passed(0x0, regs)  # EQ
        assert not condition_passed(0x1, regs)  # NE
        assert condition_passed(0xE, regs)  # AL
        with pytest.raises(ExecutionError):
            condition_passed(0xF, regs)
