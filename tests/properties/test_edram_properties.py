"""Property-based tests for the eDRAM models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edram.bitcell import m3d_bitcell, si_bitcell
from repro.edram.retention import retention_time_s
from repro.edram.subarray import SubArrayDesign

widths = st.floats(min_value=0.02, max_value=0.5)
caps = st.floats(min_value=0.2e-15, max_value=5e-15)
sense = st.floats(min_value=0.3, max_value=0.9)


class TestRetentionProperties:
    @given(widths, widths)
    @settings(max_examples=30, deadline=None)
    def test_retention_decreases_with_write_width(self, w_a, w_b):
        """Wider write FET leaks proportionally more."""
        lo, hi = sorted((w_a, w_b))
        t_lo = retention_time_s(m3d_bitcell(write_width_um=lo))
        t_hi = retention_time_s(m3d_bitcell(write_width_um=hi))
        assert t_hi <= t_lo * 1.0001

    @given(caps)
    @settings(max_examples=30, deadline=None)
    def test_retention_increases_with_storage_cap(self, cap):
        base = retention_time_s(m3d_bitcell(storage_cap_f=cap))
        bigger = retention_time_s(m3d_bitcell(storage_cap_f=cap * 2))
        assert bigger > base

    @given(sense)
    @settings(max_examples=30, deadline=None)
    def test_retention_decreases_with_sense_fraction(self, fraction):
        """A stricter sensing threshold tolerates less droop."""
        cell = si_bitcell()
        loose = retention_time_s(cell, sense_fraction=fraction * 0.9)
        strict = retention_time_s(cell, sense_fraction=fraction)
        assert strict <= loose * 1.0001

    @given(widths, caps)
    @settings(max_examples=30, deadline=None)
    def test_m3d_always_outlasts_si(self, width, cap):
        """For any matched geometry, the IGZO cell retains longer."""
        m3d = retention_time_s(
            m3d_bitcell(write_width_um=width, storage_cap_f=cap)
        )
        si = retention_time_s(
            si_bitcell(write_width_um=width, storage_cap_f=cap)
        )
        assert m3d > 100 * si


class TestSubArrayProperties:
    @given(
        st.sampled_from([32, 64, 128, 256]),
        st.sampled_from([32, 64, 128, 256]),
    )
    @settings(max_examples=20, deadline=None)
    def test_capacity_formula(self, rows, cols):
        design = SubArrayDesign(si_bitcell(), n_rows=rows, n_cols=cols)
        assert design.n_bits == rows * cols
        assert design.bytes * 8 == design.n_bits

    @given(st.sampled_from([64, 128, 256]))
    @settings(max_examples=10, deadline=None)
    def test_parasitics_scale_with_rows(self, rows):
        small = SubArrayDesign(si_bitcell(), n_rows=rows, n_cols=128)
        large = SubArrayDesign(si_bitcell(), n_rows=rows * 2, n_cols=128)
        assert (
            large.bitline_parasitics().total_cap_f
            > small.bitline_parasitics().total_cap_f
        )
        # Wordlines are unaffected by the row count.
        assert math.isclose(
            large.write_wordline_parasitics().total_cap_f,
            small.write_wordline_parasitics().total_cap_f,
            rel_tol=1e-12,
        )

    @given(st.sampled_from([64, 128, 256]), st.sampled_from([2, 4, 8]))
    @settings(max_examples=15, deadline=None)
    def test_words_times_width_is_capacity(self, cols, mux):
        design = SubArrayDesign(
            si_bitcell(), n_rows=128, n_cols=cols, column_mux=mux
        )
        assert design.n_words * design.word_bits == design.n_bits


class TestEnergyProperties:
    @given(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_energy_monotone_in_access_rates(self, reads, writes):
        from repro.edram.array import MemoryMacro
        from repro.edram.energy import EdramEnergyModel

        model = EdramEnergyModel(MemoryMacro.for_cell(m3d_bitcell()))
        base = model.energy_per_cycle_j(reads, writes, 500e6)
        more = model.energy_per_cycle_j(reads + 0.1, writes, 500e6)
        assert more > base

    @given(st.floats(min_value=1e8, max_value=1e9))
    @settings(max_examples=20, deadline=None)
    def test_standby_energy_share_shrinks_with_clock(self, clock):
        """Refresh/leakage is per-second, so its per-cycle share falls
        as the clock rises."""
        from repro.edram.array import MemoryMacro
        from repro.edram.energy import EdramEnergyModel

        model = EdramEnergyModel(MemoryMacro.for_cell(si_bitcell()))
        slow = model.energy_per_cycle_j(0.0, 0.0, clock)
        fast = model.energy_per_cycle_j(0.0, 0.0, clock * 2)
        assert math.isclose(slow, 2 * fast, rel_tol=1e-9)
