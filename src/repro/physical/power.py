"""Cortex-M0 core power/energy model (Sec. III-B step 4, Fig. 4).

The paper obtains application-dependent average energy per clock cycle
from post-P&R power analysis driven by RTL activity (.vcd).  Here, the
instruction-set simulator provides the switching-activity factor and this
model converts it to energy:

    E_dyn/cycle = N_gates * activity * E_switch(V_T) * (0.7 + 0.3 u)
    P_leak      = N_gates * P_leak_gate(V_T) * u

with ``u`` the timing-closure sizing factor.  The (0.7 + 0.3 u) term
models the fraction of switched capacitance that grows with drive strength
(the rest is wire and fixed cell capacitance).

The model is calibrated so the paper's selected design point — RVT flavour
at 500 MHz running matmul-int — dissipates 1.42 pJ/cycle (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import PhysicalDesignError, TimingClosureError
from repro.physical.stdcells import CellLibrary, VtFlavor, all_libraries
from repro.physical.timing import TimingClosure, TimingResult

#: Gate-equivalent count of the Cortex-M0 integration (core + bus fabric
#: + memory interface glue).  The M0 itself is ~12k gates.
M0_GATE_COUNT = 12_000

#: Effective switching-activity factor of matmul-int on the M0 (fraction
#: of gate capacitance toggled per cycle), calibrated so the selected
#: design point (RVT, 500 MHz) dissipates Table II's 1.42 pJ/cycle.
DEFAULT_ACTIVITY = 0.147

#: Maps the ISS's architectural-toggle activity estimate
#: (:meth:`repro.cpu.trace.ActivityTrace.activity_factor`, ~0.0331 for
#: matmul-int) to the effective activity above: glue logic, clock tree,
#: and glitching switch capacitance the architectural trace cannot see.
TRACE_TO_EFFECTIVE_ACTIVITY = DEFAULT_ACTIVITY / 0.0331245

#: Fraction of switched capacitance that scales with drive strength.
_SIZING_CAP_FRACTION = 0.3


@dataclass(frozen=True)
class CorePowerResult:
    """Energy/power of the core at one design point."""

    flavor: VtFlavor
    clock_hz: float
    met_timing: bool
    dynamic_energy_per_cycle_j: float
    leakage_power_w: float
    sizing_factor: float

    @property
    def leakage_energy_per_cycle_j(self) -> float:
        return self.leakage_power_w / self.clock_hz

    @property
    def energy_per_cycle_j(self) -> float:
        """Total (dynamic + leakage) average energy per cycle."""
        return self.dynamic_energy_per_cycle_j + self.leakage_energy_per_cycle_j

    @property
    def average_power_w(self) -> float:
        return self.energy_per_cycle_j * self.clock_hz


class CorePowerModel:
    """Application-dependent power model of the M0 core."""

    def __init__(
        self,
        n_gates: int = M0_GATE_COUNT,
        activity: float = DEFAULT_ACTIVITY,
        timing: Optional[TimingClosure] = None,
    ) -> None:
        if n_gates <= 0:
            raise PhysicalDesignError(f"gate count must be > 0, got {n_gates}")
        if not (0.0 <= activity <= 1.0):
            raise PhysicalDesignError(
                f"activity factor must be in [0, 1], got {activity}"
            )
        self.n_gates = n_gates
        self.activity = activity
        self.timing = timing if timing is not None else TimingClosure()

    @classmethod
    def from_trace_activity(
        cls, trace_activity: float, **kwargs
    ) -> "CorePowerModel":
        """Build from an ISS :class:`ActivityTrace` activity factor."""
        return cls(
            activity=min(trace_activity * TRACE_TO_EFFECTIVE_ACTIVITY, 1.0),
            **kwargs,
        )

    def evaluate(
        self, library: CellLibrary, clock_hz: float
    ) -> CorePowerResult:
        """Close timing at ``clock_hz`` and compute energy per cycle."""
        result: TimingResult = self.timing.close(library, clock_hz)
        u = result.sizing_factor
        sizing_cap = (1.0 - _SIZING_CAP_FRACTION) + _SIZING_CAP_FRACTION * u
        dynamic = (
            self.n_gates
            * self.activity
            * library.switch_energy_per_gate_j
            * sizing_cap
        )
        leakage_w = self.n_gates * library.leakage_per_gate_w * u
        return CorePowerResult(
            flavor=library.flavor,
            clock_hz=clock_hz,
            met_timing=result.met,
            dynamic_energy_per_cycle_j=dynamic,
            leakage_power_w=leakage_w,
            sizing_factor=u,
        )

    def sweep(
        self,
        clocks_hz: Sequence[float],
        flavors: Optional[Sequence[VtFlavor]] = None,
    ) -> Dict[VtFlavor, "list[CorePowerResult]"]:
        """Fig. 4 data: energy/cycle vs clock for each V_T flavour."""
        libraries = all_libraries()
        chosen = flavors if flavors is not None else list(VtFlavor)
        return {
            flavor: [self.evaluate(libraries[flavor], f) for f in clocks_hz]
            for flavor in chosen
        }

    def select_design(self, clock_hz: float) -> CorePowerResult:
        """Pick the lowest-energy flavour that meets timing at a clock.

        This is the paper's implicit design-selection step: at 500 MHz the
        RVT flavour wins (HVT needs heavy upsizing; LVT/SLVT leak).
        """
        candidates = [
            self.evaluate(library, clock_hz)
            for library in all_libraries().values()
        ]
        feasible = [c for c in candidates if c.met_timing]
        if not feasible:
            best = max(c.clock_hz for c in candidates)
            raise TimingClosureError(
                f"no V_T flavour closes timing at {clock_hz/1e6:.0f} MHz "
                f"(best achievable below target; max clock ~{best/1e6:.0f} MHz)"
            )
        return min(feasible, key=lambda c: c.energy_per_cycle_j)

    def core_area_um2(self, library: CellLibrary, sizing: float = 1.0) -> float:
        """Placed core area; upsizing grows the sized fraction of cells."""
        if sizing <= 0:
            raise PhysicalDesignError(f"sizing must be > 0, got {sizing}")
        growth = (1.0 - _SIZING_CAP_FRACTION) + _SIZING_CAP_FRACTION * sizing
        return self.n_gates * library.gate_area_um2 * growth
